//! `experiments report` — a post-hoc dashboard over exported telemetry.
//!
//! Reads the JSONL event log a run produced (`--trace-json`, optionally
//! with flight-recorder lines appended) and renders it as either an
//! aligned text dashboard or a standalone HTML page: top spans by
//! duration, counters, gauges, quantile summaries, and the flight
//! recorder's last events grouped by trace id. No re-run needed — this
//! is the "what happened" view over artifacts already on disk, the same
//! files CI archives.

use std::collections::BTreeMap;

use qac_telemetry::json::{parse, Json};

/// One span row from a `"type":"span"` line.
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// Span name.
    pub name: String,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Start offset in microseconds.
    pub start_us: f64,
}

/// One quantile-summary row from a `"type":"quantile"` line.
#[derive(Debug, Clone)]
pub struct QuantileRow {
    /// Sketch name.
    pub name: String,
    /// Observation count.
    pub count: f64,
    /// p50 / p90 / p99 (absent when the sketch was empty).
    pub p50: Option<f64>,
    /// 90th percentile.
    pub p90: Option<f64>,
    /// 99th percentile.
    pub p99: Option<f64>,
}

/// One flight-recorder row from a `"type":"flight"` line.
#[derive(Debug, Clone)]
pub struct FlightRow {
    /// Ring sequence number.
    pub seq: f64,
    /// Microseconds since recorder start.
    pub at_us: f64,
    /// Trace id string (`trace-…`), empty when untagged.
    pub trace: String,
    /// Event kind (`stage_end`, `cache_hit`, …).
    pub kind: String,
    /// Event subject.
    pub name: String,
    /// Event payload value.
    pub value: f64,
}

/// Everything the dashboard shows, parsed out of one JSONL file.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Spans, as exported.
    pub spans: Vec<SpanRow>,
    /// Counter name → value.
    pub counters: Vec<(String, f64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, f64)>,
    /// Quantile summaries.
    pub quantiles: Vec<QuantileRow>,
    /// Flight events, in seq order.
    pub flights: Vec<FlightRow>,
    /// Lines that were valid JSON but an unknown event type.
    pub skipped: usize,
}

fn num(event: &Json, key: &str) -> f64 {
    event.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn text(event: &Json, key: &str) -> String {
    event
        .get(key)
        .and_then(|v| v.as_str())
        .unwrap_or_default()
        .to_string()
}

/// Parses a telemetry JSONL export (span/counter/gauge/histogram/
/// quantile/flight lines) into a [`Report`]. Fails on the first line
/// that is not valid JSON or lacks the `type` discriminator; unknown
/// types are counted, not fatal, so the format can grow.
pub fn parse_jsonl(jsonl: &str) -> Result<Report, String> {
    let mut report = Report::default();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = parse(line).map_err(|err| format!("line {}: invalid JSON: {err}", i + 1))?;
        let kind = event
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| format!("line {}: event lacks a \"type\" discriminator", i + 1))?;
        match kind {
            "span" => report.spans.push(SpanRow {
                name: text(&event, "name"),
                dur_us: num(&event, "dur_us"),
                start_us: num(&event, "start_us"),
            }),
            "counter" => report
                .counters
                .push((text(&event, "name"), num(&event, "value"))),
            "gauge" => report
                .gauges
                .push((text(&event, "name"), num(&event, "value"))),
            "quantile" => {
                let pick = |key: &str| event.get(key).and_then(|v| v.as_f64());
                report.quantiles.push(QuantileRow {
                    name: text(&event, "name"),
                    count: num(&event, "count"),
                    p50: pick("p50"),
                    p90: pick("p90"),
                    p99: pick("p99"),
                });
            }
            "flight" => report.flights.push(FlightRow {
                seq: num(&event, "seq"),
                at_us: num(&event, "at_us"),
                trace: text(&event, "trace"),
                kind: text(&event, "kind"),
                name: text(&event, "name"),
                value: num(&event, "value"),
            }),
            // Histograms are already summarized by the quantile lines;
            // anything else is a future event type.
            _ => report.skipped += 1,
        }
    }
    report.flights.sort_by(|a, b| {
        a.seq
            .partial_cmp(&b.seq)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(report)
}

/// Top spans by total (summed) duration per name.
fn span_rollup(report: &Report) -> Vec<(String, usize, f64, f64)> {
    let mut by_name: BTreeMap<&str, (usize, f64, f64)> = BTreeMap::new();
    for span in &report.spans {
        let entry = by_name.entry(&span.name).or_insert((0, 0.0, 0.0));
        entry.0 += 1;
        entry.1 += span.dur_us;
        entry.2 = entry.2.max(span.dur_us);
    }
    let mut rows: Vec<(String, usize, f64, f64)> = by_name
        .into_iter()
        .map(|(name, (count, total, max))| (name.to_string(), count, total, max))
        .collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    rows
}

/// Flight events grouped by trace id, each trace's events in seq order.
fn flight_by_trace(report: &Report) -> Vec<(String, Vec<&FlightRow>)> {
    let mut by_trace: BTreeMap<&str, Vec<&FlightRow>> = BTreeMap::new();
    for row in &report.flights {
        let key = if row.trace.is_empty() {
            "(untagged)"
        } else {
            &row.trace
        };
        by_trace.entry(key).or_default().push(row);
    }
    by_trace
        .into_iter()
        .map(|(trace, rows)| (trace.to_string(), rows))
        .collect()
}

const TOP_SPANS: usize = 20;

/// Renders the dashboard as plain text.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("== telemetry report ==\n");
    out.push_str(&format!(
        "{} spans, {} counters, {} gauges, {} quantile summaries, {} flight events\n",
        report.spans.len(),
        report.counters.len(),
        report.gauges.len(),
        report.quantiles.len(),
        report.flights.len()
    ));

    let rollup = span_rollup(report);
    if !rollup.is_empty() {
        out.push_str(&format!(
            "\n-- top spans by total time (showing {} of {}) --\n",
            rollup.len().min(TOP_SPANS),
            rollup.len()
        ));
        out.push_str(&format!(
            "{:<40} {:>6} {:>14} {:>14}\n",
            "span", "calls", "total_us", "max_us"
        ));
        for (name, count, total, max) in rollup.iter().take(TOP_SPANS) {
            out.push_str(&format!(
                "{name:<40} {count:>6} {total:>14.1} {max:>14.1}\n"
            ));
        }
    }

    if !report.quantiles.is_empty() {
        out.push_str("\n-- quantile summaries --\n");
        out.push_str(&format!(
            "{:<44} {:>8} {:>12} {:>12} {:>12}\n",
            "sketch", "count", "p50", "p90", "p99"
        ));
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.1}"));
        for q in &report.quantiles {
            out.push_str(&format!(
                "{:<44} {:>8} {:>12} {:>12} {:>12}\n",
                q.name,
                q.count,
                fmt(q.p50),
                fmt(q.p90),
                fmt(q.p99)
            ));
        }
    }

    if !report.counters.is_empty() {
        out.push_str("\n-- counters --\n");
        for (name, value) in &report.counters {
            out.push_str(&format!("{name:<64} {value}\n"));
        }
    }
    if !report.gauges.is_empty() {
        out.push_str("\n-- gauges --\n");
        for (name, value) in &report.gauges {
            out.push_str(&format!("{name:<64} {value:.3}\n"));
        }
    }

    let traces = flight_by_trace(report);
    if !traces.is_empty() {
        out.push_str("\n-- flight recorder (events by trace) --\n");
        for (trace, rows) in &traces {
            out.push_str(&format!("{trace}: {} events\n", rows.len()));
            for row in rows {
                out.push_str(&format!(
                    "  seq {:>6}  {:>12.1}us  {:<18} {:<24} {}\n",
                    row.seq, row.at_us, row.kind, row.name, row.value
                ));
            }
        }
    }
    if report.skipped > 0 {
        out.push_str(&format!(
            "\n({} events of unknown type skipped)\n",
            report.skipped
        ));
    }
    out
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the dashboard as a standalone HTML page (no external
/// assets, so the file is archivable as a single CI artifact).
pub fn render_html(report: &Report) -> String {
    let mut body = String::new();
    let table = |body: &mut String, title: &str, header: &[&str], rows: Vec<Vec<String>>| {
        if rows.is_empty() {
            return;
        }
        body.push_str(&format!("<h2>{}</h2>\n<table>\n<tr>", html_escape(title)));
        for h in header {
            body.push_str(&format!("<th>{}</th>", html_escape(h)));
        }
        body.push_str("</tr>\n");
        for row in rows {
            body.push_str("<tr>");
            for cell in row {
                body.push_str(&format!("<td>{}</td>", html_escape(&cell)));
            }
            body.push_str("</tr>\n");
        }
        body.push_str("</table>\n");
    };

    body.push_str(&format!(
        "<p>{} spans, {} counters, {} gauges, {} quantile summaries, {} flight events</p>\n",
        report.spans.len(),
        report.counters.len(),
        report.gauges.len(),
        report.quantiles.len(),
        report.flights.len()
    ));
    table(
        &mut body,
        "Top spans by total time",
        &["span", "calls", "total µs", "max µs"],
        span_rollup(report)
            .into_iter()
            .take(TOP_SPANS)
            .map(|(name, count, total, max)| {
                vec![
                    name,
                    count.to_string(),
                    format!("{total:.1}"),
                    format!("{max:.1}"),
                ]
            })
            .collect(),
    );
    let fmt = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.1}"));
    table(
        &mut body,
        "Quantile summaries",
        &["sketch", "count", "p50", "p90", "p99"],
        report
            .quantiles
            .iter()
            .map(|q| {
                vec![
                    q.name.clone(),
                    q.count.to_string(),
                    fmt(q.p50),
                    fmt(q.p90),
                    fmt(q.p99),
                ]
            })
            .collect(),
    );
    table(
        &mut body,
        "Counters",
        &["counter", "value"],
        report
            .counters
            .iter()
            .map(|(n, v)| vec![n.clone(), v.to_string()])
            .collect(),
    );
    table(
        &mut body,
        "Gauges",
        &["gauge", "value"],
        report
            .gauges
            .iter()
            .map(|(n, v)| vec![n.clone(), format!("{v:.3}")])
            .collect(),
    );
    table(
        &mut body,
        "Flight recorder",
        &["trace", "seq", "at µs", "kind", "name", "value"],
        flight_by_trace(report)
            .iter()
            .flat_map(|(trace, rows)| {
                rows.iter()
                    .map(|r| {
                        vec![
                            trace.clone(),
                            r.seq.to_string(),
                            format!("{:.1}", r.at_us),
                            r.kind.clone(),
                            r.name.clone(),
                            r.value.to_string(),
                        ]
                    })
                    .collect::<Vec<_>>()
            })
            .collect(),
    );
    format!(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n\
         <title>qac telemetry report</title>\n\
         <style>\n\
         body {{ font: 14px/1.4 system-ui, sans-serif; margin: 2em; }}\n\
         table {{ border-collapse: collapse; margin-bottom: 1.5em; }}\n\
         th, td {{ border: 1px solid #ccc; padding: 3px 9px; text-align: left; \
         font-variant-numeric: tabular-nums; }}\n\
         th {{ background: #f0f0f0; }}\n\
         </style></head><body>\n<h1>qac telemetry report</h1>\n{body}</body></html>\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"type\": \"span\", \"id\": 1, \"parent\": null, \"name\": \"compile\", ",
        "\"track\": 0, \"start_us\": 0, \"dur_us\": 120.5}\n",
        "{\"type\": \"span\", \"id\": 2, \"parent\": 1, \"name\": \"compile\", ",
        "\"track\": 0, \"start_us\": 130, \"dur_us\": 80}\n",
        "{\"type\": \"counter\", \"name\": \"qac_cache_hit_total\", \"value\": 3}\n",
        "{\"type\": \"gauge\", \"name\": \"qac_bench_batch_jobs\", \"value\": 9}\n",
        "{\"type\": \"quantile\", \"name\": \"qac_engine_queue_wait_quantiles_us\", ",
        "\"count\": 40, \"sum\": 900, \"p50\": 10.5, \"p90\": 44, \"p99\": 80}\n",
        "{\"type\": \"flight\", \"seq\": 7, \"at_us\": 1500.5, ",
        "\"trace\": \"trace-00000000deadbeef\", \"kind\": \"cache_hit\", ",
        "\"name\": \"king\", \"value\": 1}\n",
        "{\"type\": \"flight\", \"seq\": 5, \"at_us\": 1200.0, ",
        "\"trace\": \"trace-00000000deadbeef\", \"kind\": \"stage_begin\", ",
        "\"name\": \"parse\", \"value\": 0}\n",
        "{\"type\": \"histogram\", \"name\": \"h\", \"bounds\": [], \"counts\": [], ",
        "\"sum\": 0, \"count\": 0}\n",
    );

    #[test]
    fn parses_every_event_type_and_sorts_flights() {
        let report = parse_jsonl(SAMPLE).unwrap();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(
            report.counters,
            vec![("qac_cache_hit_total".to_string(), 3.0)]
        );
        assert_eq!(report.gauges.len(), 1);
        assert_eq!(report.quantiles.len(), 1);
        assert_eq!(report.flights.len(), 2);
        // Flight rows come back in seq order even when the file isn't.
        assert_eq!(report.flights[0].kind, "stage_begin");
        assert_eq!(report.flights[1].kind, "cache_hit");
        // Histogram is a known-but-unreported type here: folded into the
        // quantile view, not an error.
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn rejects_garbage_lines() {
        assert!(parse_jsonl("not json\n").is_err());
        assert!(parse_jsonl("{\"no_type\": 1}\n").is_err());
        assert!(parse_jsonl("").unwrap().spans.is_empty());
    }

    #[test]
    fn text_dashboard_shows_rollups_quantiles_and_traces() {
        let report = parse_jsonl(SAMPLE).unwrap();
        let text = render_text(&report);
        assert!(text.contains("top spans by total time"));
        assert!(text.contains("compile"));
        assert!(text.contains("200.5"), "summed span time:\n{text}");
        assert!(text.contains("qac_engine_queue_wait_quantiles_us"));
        assert!(text.contains("trace-00000000deadbeef: 2 events"));
        assert!(text.contains("cache_hit"));
    }

    #[test]
    fn html_dashboard_is_standalone_and_escaped() {
        let mut report = parse_jsonl(SAMPLE).unwrap();
        report.counters.push(("evil<script>".to_string(), 1.0));
        let html = render_html(&report);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("qac telemetry report"));
        assert!(html.contains("evil&lt;script&gt;"));
        assert!(!html.contains("evil<script>"));
        assert!(html.contains("trace-00000000deadbeef"));
    }
}
