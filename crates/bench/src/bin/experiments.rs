//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p qac-bench --bin experiments            # run all
//! cargo run --release -p qac-bench --bin experiments -- sec6_1  # run one
//! cargo run --release -p qac-bench --bin experiments -- list
//! ```
//!
//! Telemetry flags (any of them enables the global recorder for the
//! whole invocation; see DESIGN.md "Observability"):
//!
//! ```text
//! --trace-json PATH     write every span, metric, and flight event as JSONL
//! --chrome-trace PATH   write a Chrome trace-event file (Perfetto)
//! --metrics PATH        write Prometheus text exposition
//! --bench-baseline PATH write the machine-readable perf baseline JSON
//! ```
//!
//! `report TRACE.jsonl [--html PATH]` is a subcommand, not an
//! experiment: it renders a previously exported JSONL trace as a text
//! dashboard on stdout (spans by total time, counters, gauges, quantile
//! summaries, flight events grouped by trace id) and, with `--html`,
//! additionally writes a standalone HTML page. No experiment re-runs.
//!
//! `--diagnostics-json PATH` makes the `analyze` experiment write its
//! per-workload analyzer diagnostics as JSON (checked in CI by
//! `telemetry_check --diagnostics`).
//!
//! `--sampler sa,bp,pt,pa` restricts the `samplers` throughput table to
//! a comma-separated subset (scalar SA is always measured as the
//! speedup denominator) and, when no experiment is named, implies the
//! `samplers` experiment — `experiments --sampler pt` on its own runs
//! just the tempering row.
//!
//! `--topology` adds the per-topology axis: after the selected
//! experiments, the §6 workloads are embedded on every supported
//! hardware family (Chimera, Pegasus, Zephyr, king's graph) and
//! tabulated by qubit count, chain lengths, and embed time. The same
//! table is available directly as the `topology` experiment id.

use qac_bench::experiments;

// Linking the counting allocator is opt-in: `--features alloc-track`
// pulls in qac-alloc, whose #[global_allocator] feeds the per-stage
// alloc columns on StageTrace. The `use` forces the link; without it
// Cargo would drop the otherwise-unreferenced crate and the allocator
// would silently never install.
#[cfg(feature = "alloc-track")]
use qac_alloc as _;

struct Cli {
    names: Vec<String>,
    trace_json: Option<String>,
    chrome_trace: Option<String>,
    metrics: Option<String>,
    bench_baseline: Option<String>,
    diagnostics_json: Option<String>,
    html: Option<String>,
    sampler: Option<String>,
    cert_dir: Option<String>,
    topology: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        names: Vec::new(),
        trace_json: None,
        chrome_trace: None,
        metrics: None,
        bench_baseline: None,
        diagnostics_json: None,
        html: None,
        sampler: None,
        cert_dir: None,
        topology: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag = |slot: &mut Option<String>| match args.next() {
            Some(path) => *slot = Some(path),
            None => {
                eprintln!("{arg} needs a file path argument");
                std::process::exit(1);
            }
        };
        match arg.as_str() {
            "--trace-json" => flag(&mut cli.trace_json),
            "--chrome-trace" => flag(&mut cli.chrome_trace),
            "--metrics" => flag(&mut cli.metrics),
            "--bench-baseline" => flag(&mut cli.bench_baseline),
            "--diagnostics-json" => flag(&mut cli.diagnostics_json),
            "--html" => flag(&mut cli.html),
            "--sampler" => flag(&mut cli.sampler),
            "--cert-dir" => flag(&mut cli.cert_dir),
            "--topology" => cli.topology = true,
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(1);
            }
            name => cli.names.push(name.to_string()),
        }
    }
    cli
}

/// The `report` subcommand: render an exported JSONL trace as a
/// dashboard without re-running anything.
fn run_report(cli: &Cli) {
    let [_, trace_path] = cli.names.as_slice() else {
        eprintln!("usage: experiments report <trace.jsonl> [--html PATH]");
        std::process::exit(1);
    };
    let jsonl = match std::fs::read_to_string(trace_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {trace_path}: {err}");
            std::process::exit(1);
        }
    };
    let report = match qac_bench::report::parse_jsonl(&jsonl) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("{trace_path}: {err}");
            std::process::exit(1);
        }
    };
    print!("{}", qac_bench::report::render_text(&report));
    if let Some(path) = &cli.html {
        write_or_die(
            path,
            &qac_bench::report::render_html(&report),
            "HTML report",
        );
    }
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => println!("[telemetry] wrote {what} to {path}"),
        Err(err) => {
            eprintln!("cannot write {what} to {path}: {err}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut cli = parse_cli();
    if cli.names.iter().any(|a| a == "list") {
        println!("available experiments:");
        for (name, _) in experiments::ALL {
            println!("  {name}");
        }
        return;
    }
    if cli.names.first().map(String::as_str) == Some("report") {
        run_report(&cli);
        return;
    }
    // `certify verify CERT.json...` is a subcommand like `report`: it
    // re-checks previously written certificates with the independent
    // verifier and exits 1 if any is rejected. Bare `certify` (no
    // `verify`) falls through to the experiment of the same name.
    if cli.names.first().map(String::as_str) == Some("certify")
        && cli.names.get(1).map(String::as_str) == Some("verify")
    {
        let files = &cli.names[2..];
        if files.is_empty() {
            eprintln!("usage: experiments certify verify <CERT.json>...");
            std::process::exit(1);
        }
        let mut failed = false;
        for path in files {
            match experiments::verify_certificate_file(path) {
                Ok(summary) => println!("{summary}"),
                Err(why) => {
                    eprintln!("{why}");
                    failed = true;
                }
            }
        }
        std::process::exit(i32::from(failed));
    }

    if let Some(path) = &cli.diagnostics_json {
        // The analyze experiment reads this to know where to write its
        // per-workload diagnostics JSON.
        std::env::set_var("QAC_ANALYZE_JSON", path);
    }
    if let Some(dir) = &cli.cert_dir {
        // The certify experiment reads this to know where to write the
        // per-workload certificate JSON files.
        std::env::set_var("QAC_CERT_DIR", dir);
        if cli.names.is_empty() {
            cli.names.push("certify".to_string());
        }
    }
    if let Some(filter) = &cli.sampler {
        // The samplers experiment reads this to restrict its table to a
        // comma-separated subset of sa,bp,pt,pa. Implies the experiment:
        // `experiments --sampler pt` alone runs the samplers table.
        std::env::set_var("QAC_SAMPLERS", filter);
        if cli.names.is_empty() {
            cli.names.push("samplers".to_string());
        }
    }

    let telemetry_on =
        cli.trace_json.is_some() || cli.chrome_trace.is_some() || cli.metrics.is_some();
    if telemetry_on {
        qac_telemetry::global().enable();
    }

    if let Some(path) = &cli.bench_baseline {
        // The baseline runs on its own recorder so exported experiment
        // telemetry is not polluted by the baseline's timing runs.
        write_or_die(path, &qac_bench::bench_baseline_json(), "perf baseline");
        if cli.names.is_empty() && !telemetry_on {
            return;
        }
    }

    // `tables` is a group alias for the paper's four table experiments.
    let expanded: Vec<String> = cli
        .names
        .iter()
        .flat_map(|arg| {
            if arg == "tables" {
                vec!["table1", "table2", "table3_4", "table5"]
            } else {
                vec![arg.as_str()]
            }
        })
        .map(str::to_string)
        .collect();
    let mut selected: Vec<&(&str, fn())> = if expanded.is_empty() {
        experiments::ALL.iter().collect()
    } else {
        expanded
            .iter()
            .map(|arg| {
                experiments::ALL
                    .iter()
                    .find(|(name, _)| name == arg)
                    .unwrap_or_else(|| {
                        eprintln!("unknown experiment `{arg}` (try `list`)");
                        std::process::exit(1);
                    })
            })
            .collect()
    };
    if cli.topology && !selected.iter().any(|(name, _)| *name == "topology") {
        selected.push(
            experiments::ALL
                .iter()
                .find(|(name, _)| *name == "topology")
                .expect("the topology experiment is registered"),
        );
    }
    let total = selected.len();
    for (i, (name, run)) in selected.into_iter().enumerate() {
        println!("\n──────────────────────────────────────────────────────────────");
        println!("[{}/{}] {name}", i + 1, total);
        println!("──────────────────────────────────────────────────────────────");
        let start = std::time::Instant::now();
        run();
        println!("\n[{name} done in {:.1?}]", start.elapsed());
    }

    if telemetry_on {
        let snapshot = qac_telemetry::global().snapshot();
        if let Some(path) = &cli.trace_json {
            // The flight recorder is always-on and ring-bounded; its
            // surviving events ride along in the same JSONL file so
            // `experiments report` (and post-mortems) see them without
            // a separate export path.
            let mut jsonl = qac_telemetry::export::jsonl(&snapshot);
            for event in qac_telemetry::global_flight().events() {
                jsonl.push_str(&event.to_json().to_string());
                jsonl.push('\n');
            }
            write_or_die(path, &jsonl, "JSONL trace");
        }
        if let Some(path) = &cli.chrome_trace {
            write_or_die(
                path,
                &qac_telemetry::export::chrome_trace(&snapshot),
                "Chrome trace",
            );
        }
        if let Some(path) = &cli.metrics {
            write_or_die(
                path,
                &qac_telemetry::export::prometheus(&snapshot),
                "Prometheus metrics",
            );
        }
        println!(
            "[telemetry] {} spans, {} counters, {} gauges, {} histograms",
            snapshot.spans.len(),
            snapshot.counters.len(),
            snapshot.gauges.len(),
            snapshot.histograms.len()
        );
    }
}
