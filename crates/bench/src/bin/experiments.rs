//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p qac-bench --bin experiments            # run all
//! cargo run --release -p qac-bench --bin experiments -- sec6_1  # run one
//! cargo run --release -p qac-bench --bin experiments -- list
//! ```

use qac_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "list") {
        println!("available experiments:");
        for (name, _) in experiments::ALL {
            println!("  {name}");
        }
        return;
    }
    let selected: Vec<&(&str, fn())> = if args.is_empty() {
        experiments::ALL.iter().collect()
    } else {
        args.iter()
            .map(|arg| {
                experiments::ALL
                    .iter()
                    .find(|(name, _)| name == arg)
                    .unwrap_or_else(|| {
                        eprintln!("unknown experiment `{arg}` (try `list`)");
                        std::process::exit(1);
                    })
            })
            .collect()
    };
    let total = selected.len();
    for (i, (name, run)) in selected.into_iter().enumerate() {
        println!("\n──────────────────────────────────────────────────────────────");
        println!("[{}/{}] {name}", i + 1, total);
        println!("──────────────────────────────────────────────────────────────");
        let start = std::time::Instant::now();
        run();
        println!("\n[{name} done in {:.1?}]", start.elapsed());
    }
}
