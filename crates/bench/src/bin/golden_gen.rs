//! Regenerates the *topology* golden-chain fixture.
//!
//! ```text
//! cargo run --release -p qac-bench --bin golden_gen
//! cargo run --release -p qac-bench --bin golden_gen -- PATH
//! ```
//!
//! Writes `crates/bench/tests/golden/router_chains_topology.txt` (or
//! PATH) from [`qac_bench::topology_golden_fixture`]. The Chimera
//! fixture `router_chains.txt` is deliberately *not* regenerable: it
//! was captured from the pre-CSR router and pins that history.

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "crates/bench/tests/golden/router_chains_topology.txt".to_string());
    let fixture = qac_bench::topology_golden_fixture();
    let records = fixture
        .lines()
        .filter(|l| l.starts_with("workload "))
        .count();
    if let Err(err) = std::fs::write(&path, &fixture) {
        eprintln!("cannot write {path}: {err}");
        std::process::exit(1);
    }
    println!("wrote {records} records to {path}");
}
