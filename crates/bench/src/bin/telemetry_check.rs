//! CI smoke checker for telemetry export files (no jq/python needed).
//!
//! ```text
//! telemetry_check <trace.jsonl> <metrics.prom> [--counter-max name=value]...
//! ```
//!
//! Asserts that every JSONL line deserializes into the event schema
//! (a JSON object carrying a `"type"` discriminator) and that every
//! Prometheus line matches the text-exposition grammar
//! `^# (HELP|TYPE)|^[a-z_]+({.*})? [0-9.eE+-]+$`. Exits nonzero with a
//! line-numbered message on the first violation.
//!
//! Each `--counter-max name=value` additionally requires the Prometheus
//! file to contain a sample named `name` (exact match, including any
//! label set) whose value is at most `value`. Routing-work counters are
//! deterministic per seed, so CI uses this as a machine-independent
//! perf budget: the budget only trips when the algorithm does more
//! work, never because the runner was slow.

fn die(msg: String) -> ! {
    eprintln!("telemetry_check: {msg}");
    std::process::exit(1);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|err| die(format!("cannot read {path}: {err}")))
}

fn main() {
    let mut paths = Vec::new();
    let mut budgets: Vec<(String, f64)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--counter-max" {
            let spec = args
                .next()
                .unwrap_or_else(|| die("--counter-max needs a name=value argument".to_string()));
            let Some((name, value)) = spec.split_once('=') else {
                die(format!("--counter-max {spec:?} is not name=value"));
            };
            let max: f64 = value
                .parse()
                .unwrap_or_else(|err| die(format!("--counter-max {spec:?}: bad value: {err}")));
            budgets.push((name.to_string(), max));
        } else {
            paths.push(arg);
        }
    }
    let [jsonl_path, prom_path] = paths.as_slice() else {
        die(
            "usage: telemetry_check <trace.jsonl> <metrics.prom> [--counter-max name=value]..."
                .to_string(),
        );
    };

    let jsonl = read(jsonl_path);
    let mut events = 0usize;
    for (i, line) in jsonl.lines().enumerate() {
        let value = qac_telemetry::json::parse(line)
            .unwrap_or_else(|err| die(format!("{jsonl_path}:{}: invalid JSON: {err}", i + 1)));
        if value.get("type").and_then(|t| t.as_str()).is_none() {
            die(format!(
                "{jsonl_path}:{}: event lacks a \"type\" discriminator",
                i + 1
            ));
        }
        events += 1;
    }
    if events == 0 {
        die(format!("{jsonl_path}: no events at all"));
    }

    let prom = read(prom_path);
    let mut samples = 0usize;
    for (i, line) in prom.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if !qac_telemetry::export::is_prometheus_line(line) {
            die(format!(
                "{prom_path}:{}: not valid Prometheus exposition: {line:?}",
                i + 1
            ));
        }
        if !line.starts_with('#') {
            samples += 1;
        }
    }
    if samples == 0 {
        die(format!("{prom_path}: no metric samples at all"));
    }

    for (name, max) in &budgets {
        let value = prom
            .lines()
            .filter(|l| !l.starts_with('#'))
            .find_map(|l| {
                let (sample_name, rest) = l.split_once(' ')?;
                (sample_name == name).then(|| rest.trim())
            })
            .unwrap_or_else(|| die(format!("{prom_path}: no sample named {name}")));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|err| die(format!("{prom_path}: {name} value {value:?}: {err}")));
        if value > *max {
            die(format!(
                "{prom_path}: {name} = {value} exceeds the budget of {max}"
            ));
        }
        println!("telemetry_check: {name} = {value} within budget {max}");
    }

    println!("telemetry_check: {events} JSONL events, {samples} Prometheus samples — OK");
}
