//! CI smoke checker for telemetry export files (no jq/python needed).
//!
//! ```text
//! telemetry_check <trace.jsonl> <metrics.prom> [--counter-max name=value]...
//! telemetry_check --diagnostics <diagnostics.json>
//! telemetry_check --baseline <OLD.json> <NEW.json> [--budget name=ratio]...
//! telemetry_check --help
//! ```
//!
//! Exit codes: **0** all checks passed, **1** a check failed (schema
//! violation, budget exceeded, baseline regression), **2** usage error
//! (bad flags, unreadable spec).
//!
//! Asserts that every JSONL line deserializes into the event schema
//! (a JSON object carrying a `"type"` discriminator) and that every
//! Prometheus line matches the text-exposition grammar
//! `^# (HELP|TYPE)|^[a-z_]+({.*})? [0-9.eE+-]+$`. Exits 1 with a
//! line-numbered message on the first violation.
//!
//! `--diagnostics FILE` instead (or additionally) validates an analyzer
//! diagnostics export (`experiments analyze --diagnostics-json`): a JSON
//! array of per-workload objects, each carrying `workload`, `unsat`,
//! `passes` (objects with nonempty `pass`/`summary`), and `diagnostics`
//! (objects whose `code` matches `QACnnn`, whose `severity` is one of
//! error/warning/info, and whose `pass`/`location`/`message` are
//! nonempty strings).
//!
//! Each `--counter-max name=value` additionally requires the Prometheus
//! file to contain a sample named `name` (exact match, including any
//! label set — the spec splits at the *last* `=`, so labeled names like
//! `qac_embed_heap_pops_total{topology="king"}=98000000` parse) whose
//! value is at most `value`. Routing-work counters are
//! deterministic per seed, so CI uses this as a machine-independent
//! perf budget: the budget only trips when the algorithm does more
//! work, never because the runner was slow.
//!
//! `--baseline OLD.json NEW.json` runs the perf-regression gate over
//! two committed `BENCH_pr*.json` baselines (see `qac_bench::regression`
//! for the policy: deterministic work gauges are gated at a NEW/OLD
//! ratio of 1.30 by default, wall-clock `_us` gauges are report-only,
//! and a gauge that vanishes from NEW is always a violation). Each
//! `--budget name=ratio` overrides the budget for one gauge — `name`
//! may be the exact labeled name or the base name (applies to every
//! label set), and an override also gates an otherwise report-only
//! gauge.
//!
//! Each `--gauge-min name=value` requires a gauge named `name` (exact
//! match, labels embedded) with value at least `value` — in baseline
//! mode the gauge is looked up in NEW.json, in file mode in the
//! Prometheus export. The ratio gate above only catches *regressions
//! relative to OLD*; `--gauge-min` pins an *absolute floor*, which is
//! how CI asserts the packed-sampler and incremental-recompile speedup
//! gauges (dimensionless same-machine ratios, so a floor is
//! machine-independent even though raw `_per_sec`/`_us` gauges are
//! not).

const USAGE: &str = "\
usage:
  telemetry_check <trace.jsonl> <metrics.prom> [--counter-max name=value]... [--gauge-min name=value]...
  telemetry_check --diagnostics <diagnostics.json>
  telemetry_check --baseline <OLD.json> <NEW.json> [--budget name=ratio]... [--gauge-min name=value]...
  telemetry_check --help

exit codes:
  0  all checks passed
  1  a check failed (schema violation, budget exceeded, baseline regression)
  2  usage error (unknown flag, malformed spec, missing operand)";

/// A failed check: exit 1.
fn die(msg: String) -> ! {
    eprintln!("telemetry_check: {msg}");
    std::process::exit(1);
}

/// A usage error: exit 2 (distinct from a failed check so CI scripts
/// can tell "the gate tripped" from "the gate was invoked wrong").
fn usage_die(msg: String) -> ! {
    eprintln!("telemetry_check: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|err| die(format!("cannot read {path}: {err}")))
}

/// Validates the analyzer diagnostics JSON schema; dies on the first
/// violation.
fn check_diagnostics(path: &str) {
    use qac_telemetry::json::Json;

    let nonempty_str = |value: Option<&Json>, what: String| -> String {
        match value.and_then(|v| v.as_str()) {
            Some(s) if !s.is_empty() => s.to_string(),
            Some(_) => die(format!("{what} is empty")),
            None => die(format!("{what} is missing or not a string")),
        }
    };

    let text = read(path);
    let root = qac_telemetry::json::parse(&text)
        .unwrap_or_else(|err| die(format!("{path}: invalid JSON: {err}")));
    let workloads = root
        .as_array()
        .unwrap_or_else(|| die(format!("{path}: top level is not an array")));
    if workloads.is_empty() {
        die(format!("{path}: no workloads at all"));
    }
    let mut total_diagnostics = 0usize;
    for (w, entry) in workloads.iter().enumerate() {
        let name = nonempty_str(
            entry.get("workload"),
            format!("{path}: workload[{w}].workload"),
        );
        if !matches!(entry.get("unsat"), Some(Json::Bool(_))) {
            die(format!("{path}: {name}: unsat is missing or not a boolean"));
        }
        let passes = entry
            .get("passes")
            .and_then(|p| p.as_array())
            .unwrap_or_else(|| die(format!("{path}: {name}: passes is not an array")));
        if passes.len() < 6 {
            die(format!(
                "{path}: {name}: only {} analysis passes (expected >= 6)",
                passes.len()
            ));
        }
        for (i, pass) in passes.iter().enumerate() {
            nonempty_str(
                pass.get("pass"),
                format!("{path}: {name}: passes[{i}].pass"),
            );
            nonempty_str(
                pass.get("summary"),
                format!("{path}: {name}: passes[{i}].summary"),
            );
        }
        let diagnostics = entry
            .get("diagnostics")
            .and_then(|d| d.as_array())
            .unwrap_or_else(|| die(format!("{path}: {name}: diagnostics is not an array")));
        for (i, diag) in diagnostics.iter().enumerate() {
            let at = |field: &str| format!("{path}: {name}: diagnostics[{i}].{field}");
            let code = nonempty_str(diag.get("code"), at("code"));
            let digits = code.strip_prefix("QAC").unwrap_or("");
            if digits.len() != 3 || !digits.bytes().all(|b| b.is_ascii_digit()) {
                die(format!("{}: {code:?} does not match QACnnn", at("code")));
            }
            let severity = nonempty_str(diag.get("severity"), at("severity"));
            if !matches!(severity.as_str(), "error" | "warning" | "info") {
                die(format!(
                    "{}: {severity:?} is not error/warning/info",
                    at("severity")
                ));
            }
            nonempty_str(diag.get("pass"), at("pass"));
            nonempty_str(diag.get("location"), at("location"));
            nonempty_str(diag.get("message"), at("message"));
            total_diagnostics += 1;
        }
    }
    println!(
        "telemetry_check: {} workloads, {total_diagnostics} diagnostics conform to the \
         analyzer schema — OK",
        workloads.len()
    );
}

/// Runs the baseline regression gate; dies (exit 1) on violations.
fn check_baseline(
    old_path: &str,
    new_path: &str,
    overrides: &[(String, f64)],
    floors: &[(String, f64)],
) {
    use qac_bench::regression;

    let parse = |path: &str| {
        regression::parse_baseline(&read(path)).unwrap_or_else(|err| die(format!("{path}: {err}")))
    };
    let old = parse(old_path);
    let new = parse(new_path);
    let comparison = regression::compare(&old, &new, overrides);
    print!("{}", comparison.render_text());
    if !comparison.passed() {
        die(format!(
            "{} gauge(s) regressed beyond budget comparing {new_path} against {old_path}",
            comparison.violations.len()
        ));
    }
    for (name, min) in floors {
        let value = new
            .metrics
            .iter()
            .find_map(|(n, v)| (n == name).then_some(*v))
            .unwrap_or_else(|| die(format!("{new_path}: no gauge named {name}")));
        if value < *min {
            die(format!(
                "{new_path}: {name} = {value} is below the required floor of {min}"
            ));
        }
        println!("telemetry_check: {name} = {value} meets floor {min}");
    }
    println!(
        "telemetry_check: baseline {new_path} holds against {old_path} \
         ({} gauges compared) — OK",
        comparison.diffs.len()
    );
}

fn main() {
    let mut paths = Vec::new();
    let mut budgets: Vec<(String, f64)> = Vec::new();
    let mut ratio_overrides: Vec<(String, f64)> = Vec::new();
    let mut gauge_floors: Vec<(String, f64)> = Vec::new();
    let mut diagnostics: Option<String> = None;
    let mut baseline = false;
    // Split at the LAST '=': labeled sample names such as
    // `qac_embed_heap_pops_total{topology="king"}` contain '=' inside
    // the label set.
    let parse_spec = |flag: &str, spec: String| -> (String, f64) {
        let Some((name, value)) = spec.rsplit_once('=') else {
            usage_die(format!("{flag} {spec:?} is not name=value"));
        };
        let value: f64 = value
            .parse()
            .unwrap_or_else(|err| usage_die(format!("{flag} {spec:?}: bad value: {err}")));
        (name.to_string(), value)
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut operand = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_die(format!("{flag} needs an argument")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--diagnostics" => diagnostics = Some(operand("--diagnostics")),
            "--baseline" => baseline = true,
            "--counter-max" => {
                let spec = operand("--counter-max");
                budgets.push(parse_spec("--counter-max", spec));
            }
            "--budget" => {
                let spec = operand("--budget");
                let (name, ratio) = parse_spec("--budget", spec.clone());
                if ratio <= 0.0 {
                    usage_die(format!("--budget {spec:?}: ratio must be positive"));
                }
                ratio_overrides.push((name, ratio));
            }
            "--gauge-min" => {
                let spec = operand("--gauge-min");
                gauge_floors.push(parse_spec("--gauge-min", spec));
            }
            other if other.starts_with("--") => usage_die(format!("unknown flag `{other}`")),
            _ => paths.push(arg),
        }
    }
    if baseline {
        let [old_path, new_path] = paths.as_slice() else {
            usage_die("--baseline needs exactly two operands: OLD.json NEW.json".to_string());
        };
        check_baseline(old_path, new_path, &ratio_overrides, &gauge_floors);
        return;
    }
    if !ratio_overrides.is_empty() {
        usage_die("--budget only applies to --baseline mode".to_string());
    }
    if let Some(path) = &diagnostics {
        check_diagnostics(path);
        if paths.is_empty() {
            return;
        }
    }
    let [jsonl_path, prom_path] = paths.as_slice() else {
        usage_die("expected exactly two operands: <trace.jsonl> <metrics.prom>".to_string());
    };

    let jsonl = read(jsonl_path);
    let mut events = 0usize;
    for (i, line) in jsonl.lines().enumerate() {
        let value = qac_telemetry::json::parse(line)
            .unwrap_or_else(|err| die(format!("{jsonl_path}:{}: invalid JSON: {err}", i + 1)));
        if value.get("type").and_then(|t| t.as_str()).is_none() {
            die(format!(
                "{jsonl_path}:{}: event lacks a \"type\" discriminator",
                i + 1
            ));
        }
        events += 1;
    }
    if events == 0 {
        die(format!("{jsonl_path}: no events at all"));
    }

    let prom = read(prom_path);
    let mut samples = 0usize;
    for (i, line) in prom.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if !qac_telemetry::export::is_prometheus_line(line) {
            die(format!(
                "{prom_path}:{}: not valid Prometheus exposition: {line:?}",
                i + 1
            ));
        }
        if !line.starts_with('#') {
            samples += 1;
        }
    }
    if samples == 0 {
        die(format!("{prom_path}: no metric samples at all"));
    }

    let sample = |name: &str| -> f64 {
        let value = prom
            .lines()
            .filter(|l| !l.starts_with('#'))
            .find_map(|l| {
                let (sample_name, rest) = l.split_once(' ')?;
                (sample_name == name).then(|| rest.trim())
            })
            .unwrap_or_else(|| die(format!("{prom_path}: no sample named {name}")));
        value
            .parse()
            .unwrap_or_else(|err| die(format!("{prom_path}: {name} value {value:?}: {err}")))
    };
    for (name, max) in &budgets {
        let value = sample(name);
        if value > *max {
            die(format!(
                "{prom_path}: {name} = {value} exceeds the budget of {max}"
            ));
        }
        println!("telemetry_check: {name} = {value} within budget {max}");
    }
    for (name, min) in &gauge_floors {
        let value = sample(name);
        if value < *min {
            die(format!(
                "{prom_path}: {name} = {value} is below the required floor of {min}"
            ));
        }
        println!("telemetry_check: {name} = {value} meets floor {min}");
    }

    println!("telemetry_check: {events} JSONL events, {samples} Prometheus samples — OK");
}
