//! CI smoke checker for telemetry export files (no jq/python needed).
//!
//! ```text
//! telemetry_check <trace.jsonl> <metrics.prom>
//! ```
//!
//! Asserts that every JSONL line deserializes into the event schema
//! (a JSON object carrying a `"type"` discriminator) and that every
//! Prometheus line matches the text-exposition grammar
//! `^# (HELP|TYPE)|^[a-z_]+({.*})? [0-9.eE+-]+$`. Exits nonzero with a
//! line-numbered message on the first violation.

fn die(msg: String) -> ! {
    eprintln!("telemetry_check: {msg}");
    std::process::exit(1);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|err| die(format!("cannot read {path}: {err}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [jsonl_path, prom_path] = args.as_slice() else {
        die("usage: telemetry_check <trace.jsonl> <metrics.prom>".to_string());
    };

    let jsonl = read(jsonl_path);
    let mut events = 0usize;
    for (i, line) in jsonl.lines().enumerate() {
        let value = qac_telemetry::json::parse(line)
            .unwrap_or_else(|err| die(format!("{jsonl_path}:{}: invalid JSON: {err}", i + 1)));
        if value.get("type").and_then(|t| t.as_str()).is_none() {
            die(format!(
                "{jsonl_path}:{}: event lacks a \"type\" discriminator",
                i + 1
            ));
        }
        events += 1;
    }
    if events == 0 {
        die(format!("{jsonl_path}: no events at all"));
    }

    let prom = read(prom_path);
    let mut samples = 0usize;
    for (i, line) in prom.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if !qac_telemetry::export::is_prometheus_line(line) {
            die(format!(
                "{prom_path}:{}: not valid Prometheus exposition: {line:?}",
                i + 1
            ));
        }
        if !line.starts_with('#') {
            samples += 1;
        }
    }
    if samples == 0 {
        die(format!("{prom_path}: no metric samples at all"));
    }

    println!("telemetry_check: {events} JSONL events, {samples} Prometheus samples — OK");
}
