//! Figures 2–3: the end-to-end transformation of the mux add/sub circuit.

use qac_core::{RunOptions, SolverChoice};
use qac_solvers::{ExactSolver, Sampler};

use crate::{compile_workload, FIGURE2};

/// Figure 2(a)→(b) and Figure 3: compile the simple function through all
/// pipeline stages, show the artifacts, and check the paper's example
/// relations.
pub fn run_figure2_3() {
    println!("== Figures 2–3: end-to-end transformation of the mux add/sub circuit ==\n");
    let compiled = compile_workload(FIGURE2, "circuit");

    println!(
        "Verilog (Figure 2a): {} lines",
        compiled.stats.verilog_lines
    );
    println!(
        "digital circuit (Figure 3a): {} cells:",
        compiled.stats.netlist.cells
    );
    for (kind, count) in &compiled.stats.netlist.by_kind {
        println!("  {kind}: {count}");
    }
    println!(
        "\nEDIF netlist excerpt (Figure 3b), {} lines total:",
        compiled.stats.edif_lines
    );
    for line in compiled.edif.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");
    println!(
        "\nQMASM: {} lines (+ {} lines of stdcell.qmasm)",
        compiled.stats.qmasm_lines, compiled.stats.stdcell_lines
    );
    println!(
        "logical pseudo-Boolean function: {} variables, {} terms",
        compiled.stats.logical_variables, compiled.stats.logical_terms
    );

    // The paper's example relations (Figure 2 caption): H is minimized at
    // valid relations like {s=0,a=1,b=0,c=01} and {s=1,a=1,b=1,c=10} but
    // not at {s=1,a=0,b=0,c=11}.
    println!("\nchecking the paper's example relations:");
    let model = &compiled.assembled.ising;
    let (ground, _) = ExactSolver::new().ground_states(model, 1e-6);
    let energy_of = |s: u64, a: u64, b: u64, c: u64| -> f64 {
        // Pin all ports and take the best reachable energy.
        let run = RunOptions::new()
            .pin(&format!("s := {s}"))
            .pin(&format!("a := {a}"))
            .pin(&format!("b := {b}"))
            .pin(&format!("c[1:0] := {c}"))
            .fix_pins()
            .solver(SolverChoice::Exact);
        let outcome = compiled.run(&run).expect("run succeeds");
        outcome
            .best()
            .map(|sample| sample.energy)
            .unwrap_or(f64::INFINITY)
    };
    for (s, a, b, c, valid) in [
        (0u64, 1u64, 0u64, 0b01u64, true),
        (1, 1, 1, 0b10, true),
        (1, 0, 0, 0b11, false),
    ] {
        let e = energy_of(s, a, b, c);
        let tag = if valid { "valid" } else { "invalid" };
        let at_ground = (e - ground).abs() < 1e-6;
        println!(
            "  {{s={s}, a={a}, b={b}, c={c:02b}}} ({tag:7}): H = {e:.3} {} ground {ground:.3}",
            if at_ground { "=" } else { ">" }
        );
        assert_eq!(
            at_ground, valid,
            "relation validity must match ground membership"
        );
    }

    // Physical instantiation on a C16 (Figure 2b talks of physical qubits).
    println!("\nphysical instantiation (D-Wave 2000Q model):");
    let sim = qac_solvers::DWaveSim::new(qac_solvers::DWaveSimOptions {
        topology: qac_solvers::TopologySpec::Chimera { m: 16 },
        ..Default::default()
    });
    match sim.run(model, 1) {
        Ok(result) => {
            println!("  physical qubits: {}", result.physical_qubits);
            println!("  physical terms:  {}", result.physical_terms);
            println!("  coefficient scale factor: {:.4}", result.scale);
        }
        Err(e) => println!("  embedding failed: {e}"),
    }

    // And run it stochastically forward, as Figure 2 describes.
    let run = RunOptions::new()
        .pin("s := 1")
        .pin("a := 1")
        .pin("b := 1")
        .solver(SolverChoice::Sa { sweeps: 256 })
        .num_reads(100);
    let outcome = compiled.run(&run).expect("run succeeds");
    let best = outcome.valid_solutions().next().expect("1+1 computes");
    println!(
        "\nforward run s=1,a=1,b=1 → c = {} (valid fraction {:.2})",
        best.get("c").unwrap(),
        outcome.valid_fraction()
    );
    println!("{}", outcome.quality());
    assert_eq!(best.get("c"), Some(2));
    let _ = ExactSolver::new().sample(model, 1);
}
