//! The `--topology` axis: the same §6 workloads embedded on every
//! supported hardware family side by side.
//!
//! The paper targets one machine (a D-Wave 2000Q, Chimera C16). This
//! experiment asks what the *same compiled programs* cost on newer and
//! denser fabrics — Pegasus (Advantage), Zephyr (Advantage2), and an
//! idealized king's-graph lattice — by routing each workload on each
//! topology and tabulating qubit budget, chain lengths, and embed time.
//! Denser fabrics should shorten chains: every extra coupler per qubit
//! is connectivity the router does not have to synthesize.

use std::time::Instant;

use qac_chimera::{
    find_embedding_or_clique_with_stats, Chimera, EmbedOptions, KingGraph, Pegasus, Topology,
    Zephyr,
};
use qac_pbf::scale::scale_to_range;

use crate::{compile_workload, handcoded_australia_unary, AUSTRALIA, FIGURE2};

/// One row of the table: a workload embedded on one topology.
struct Row {
    topology: String,
    qubits: usize,
    physical: usize,
    max_chain: usize,
    mean_chain: f64,
    embed_us: f64,
    restarts: usize,
}

fn embed_on(
    topology: &dyn Topology,
    edges: &[(usize, usize)],
    num_vars: usize,
    options: &EmbedOptions,
) -> Row {
    let hardware = topology.graph();
    let start = Instant::now();
    let (embedding, stats) =
        find_embedding_or_clique_with_stats(edges, num_vars, topology, &hardware, options)
            .unwrap_or_else(|e| panic!("workload embeds on {}: {e}", topology.family()));
    let embed_us = start.elapsed().as_secs_f64() * 1e6;
    assert!(
        embedding.validate(edges, &hardware),
        "embedding on {} must be valid",
        topology.family()
    );

    // Per-topology routing-work counters, same names and labels the
    // simulator emits, so one metrics export covers both paths.
    let telemetry = qac_telemetry::global();
    let family = topology.family();
    for (name, value) in [
        ("qac_route_iterations_total", stats.route_iterations as u64),
        ("qac_embed_restarts_total", stats.restarts as u64),
        ("qac_embed_heap_pops_total", stats.heap_pops),
        ("qac_embed_edge_relaxations_total", stats.edge_relaxations),
        ("qac_embed_weight_updates_total", stats.weight_updates),
    ] {
        telemetry.counter_add(&format!("{name}{{topology=\"{family}\"}}"), value);
    }

    let chains = embedding.chains();
    let chained: Vec<&Vec<usize>> = chains.iter().filter(|c| !c.is_empty()).collect();
    let mean_chain = if chained.is_empty() {
        0.0
    } else {
        embedding.num_physical_qubits() as f64 / chained.len() as f64
    };
    Row {
        topology: format!("{} {}", family, topology.coordinate_scheme()),
        qubits: topology.num_qubits(),
        physical: embedding.num_physical_qubits(),
        max_chain: embedding.max_chain_length(),
        mean_chain,
        embed_us,
        restarts: stats.restarts,
    }
}

/// The interaction graph a workload presents to the router (scaling
/// never changes the edge set, so every family sees the identical
/// logical graph the simulator would route).
fn workload_edges(source: &str, top: &str) -> (Vec<(usize, usize)>, usize) {
    let compiled = compile_workload(source, top);
    let scaled = scale_to_range(
        &compiled.assembled.ising,
        qac_pbf::scale::CoefficientRange::DWAVE_2000Q,
    );
    let edges = scaled.model.j_iter().map(|t| (t.i, t.j)).collect();
    (edges, scaled.model.num_vars())
}

/// The per-topology comparison table over the §6 workloads.
pub fn run_topology() {
    println!("== topology axis: §6 workloads across hardware families ==\n");

    // (label, edges, num_vars, routable on the king lattice).
    type WorkloadRow = (&'static str, Vec<(usize, usize)>, usize, bool);
    let unary = handcoded_australia_unary();
    let workloads: [WorkloadRow; 3] = [
        {
            let (edges, n) = workload_edges(FIGURE2, "circuit");
            ("figure2", edges, n, true)
        },
        {
            // The compiled map-coloring netlist has degree-15 logical
            // variables; the router places it on the dense fabrics but
            // not on a degree-8 king lattice, so that row is skipped.
            let (edges, n) = workload_edges(AUSTRALIA, "australia");
            ("australia", edges, n, false)
        },
        {
            let edges = unary.j_iter().map(|t| (t.i, t.j)).collect();
            ("australia-unary", edges, unary.num_vars(), true)
        },
    ];
    for (label, edges, num_vars, on_king) in &workloads {
        println!(
            "{label}: {num_vars} logical variables, {} logical couplings",
            edges.len()
        );
        println!(
            "{:<26} {:>8} {:>10} {:>10} {:>11} {:>11} {:>9}",
            "topology", "qubits", "physical", "max chain", "mean chain", "embed time", "restarts"
        );
        let options = EmbedOptions {
            seed: 11,
            ..Default::default()
        };
        let mut rows = vec![
            embed_on(&Chimera::dwave_2000q(), edges, *num_vars, &options),
            embed_on(&Pegasus::new(6), edges, *num_vars, &options),
            embed_on(&Zephyr::new(4), edges, *num_vars, &options),
        ];
        if *on_king {
            rows.push(embed_on(&KingGraph::new(48), edges, *num_vars, &options));
        }
        for r in &rows {
            println!(
                "{:<26} {:>8} {:>10} {:>10} {:>11.2} {:>9.0}µs {:>9}",
                r.topology, r.qubits, r.physical, r.max_chain, r.mean_chain, r.embed_us, r.restarts
            );
        }
        if !on_king {
            println!("king (row, col)             — skipped: compiled netlist exceeds a degree-8 fabric's routability");
        }
        println!();
    }
    println!("expected shape: denser fabrics (Pegasus/Zephyr) carry the same");
    println!("workload with shorter chains than Chimera; the sparse king");
    println!("lattice pays for its degree-8 couplers with the longest chains. ✓");
}
