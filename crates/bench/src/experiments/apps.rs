//! §5 examples as experiments: circuit satisfiability, factoring, map
//! coloring, and the sequential counter.

use std::collections::BTreeSet;

use qac_core::{compile, CompileOptions, RunOptions, SolverChoice};
use qac_netlist::CombSim;

use crate::{compile_workload, AUSTRALIA, CIRCSAT, COUNTER, FIGURE2, MULT};

/// §5.2: solve the CLRS circuit backward, verify forward.
pub fn run_circsat() {
    println!("== §5.2: circuit satisfiability (Figure 4 / Listing 5) ==\n");
    let compiled = compile_workload(CIRCSAT, "circsat");
    println!(
        "compiled: {} gates, {} logical variables",
        compiled.stats.netlist.cells, compiled.stats.logical_variables
    );
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("y := true")
                .solver(SolverChoice::Sa { sweeps: 256 })
                .num_reads(500),
        )
        .expect("run succeeds");
    println!(
        "valid fraction over 500 anneals: {:.3}",
        outcome.valid_fraction()
    );
    println!("{}", outcome.quality());
    let assignments: BTreeSet<(u64, u64, u64)> = outcome
        .valid_solutions()
        .map(|s| {
            (
                s.get("a").unwrap(),
                s.get("b").unwrap(),
                s.get("c").unwrap(),
            )
        })
        .collect();
    println!("satisfying assignments found: {assignments:?} (paper: a=1, b=1, c=0)");
    assert_eq!(assignments, BTreeSet::from([(1, 1, 0)]));

    // Forward verification (the NP check).
    let sim = CombSim::new(&compiled.netlist).unwrap();
    let out = sim.eval_words(&[("a", 1), ("b", 1), ("c", 0)]).unwrap();
    println!("forward check: y = {} ✓", out["y"]);
    assert_eq!(out["y"], 1);
}

/// §5.3: factoring / multiplying / dividing with one compiled multiplier.
pub fn run_factor() {
    println!("== §5.3: factoring integers (Listing 6) ==\n");
    let compiled = compile_workload(MULT, "mult");
    println!(
        "compiled: {} gates, {} logical variables",
        compiled.stats.netlist.cells, compiled.stats.logical_variables
    );

    // The paper's example: C := 10001111 (143) yields {11,13} and {13,11}.
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("C[7:0] := 10001111")
                .solver(SolverChoice::Tabu)
                .num_reads(120),
        )
        .expect("run succeeds");
    println!("{}", outcome.quality());
    let factorizations: BTreeSet<(u64, u64)> = outcome
        .valid_solutions()
        .map(|s| (s.get("A").unwrap(), s.get("B").unwrap()))
        .collect();
    println!(
        "factoring 143: unique solutions {factorizations:?} (paper: {{A=11,B=13}}, {{A=13,B=11}})"
    );
    assert!(factorizations.contains(&(11, 13)) && factorizations.contains(&(13, 11)));

    // Sweep of products: success rate per target. Targets whose factors
    // exceed 4 bits (e.g. 221 = 13 × 17) are UNSAT for this multiplier —
    // the annealer returns only invalid samples, exactly the §5.2
    // behaviour for unsatisfiable instances.
    println!("\nproduct sweep (tabu, 60 reads each):");
    println!(
        "{:>8} {:>10} {:>14} {:>16}",
        "C", "expect", "valid fraction", "factorizations"
    );
    for (target, satisfiable) in [
        (15u64, true),
        (21, true),
        (35, true),
        (77, true),
        (143, true),
        (209, false),
        (221, false),
    ] {
        let outcome = compiled
            .run(
                &RunOptions::new()
                    .pin(&format!("C[7:0] := {target}"))
                    .solver(SolverChoice::Tabu)
                    .num_reads(60),
            )
            .expect("run succeeds");
        let found: BTreeSet<(u64, u64)> = outcome
            .valid_solutions()
            .map(|s| (s.get("A").unwrap(), s.get("B").unwrap()))
            .collect();
        for &(a, b) in &found {
            assert_eq!(a * b, target);
        }
        assert_eq!(!found.is_empty(), satisfiable, "target {target}");
        println!(
            "{:>8} {:>10} {:>14.2} {:>16}",
            target,
            if satisfiable { "SAT" } else { "UNSAT" },
            outcome.valid_fraction(),
            found.len()
        );
    }

    // Multiplication and division modes.
    let product = compiled
        .run(
            &RunOptions::new()
                .pin("A[3:0] := 1101")
                .pin("B[3:0] := 1011")
                .solver(SolverChoice::Tabu)
                .num_reads(30),
        )
        .expect("run succeeds")
        .valid_solutions()
        .next()
        .expect("multiplication works")
        .get("C")
        .unwrap();
    println!("\nmultiply 13 × 11 = {product} ✓");
    assert_eq!(product, 143);
    let quotient = compiled
        .run(
            &RunOptions::new()
                .pin("C[7:0] := 10001111")
                .pin("A[3:0] := 1101")
                .solver(SolverChoice::Tabu)
                .num_reads(30),
        )
        .expect("run succeeds")
        .valid_solutions()
        .next()
        .expect("division works")
        .get("B")
        .unwrap();
    println!("divide 143 / 13 = {quotient} ✓");
    assert_eq!(quotient, 11);
}

/// §5.4: sample four-colorings of Australia and verify them.
pub fn run_map_color() {
    println!("== §5.4: map coloring (Figure 5 / Listing 7) ==\n");
    let compiled = compile_workload(AUSTRALIA, "australia");
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("valid := true")
                .solver(SolverChoice::Sa { sweeps: 384 })
                .num_reads(1000),
        )
        .expect("run succeeds");
    println!(
        "valid fraction over 1000 anneals: {:.3}",
        outcome.valid_fraction()
    );
    println!("{}", outcome.quality());

    let regions = qac_csp::mapcolor::AUSTRALIA_REGIONS;
    let mut distinct: BTreeSet<Vec<u64>> = BTreeSet::new();
    for solution in outcome.valid_solutions() {
        for (a, b) in qac_csp::mapcolor::AUSTRALIA_ADJACENCY {
            assert_ne!(solution.get(a).unwrap(), solution.get(b).unwrap());
        }
        distinct.insert(regions.iter().map(|r| solution.get(r).unwrap()).collect());
    }
    println!(
        "distinct valid colorings sampled: {} (sampling behaviour, §6.2)",
        distinct.len()
    );
    assert!(!distinct.is_empty());
    let first = outcome.valid_solutions().next().unwrap();
    let rendered: Vec<String> = regions
        .iter()
        .map(|r| format!("{r} = {}", first.get(r).unwrap()))
        .collect();
    println!("example coloring: {{{}}}", rendered.join(", "));

    // CSP cross-check: every sampled coloring satisfies the Listing 8 model.
    let model = qac_csp::mapcolor::australia(4);
    for coloring in distinct.iter().take(20) {
        let assignment: Vec<i64> = coloring.iter().map(|&c| c as i64 + 1).collect();
        assert!(
            model.check(&assignment),
            "CSP model rejects an annealer coloring"
        );
    }
    println!("CSP model confirms sampled colorings ✓");
}

/// §4.3.3: the sequential counter's qubit toll under time unrolling.
pub fn run_counter() {
    println!("== §4.3.3: sequential logic (Listing 3), time unrolled ==\n");
    println!(
        "{:>6} {:>12} {:>14} {:>14}",
        "steps", "gate cells", "logical vars", "logical terms"
    );
    let mut prev_vars = 0usize;
    for steps in 1..=6usize {
        let options = CompileOptions {
            unroll_steps: Some(steps),
            ..Default::default()
        };
        let compiled = compile(COUNTER, "count", &options).expect("counter compiles");
        println!(
            "{:>6} {:>12} {:>14} {:>14}",
            steps,
            compiled.stats.netlist.cells,
            compiled.stats.logical_variables,
            compiled.stats.logical_terms
        );
        assert!(
            compiled.stats.logical_variables > prev_vars,
            "unrolling must grow the model"
        );
        prev_vars = compiled.stats.logical_variables;
    }
    println!("\n\"Doing so exacts a heavy toll in qubit count\" — linear growth per step. ✓");

    // And a correctness spot-check at 3 steps (forward execution).
    let options = CompileOptions {
        unroll_steps: Some(3),
        ..Default::default()
    };
    let compiled = compile(COUNTER, "count", &options).unwrap();
    let mut run = RunOptions::new().solver(SolverChoice::Tabu).num_reads(40);
    for t in 0..3 {
        run = run
            .pin(&format!("inc@{t} := 1"))
            .pin(&format!("reset@{t} := 0"))
            .pin(&format!("clk@{t} := 0"));
    }
    let outcome = compiled.run(&run).expect("run succeeds");
    println!("{}", outcome.quality());
    let best = outcome
        .valid_solutions()
        .next()
        .expect("forward run solves");
    assert_eq!(best.get("ff_final"), Some(3));
    println!(
        "forward run over 3 steps counts to {} ✓",
        best.get("ff_final").unwrap()
    );
    let _ = compile_workload(FIGURE2, "circuit");
}
