//! The `edit` experiment: the edit-recompile loop DESIGN.md §14 serves,
//! measured end to end.
//!
//! For each workload the experiment makes the canonical one-gate edit
//! (swap the first 2-input combinational gate, AND↔OR / XOR↔XNOR /
//! NAND↔NOR), then pays for it twice:
//!
//! * **cold** — recompile the edited netlist from scratch and re-embed
//!   the result with no prior knowledge;
//! * **warm** — [`qac_core::compile_netlist_incremental`] seeded with
//!   the pre-edit compile, then [`qac_chimera::find_embedding_incremental`]
//!   seeded with the pre-edit embedding and the dirtied-variable set.
//!
//! Both paths must produce byte-identical artifacts and a validating
//! embedding; the ratio is published as
//! `qac_bench_incremental_speedup{workload=...}` on the global recorder
//! so CI can pin an absolute floor on it, alongside the `qac_incr_*`
//! skip/splice/re-embed counters the warm path increments.

use std::time::Instant;

use qac_chimera::{find_embedding_with_stats, Chimera, EmbedOptions, Embedding};
use qac_core::{
    artifact_mismatch, compile_netlist, compile_netlist_incremental, dirty_variables,
    CompileOptions, Compiled, IncrementalReport,
};
use qac_netlist::{CellKind, Netlist};
use qac_pbf::scale::{scale_to_range, CoefficientRange};

use crate::{compile_workload, AUSTRALIA, FIGURE2};

/// Workloads the edit loop is measured on: the small Figure 2 circuit
/// (compile-dominated) and the §6 map-coloring program (embed-dominated
/// — its cold minor embed costs ~200× its compile, which is where the
/// warm path's partial re-embed earns the speedup floor CI pins).
const WORKLOADS: &[(&str, &str, &str)] = &[
    ("figure2", FIGURE2, "circuit"),
    ("australia", AUSTRALIA, "australia"),
];

/// The canonical single-gate edit: swap the first swappable 2-input
/// combinational gate for its dual. Returns the edited netlist and a
/// human-readable description. Shared by the `edit` experiment, the
/// `compile_edit` criterion pair, and the BENCH baseline so they all
/// measure the same edit.
pub fn canonical_gate_edit(base: &Netlist) -> (Netlist, String) {
    let (cell, swapped) = base
        .cells()
        .iter()
        .enumerate()
        .find_map(|(id, c)| {
            let to = match c.kind {
                CellKind::And => CellKind::Or,
                CellKind::Or => CellKind::And,
                CellKind::Xor => CellKind::Xnor,
                CellKind::Xnor => CellKind::Xor,
                CellKind::Nand => CellKind::Nor,
                CellKind::Nor => CellKind::Nand,
                _ => return None,
            };
            Some((id, to))
        })
        .expect("every workload has a swappable 2-input gate");
    let mut edited = base.clone();
    let from = base.cells()[cell].kind;
    edited.set_cell_kind(cell, swapped);
    (edited, format!("cell {cell} {from:?}->{swapped:?}"))
}

/// Cold and warm costs of one edit on one workload.
struct Row {
    workload: &'static str,
    edit: String,
    cold_us: f64,
    warm_us: f64,
    skipped: usize,
    report: IncrementalReport,
    dirty: usize,
    num_vars: usize,
}

/// Embeds a compiled program on the 2000Q fabric (seed 11, the baseline
/// convention), returning the embedding and its logical edge list.
fn embed_cold(compiled: &Compiled, chimera: &Chimera) -> (Embedding, Vec<(usize, usize)>) {
    let scaled = scale_to_range(&compiled.assembled.ising, CoefficientRange::DWAVE_2000Q);
    let edges: Vec<(usize, usize)> = scaled.model.j_iter().map(|t| (t.i, t.j)).collect();
    let (embedding, _) = find_embedding_with_stats(
        &edges,
        scaled.model.num_vars(),
        &chimera.graph(),
        &EmbedOptions {
            seed: 11,
            ..Default::default()
        },
    )
    .expect("edit workloads embed on a 2000Q");
    (embedding, edges)
}

fn measure(workload: &'static str, source: &str, top: &str) -> Row {
    let options = CompileOptions::default();
    let chimera = Chimera::dwave_2000q();
    let hardware = chimera.graph();

    // The pre-edit state a warm editor session would already hold: a
    // compiled netlist and its embedding.
    let base = compile_workload(source, top).netlist;
    let prev = compile_netlist(base.clone(), &options).expect("pre-edit compile succeeds");
    let (prev_embedding, _) = embed_cold(&prev, &chimera);

    let (edited, edit) = canonical_gate_edit(&base);

    // Cold: recompile + re-embed with no prior knowledge.
    let start = Instant::now();
    let cold = compile_netlist(edited.clone(), &options).expect("cold compile succeeds");
    let (cold_embedding, cold_edges) = embed_cold(&cold, &chimera);
    let cold_us = start.elapsed().as_secs_f64() * 1e6;
    assert!(cold_embedding.validate(&cold_edges, &hardware));

    // Warm: splice the compile, rip up only the dirtied chains.
    let start = Instant::now();
    let (warm, report) =
        compile_netlist_incremental(&prev, edited, &options).expect("warm compile succeeds");
    let scaled = scale_to_range(&warm.assembled.ising, CoefficientRange::DWAVE_2000Q);
    let edges: Vec<(usize, usize)> = scaled.model.j_iter().map(|t| (t.i, t.j)).collect();
    let dirty = dirty_variables(&prev.assembled, &warm.assembled)
        .expect("a gate swap keeps the variable space comparable");
    let (warm_embedding, _) = qac_chimera::find_embedding_incremental(
        &edges,
        scaled.model.num_vars(),
        &hardware,
        &EmbedOptions {
            seed: 11,
            ..Default::default()
        },
        &prev_embedding,
        &dirty,
    )
    .expect("warm embed succeeds");
    let warm_us = start.elapsed().as_secs_f64() * 1e6;

    // The warm path must not trade correctness for speed: artifacts are
    // byte-identical to cold and the repaired embedding validates.
    assert_eq!(
        artifact_mismatch(&cold, &warm),
        None,
        "{workload}: warm artifacts diverged from cold"
    );
    assert!(
        warm_embedding.validate(&edges, &hardware),
        "{workload}: warm embedding must validate"
    );

    let telemetry = qac_telemetry::global();
    telemetry.gauge_set(
        &format!("qac_bench_incremental_cold_us{{workload=\"{workload}\"}}"),
        cold_us,
    );
    telemetry.gauge_set(
        &format!("qac_bench_incremental_warm_us{{workload=\"{workload}\"}}"),
        warm_us,
    );
    telemetry.gauge_set(
        &format!("qac_bench_incremental_speedup{{workload=\"{workload}\"}}"),
        cold_us / warm_us.max(1e-9),
    );

    let num_vars = dirty.len();
    Row {
        workload,
        edit,
        cold_us,
        warm_us,
        skipped: report.skipped(),
        report,
        dirty: dirty.iter().filter(|&&d| d).count(),
        num_vars,
    }
}

/// Runs the edit-recompile loop measurement and prints the table.
pub fn run_edit() {
    println!("== edit: incremental recompile + partial re-embed vs cold ==");
    println!("(one-gate edit; cold = compile + embed from scratch, warm = splice + chain repair)");
    println!();
    let rows: Vec<Row> = WORKLOADS
        .iter()
        .map(|(name, source, top)| measure(name, source, top))
        .collect();

    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>14} {:>13}",
        "workload", "cold (µs)", "warm (µs)", "speedup", "stages skipped", "dirty chains"
    );
    for row in &rows {
        println!(
            "{:<10} {:>12.0} {:>12.0} {:>8.1}x {:>14} {:>10}/{}",
            row.workload,
            row.cold_us,
            row.warm_us,
            row.cold_us / row.warm_us.max(1e-9),
            format!("{}/{}", row.skipped, row.report.stages.len()),
            row.dirty,
            row.num_vars,
        );
    }

    for row in &rows {
        println!();
        println!("-- {} (edit: {}) --", row.workload, row.edit);
        for (stage, disposition) in &row.report.stages {
            println!("  {stage:<14} {disposition}");
        }
    }
}
