//! Ablations of the design choices DESIGN.md calls out: chain strength,
//! energy-gap headroom, roof duality, and the optimization passes.

use std::sync::Arc;

use qac_chimera::{embed_ising, find_embedding_or_clique, Chimera, EmbedOptions, EmbeddingCache};
use qac_core::{compile, CompileOptions};
use qac_pbf::roof::apply_roof_duality;
use qac_pbf::scale::{scale_to_range, CoefficientRange};
use qac_pbf::Ising;
use qac_qmasm::PinStyle;
use qac_solvers::{DWaveSim, DWaveSimOptions, Sampler, SimulatedAnnealing};

use crate::{compile_workload, AUSTRALIA, FIGURE2};

/// A1: chain-strength sweep on the embedded map-coloring program —
/// too weak and chains break, too strong and the logical signal is
/// crushed by coefficient rescaling.
pub fn run_ablation_chain() {
    println!("== A1: chain strength vs chain breaks and solution validity ==\n");
    let compiled = compile_workload(AUSTRALIA, "australia");
    let pinned = compiled
        .assembled
        .pinned_model(&[("valid".to_string(), true)], PinStyle::Bias(4.0))
        .expect("pin resolves");
    let expected = compiled.expected_ground_energy - 4.0;

    // One shared embedding cache across the sweep: chain strength is
    // deliberately not part of the cache key, so every strength reuses
    // the first run's embedding (and the sweep isolates the strength
    // variable instead of also varying the embedding).
    let cache = Arc::new(EmbeddingCache::new());
    println!(
        "{:>14} {:>14} {:>16}",
        "chain strength", "chain breaks", "valid fraction"
    );
    for strength in [0.25, 0.5, 1.0, 2.0] {
        let sim = DWaveSim::new(DWaveSimOptions {
            topology: qac_solvers::TopologySpec::Chimera { m: 16 },
            chain_strength: Some(strength),
            anneal_sweeps: 256,
            embedding_cache: Some(Arc::clone(&cache)),
            ..Default::default()
        });
        let reads = 400;
        let result = sim.run(&pinned, reads).expect("embeds");
        let valid: usize = result
            .logical
            .iter()
            .filter(|s| (s.energy - expected).abs() < 1e-6)
            .map(|s| s.occurrences)
            .sum();
        println!(
            "{:>14.2} {:>14.3} {:>16.3}",
            strength,
            result.mean_chain_breaks,
            valid as f64 / reads as f64
        );
    }
    println!(
        "embedding cache: {} hits, {} misses, {} stored ({} route solves saved)",
        cache.hits(),
        cache.misses(),
        cache.len(),
        cache.hits()
    );
    assert_eq!(
        (cache.hits(), cache.misses()),
        (3, 1),
        "the whole strength sweep shares one embedding"
    );
    println!("\nexpected shape: weak chains break often; strong chains hold. ✓");
}

/// A2: the §4.3.2 gap-maximization claim — cells with more energy
/// headroom survive analog noise better. We emulate shrinking the gap by
/// scaling the whole logical model down before the (fixed-noise)
/// hardware run.
pub fn run_ablation_gap() {
    println!("== A2: energy gap vs robustness under analog noise ==\n");
    let compiled = compile_workload(FIGURE2, "circuit");
    let pinned = compiled
        .assembled
        .pinned_model(
            &[
                ("s".to_string(), true),
                ("a".to_string(), true),
                ("b".to_string(), true),
            ],
            PinStyle::Bias(4.0),
        )
        .expect("pins resolve");
    let expected = compiled.expected_ground_energy - 3.0 * 4.0;

    // Coefficient scaling leaves the interaction graph unchanged, so the
    // whole sweep shares one cached embedding too (the key hashes edges,
    // not weights).
    let cache = Arc::new(EmbeddingCache::new());
    println!("{:>12} {:>16}", "gap scale", "valid fraction");
    for scale in [1.0, 0.5, 0.25, 0.125] {
        // Scale every coefficient: the spectral gap scales identically,
        // but the simulator's noise floor stays fixed.
        let mut scaled = Ising::new(pinned.num_vars());
        for (i, h) in pinned.h_iter() {
            if h != 0.0 {
                scaled.add_h(i, h * scale);
            }
        }
        for t in pinned.j_iter() {
            scaled.add_j(t.i, t.j, t.value * scale);
        }
        let sim = DWaveSim::new(DWaveSimOptions {
            topology: qac_solvers::TopologySpec::Chimera { m: 8 },
            noise_sigma: 0.02,
            anneal_sweeps: 96,
            embedding_cache: Some(Arc::clone(&cache)),
            ..Default::default()
        });
        let reads = 400;
        let result = sim.run(&scaled, reads).expect("embeds");
        let valid: usize = result
            .logical
            .iter()
            .filter(|s| (s.energy - expected * scale).abs() < 1e-6 * scale.max(1e-6))
            .map(|s| s.occurrences)
            .sum();
        println!("{:>12.3} {:>16.3}", scale, valid as f64 / reads as f64);
    }
    println!(
        "embedding cache: {} hits, {} misses, {} stored",
        cache.hits(),
        cache.misses(),
        cache.len()
    );
    assert_eq!((cache.hits(), cache.misses()), (3, 1));
    println!("\nexpected shape: smaller gaps (relative to fixed noise) are less robust. ✓");
}

/// A3: roof-duality qubit elision (§4.4) on pinned programs.
pub fn run_ablation_roof() {
    println!("== A3: roof-duality variable elision on pinned programs ==\n");
    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "program", "variables", "fixed by RD", "remaining"
    );
    let cases: Vec<(&str, Ising)> = vec![
        (
            "fig2 fwd",
            compile_workload(FIGURE2, "circuit")
                .assembled
                .pinned_model(
                    &[
                        ("s".to_string(), true),
                        ("a".to_string(), true),
                        ("b".to_string(), false),
                    ],
                    PinStyle::Fix,
                )
                .unwrap(),
        ),
        (
            "australia",
            compile_workload(AUSTRALIA, "australia")
                .assembled
                .pinned_model(&[("valid".to_string(), true)], PinStyle::Fix)
                .unwrap(),
        ),
    ];
    for (name, model) in cases {
        let total = model.active_variables().len();
        let mut reduced = model.clone();
        let fixed = apply_roof_duality(&mut reduced);
        let remaining = reduced.active_variables().len();
        println!(
            "{:<12} {:>10} {:>12} {:>12}",
            name,
            total,
            fixed.len(),
            remaining
        );
        assert!(remaining <= total);
    }
    println!("\nfixed variables need no qubits at all (paper §4.4). ✓");
}

/// A4: the optimization passes' effect on every pipeline metric.
pub fn run_ablation_opt() {
    println!("== A4: logic optimization (ABC role) on/off ==\n");
    let workloads: [(&str, &str); 3] = [
        (FIGURE2, "circuit"),
        (crate::MULT, "mult"),
        (AUSTRALIA, "australia"),
    ];
    println!(
        "{:<12} {:>6} {:>12} {:>14} {:>16}",
        "program", "opt", "gate cells", "logical vars", "physical qubits"
    );
    let chimera = Chimera::dwave_2000q();
    let hardware = chimera.graph();
    for (source, top) in workloads {
        for opt_level in [0u8, 2u8] {
            let options = CompileOptions {
                opt_level,
                ..Default::default()
            };
            let compiled = compile(source, top, &options).expect("compiles");
            let scaled = scale_to_range(&compiled.assembled.ising, CoefficientRange::DWAVE_2000Q);
            let edges: Vec<(usize, usize)> = scaled.model.j_iter().map(|t| (t.i, t.j)).collect();
            let qubits = if scaled.model.num_vars() > 200 {
                // Unoptimized multiplier-sized models take minutes to
                // embed; the cell/variable columns already show the story.
                "(skipped)".to_string()
            } else {
                find_embedding_or_clique(
                    &edges,
                    scaled.model.num_vars(),
                    &chimera,
                    &hardware,
                    &EmbedOptions {
                        seed: 7,
                        ..Default::default()
                    },
                )
                .map(|e| {
                    let _ = embed_ising(&scaled.model, &e, &hardware, 2.0);
                    e.num_physical_qubits().to_string()
                })
                .unwrap_or_else(|_| "n/a".to_string())
            };
            println!(
                "{:<12} {:>6} {:>12} {:>14} {:>16}",
                top,
                opt_level,
                compiled.stats.netlist.cells,
                compiled.stats.logical_variables,
                qubits
            );
        }
    }
    println!("\nexpected shape: optimization shrinks cells, variables, and qubits. ✓");
    // Sanity: optimization never hurts the logical variable count.
    let unopt = compile(
        FIGURE2,
        "circuit",
        &CompileOptions {
            opt_level: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let opt = compile_workload(FIGURE2, "circuit");
    assert!(opt.stats.logical_variables <= unopt.stats.logical_variables);
    let _ = SimulatedAnnealing::new(0).sample(&Ising::new(1), 1);
}
