//! Tables 1–5: nets, gate-synthesis systems of inequalities, and the
//! standard-cell library.

use qac_gatesynth::{synthesize, CellLibrary, CellSource, SynthError, SynthOptions, TruthTable};
use qac_pbf::{bits_to_spins, Ising, Spin};

/// Table 1: a two-ended net expressed as `H = −σ_A σ_Y`.
pub fn run_table1() {
    println!("== Table 1: a two-ended net as a quadratic pseudo-Boolean function ==\n");
    let mut net = Ising::new(2);
    net.add_j(0, 1, -1.0);
    println!("{:>4} {:>4} {:>12} {:>6}", "σ_A", "σ_Y", "−σ_Aσ_Y", "Min.?");
    let mut min = f64::INFINITY;
    let energies: Vec<(Spin, Spin, f64)> = [-1.0, 1.0]
        .iter()
        .flat_map(|&a| {
            [-1.0, 1.0].iter().map(move |&y| {
                let sa = if a > 0.0 { Spin::Up } else { Spin::Down };
                let sy = if y > 0.0 { Spin::Up } else { Spin::Down };
                (sa, sy, 0.0)
            })
        })
        .map(|(sa, sy, _)| (sa, sy, net.energy(&[sa, sy])))
        .collect();
    for &(_, _, e) in &energies {
        min = min.min(e);
    }
    for (sa, sy, e) in energies {
        let check = if (e - min).abs() < 1e-12 { "✓" } else { "" };
        println!("{:>4} {:>4} {:>12} {:>6}", sa.sign(), sy.sign(), e, check);
    }
    println!("\nMinimized exactly where σ_A = σ_Y (paper Table 1). ✓");
}

/// The paper's example Table 2 solution:
/// `H = 2σ_Y − σ_A − σ_B − 2σ_Yσ_A − 2σ_Yσ_B + σ_Aσ_B`, k = −3.
fn paper_and_example() -> Ising {
    let mut m = Ising::new(3); // order Y, A, B
    m.add_h(0, 2.0);
    m.add_h(1, -1.0);
    m.add_h(2, -1.0);
    m.add_j(0, 1, -2.0);
    m.add_j(0, 2, -2.0);
    m.add_j(1, 2, 1.0);
    m
}

fn print_truth_rows(model: &Ising, truth: &TruthTable, num_ancillas: usize, k: f64) {
    let p = truth.num_pins();
    println!(
        "{:>4} {:>4} {:>4}{} {:>10} {:>12}",
        "σ_Y",
        "σ_A",
        "σ_B",
        if num_ancillas > 0 { "  σ_a" } else { "" },
        "constraint",
        "H(row)"
    );
    for full in 0..(1u64 << (p + num_ancillas)) {
        let spins = bits_to_spins(full, p + num_ancillas);
        let e = model.energy(&spins);
        let pin_row = full & ((1 << p) - 1);
        let constraint = if truth.is_valid(pin_row) && (e - k).abs() < 1e-9 {
            "= k"
        } else {
            "> k"
        };
        let anc = if num_ancillas > 0 {
            format!("  {:>3}", spins[p].sign())
        } else {
            String::new()
        };
        println!(
            "{:>4} {:>4} {:>4}{} {:>10} {:>12.2}",
            spins[0].sign(),
            spins[1].sign(),
            spins[2].sign(),
            anc,
            constraint,
            e
        );
    }
}

/// Table 2: the AND gate's system of inequalities, solved mechanically.
pub fn run_table2() {
    println!("== Table 2: system of inequalities for an AND gate (Y = A ∧ B) ==\n");
    let truth = TruthTable::from_gate(2, |i| i[0] && i[1]);

    println!("paper's example solution (k = −3):");
    let example = paper_and_example();
    print_truth_rows(&example, &truth, 0, -3.0);

    // Mechanical re-derivation with the LP synthesizer (gap-maximizing,
    // hardware coefficient ranges).
    let cell = synthesize("AND", &["Y", "A", "B"], &truth, 0, &SynthOptions::default())
        .expect("AND is realizable");
    let report = cell.verify(&truth);
    println!("\nLP-derived solution (h ∈ [−2,2], J ∈ [−2,1], gap maximized):");
    print_truth_rows(cell.ising(), &truth, 0, report.k);
    println!(
        "\nderived: k = {:.3}, gap = {:.3}, verifies: {}",
        report.k, report.gap, report.matches
    );
    assert!(report.matches);
}

/// Tables 3–4: XOR is unrealizable bare; one ancilla fixes it.
pub fn run_table3_4() {
    println!("== Tables 3–4: XOR needs an ancilla (Y = A ⊕ B) ==\n");
    let truth = TruthTable::from_gate(2, |i| i[0] ^ i[1]);

    // Zero ancillas: the system of inequalities is unsolvable.
    match synthesize("XOR", &["Y", "A", "B"], &truth, 0, &SynthOptions::default()) {
        Err(SynthError::Unrealizable { tried, .. }) => {
            println!("0 ancillas: unsolvable system of inequalities ({tried} augmentation(s) examined) ✓");
        }
        other => panic!("XOR without ancillas should be unrealizable, got {other:?}"),
    }

    // The paper's §4.3.2 example solution with one ancilla (k = −4):
    // H⊕ = −σY + σA − σB + 2σa − σYσA + σYσB − 2σYσa − σAσB + 2σAσa − 2σBσa
    let mut paper = Ising::new(4); // order Y, A, B, a
    paper.add_h(0, -1.0);
    paper.add_h(1, 1.0);
    paper.add_h(2, -1.0);
    paper.add_h(3, 2.0);
    paper.add_j(0, 1, -1.0);
    paper.add_j(0, 2, 1.0);
    paper.add_j(0, 3, -2.0);
    paper.add_j(1, 2, -1.0);
    paper.add_j(1, 3, 2.0);
    paper.add_j(2, 3, -2.0);
    println!("\nTable 4: the paper's augmented solution, all 16 rows (k = −4):");
    print_truth_rows(&paper, &truth, 1, -4.0);
    let paper_cell = qac_gatesynth::CellHamiltonian::new(
        "XOR_paper",
        vec!["Y".into(), "A".into(), "B".into()],
        1,
        paper,
        -4.0,
    );
    let report = paper_cell.verify(&truth);
    println!(
        "\npaper's H⊕ verifies: {} (k = {}, gap = {})",
        report.matches, report.k, report.gap
    );
    assert!(report.matches && (report.k + 4.0).abs() < 1e-9);

    // Mechanical search over the 8 augmentations the paper mentions.
    let derived = synthesize("XOR", &["Y", "A", "B"], &truth, 1, &SynthOptions::default())
        .expect("one ancilla suffices (§4.3.2)");
    let dreport = derived.verify(&truth);
    println!(
        "LP-derived one-ancilla XOR: k = {:.3}, gap = {:.3}, verifies: {}",
        dreport.k, dreport.gap, dreport.matches
    );
    assert!(dreport.matches);
}

/// Table 5: the standard-cell library, verified cell by cell.
pub fn run_table5() {
    println!("== Table 5: standard-cell library ==\n");
    let library = CellLibrary::table5();
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>8} {:>12}",
        "cell", "pins", "ancillas", "k", "gap", "source"
    );
    for (name, cell) in library.iter() {
        let truth = library.truth(name).unwrap();
        let report = cell.verify(truth);
        assert!(report.matches, "{name} failed verification");
        let source = match library.source(name).unwrap() {
            CellSource::Published => "published",
            CellSource::Synthesized => "synthesized",
            CellSource::Composed => "composed",
        };
        println!(
            "{:<8} {:>9} {:>9} {:>9.3} {:>8.3} {:>12}",
            name,
            cell.pins().len(),
            cell.num_ancillas(),
            report.k,
            report.gap,
            source
        );
    }
    println!("\nAll cells minimize exactly on their truth tables. ✓");

    // Cross-check: re-derive every ≤1-ancilla cell from scratch and
    // compare achievable gaps.
    println!("\nre-derivation cross-check (LP synthesizer, same ancilla budget):");
    println!(
        "{:<8} {:>14} {:>14}",
        "cell", "published gap", "derived gap"
    );
    for (name, cell) in library.iter() {
        if cell.num_ancillas() > 1 || name.starts_with("DFF") || name == "BUF" {
            continue;
        }
        let truth = library.truth(name).unwrap();
        let pins: Vec<&str> = cell.pins().iter().map(String::as_str).collect();
        let derived = synthesize(
            name,
            &pins,
            truth,
            cell.num_ancillas(),
            &SynthOptions::default(),
        );
        let published_gap = cell.verify(truth).gap;
        match derived {
            Ok(d) => {
                let derived_gap = d.verify(truth).gap;
                println!("{:<8} {:>14.3} {:>14.3}", name, published_gap, derived_gap);
            }
            Err(e) => println!("{name:<8} {published_gap:>14.3}   (derivation failed: {e})"),
        }
    }
}
