//! The Section 6 workload set through the batch engine.
//!
//! Runs the paper's experiment programs — Figure 2 forward, CLRS
//! circuit-SAT backward, factoring, map coloring, the unrolled counter —
//! as one concurrent batch at 1, 2, and 8 worker threads, prints a
//! per-job quality table, and *asserts* the engine's determinism
//! contract: the fingerprints of every job must be byte-identical across
//! worker counts (a divergence panics with the offending jobs).

use std::sync::Arc;
use std::time::{Duration, Instant};

use qac_chimera::EmbeddingCache;
use qac_core::{compile, CompileOptions, RunOptions, SolverChoice};
use qac_engine::{BatchEngine, EngineOptions, JobResult, JobSpec};
use qac_solvers::DWaveSimOptions;

use crate::{compile_workload, AUSTRALIA, CIRCSAT, COUNTER, FIGURE2, MULT};

/// The §6 batch: every experiment program as an engine job. All jobs
/// share one embedding cache (the hardware-model jobs embed the same
/// program, so the second one is a cache hit).
pub fn sec6_batch_jobs() -> Vec<JobSpec> {
    let figure2 = Arc::new(compile_workload(FIGURE2, "circuit"));
    let circsat = Arc::new(compile_workload(CIRCSAT, "circsat"));
    let mult = Arc::new(compile_workload(MULT, "mult"));
    let australia = Arc::new(compile_workload(AUSTRALIA, "australia"));
    let counter = Arc::new(
        compile(
            COUNTER,
            "count",
            &CompileOptions {
                unroll_steps: Some(2),
                ..Default::default()
            },
        )
        .expect("counter compiles"),
    );
    let cache = Arc::new(EmbeddingCache::new());
    let dwave = || {
        SolverChoice::DWave(Box::new(DWaveSimOptions {
            topology: qac_solvers::TopologySpec::Chimera { m: 4 },
            anneal_sweeps: 192,
            embedding_cache: Some(Arc::clone(&cache)),
            ..Default::default()
        }))
    };

    let mut jobs = Vec::new();
    // Figure 2 forward, all eight input combinations, alternating
    // solvers (two of them on the modeled hardware).
    for case in 0..8u64 {
        let (s, a, b) = (case & 1, (case >> 1) & 1, case >> 2);
        let solver = match case % 4 {
            0 => SolverChoice::Exact,
            1 => SolverChoice::Sa { sweeps: 256 },
            2 => SolverChoice::Tabu,
            _ => dwave(),
        };
        jobs.push(JobSpec::new(
            Arc::clone(&figure2),
            RunOptions::new()
                .pin(&format!("s := {s}"))
                .pin(&format!("a := {a}"))
                .pin(&format!("b := {b}"))
                .solver(solver)
                .num_reads(32),
            format!("figure2:fwd:{s}{a}{b}"),
        ));
    }
    jobs.push(JobSpec::new(
        Arc::clone(&circsat),
        RunOptions::new()
            .pin("y := true")
            .solver(SolverChoice::Sa { sweeps: 256 })
            .num_reads(200),
        "circsat:y=1",
    ));
    for product in [143u64, 15] {
        jobs.push(JobSpec::new(
            Arc::clone(&mult),
            RunOptions::new()
                .pin(&format!("C[7:0] := {product}"))
                .solver(SolverChoice::Tabu)
                .num_reads(60),
            format!("factor:{product}"),
        ));
    }
    jobs.push(JobSpec::new(
        Arc::clone(&australia),
        RunOptions::new()
            .pin("valid := true")
            .solver(SolverChoice::Sa { sweeps: 384 })
            .num_reads(200),
        "australia:valid",
    ));
    // The packed-lane samplers as engine jobs: same backward circsat /
    // map-coloring workloads, exercising SolverChoice::BitParallel,
    // ::ParallelTempering, and ::PopulationAnnealing through the
    // engine's determinism contract.
    jobs.push(JobSpec::new(
        Arc::clone(&circsat),
        RunOptions::new()
            .pin("y := true")
            .solver(SolverChoice::BitParallel { sweeps: 256 })
            .num_reads(192),
        "circsat:y=1:bp",
    ));
    jobs.push(JobSpec::new(
        Arc::clone(&australia),
        RunOptions::new()
            .pin("valid := true")
            .solver(SolverChoice::ParallelTempering {
                sweeps: 256,
                rungs: 8,
            })
            .num_reads(24),
        "australia:valid:pt",
    ));
    jobs.push(JobSpec::new(
        Arc::clone(&australia),
        RunOptions::new()
            .pin("valid := true")
            .solver(SolverChoice::PopulationAnnealing { sweeps: 256 })
            .num_reads(192),
        "australia:valid:pa",
    ));
    jobs.push(JobSpec::new(
        Arc::clone(&counter),
        RunOptions::new()
            .pin("ff_final[5:0] := 2")
            .pin("clk@0 := 0")
            .pin("clk@1 := 0")
            .solver(SolverChoice::Tabu)
            .num_reads(40),
        "counter:out=2",
    ));
    jobs
}

fn fingerprints(results: &[JobResult]) -> Vec<(String, Option<u64>)> {
    results
        .iter()
        .map(|r| (r.label.clone(), r.fingerprint()))
        .collect()
}

fn quality_table(results: &[JobResult]) {
    println!(
        "{:<18} {:>8} {:>8} {:>4} {:>9} {:>9} {:>7} {:>7}  fingerprint",
        "job", "attempts", "worker", "stol", "queue_ms", "run_ms", "valid%", "best E"
    );
    for r in results {
        let (valid, best, fp) = match r.outcome() {
            Some(outcome) => (
                format!("{:.1}", outcome.valid_fraction() * 100.0),
                outcome
                    .best()
                    .map(|b| format!("{:.2}", b.energy))
                    .unwrap_or_else(|| "-".to_string()),
                r.fingerprint()
                    .map(|f| format!("{f:016x}"))
                    .unwrap_or_default(),
            ),
            None => ("-".to_string(), format!("{:?}", r.status), String::new()),
        };
        println!(
            "{:<18} {:>8} {:>8} {:>4} {:>9.2} {:>9.2} {:>7} {:>7}  {}",
            r.label,
            r.attempts,
            r.worker,
            if r.stolen { "yes" } else { "no" },
            r.queue_wait.as_secs_f64() * 1e3,
            r.run_time.as_secs_f64() * 1e3,
            valid,
            best,
            fp,
        );
    }
}

/// Runs `sec6_batch_jobs` on `workers` threads and reports the batch
/// wall time alongside the results.
pub fn run_sec6_batch(workers: usize) -> (Duration, Vec<JobResult>) {
    let engine = BatchEngine::new(EngineOptions {
        workers,
        ..Default::default()
    });
    let start = Instant::now();
    let results = engine.run_batch(sec6_batch_jobs());
    (start.elapsed(), results)
}

/// The `batch` experiment: concurrent Section 6 runs + determinism
/// check across worker counts.
pub fn run_batch() {
    println!("== batch engine: §6 workloads, concurrently ==\n");
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("available parallelism: {parallelism} hardware thread(s)\n");

    let mut wall = Vec::new();
    let mut baseline: Option<Vec<(String, Option<u64>)>> = None;
    for workers in [1usize, 2, 8] {
        let (elapsed, results) = run_sec6_batch(workers);
        wall.push((workers, elapsed));
        println!(
            "-- workers = {workers}: {} jobs in {:.1} ms --",
            results.len(),
            elapsed.as_secs_f64() * 1e3
        );
        if workers == 8 {
            quality_table(&results);
        }
        let prints = fingerprints(&results);
        match &baseline {
            None => baseline = Some(prints),
            Some(expected) => {
                let diverged: Vec<&str> = expected
                    .iter()
                    .zip(&prints)
                    .filter(|(a, b)| a != b)
                    .map(|(a, _)| a.0.as_str())
                    .collect();
                assert!(
                    diverged.is_empty(),
                    "determinism violated at {workers} workers: jobs {diverged:?} \
                     fingerprint differently than at 1 worker"
                );
            }
        }
        println!();
    }

    let t1 = wall[0].1.as_secs_f64();
    let t8 = wall[2].1.as_secs_f64();
    let serialized = parallelism < 8;
    println!(
        "speedup 8 workers vs 1: {:.2}×{}",
        t1 / t8.max(1e-9),
        if serialized {
            " (serialized by host)"
        } else {
            ""
        }
    );
    if serialized {
        println!(
            "(host exposes {parallelism} hardware thread(s) — the 8 workers \
             time-slice, so the ratio measures scheduling overhead, not scaling)"
        );
    }
    println!("fingerprints identical at 1/2/8 workers ✓");
}
