//! The `certify` experiment: translation-validate the §6 workload
//! corpus end to end.
//!
//! For each workload the experiment compiles with certification on
//! (the default), embeds the logical model on an ideal 2000Q Chimera,
//! attaches the back-end obligation with
//! [`qac_core::backend_obligation`], and re-verifies the completed
//! certificate with the *independent* checker
//! [`qac_cert::verify_certificate`] — the same code path `experiments
//! certify verify CERT.json` runs on a file. The printed table shows
//! per-workload obligation counts (proved / skipped) and the verifier's
//! verdict; any error-severity issue aborts the experiment with exit
//! code 1 so CI can gate on it.
//!
//! With `--cert-dir DIR` (environment `QAC_CERT_DIR`), each completed
//! certificate is additionally written to `DIR/<workload>.cert.json` in
//! the deterministic `qac-cert-v1` rendering, ready for offline
//! re-checking.

use qac_chimera::{
    chain_strength_bound, embed_ising, find_embedding_or_clique, Chimera, EmbedOptions,
};
use qac_core::{backend_obligation, compile, CompileOptions};

use crate::{AUSTRALIA, CIRCSAT, COUNTER, FIGURE2, MULT};

/// `(name, source, top, options, embed)` for every certified workload:
/// the §6 corpus (Figure 2 and Listings 3, 5, 6, 7). The sequential
/// counter is certified on its 2-step unrolling; its `embed` flag is
/// off because the unrolled counter has no minor embedding on an ideal
/// 2000Q under the repo's router, so its certificate carries front-end
/// and macro obligations only (the back end attaches at embed time by
/// design — `CompileCertificate::backend` is optional).
pub fn certified_corpus() -> Vec<(
    &'static str,
    &'static str,
    &'static str,
    CompileOptions,
    bool,
)> {
    let unrolled = CompileOptions {
        unroll_steps: Some(2),
        ..CompileOptions::default()
    };
    vec![
        (
            "figure2",
            FIGURE2,
            "circuit",
            CompileOptions::default(),
            true,
        ),
        ("counter", COUNTER, "count", unrolled, false),
        (
            "circsat",
            CIRCSAT,
            "circsat",
            CompileOptions::default(),
            true,
        ),
        ("mult", MULT, "mult", CompileOptions::default(), true),
        (
            "australia",
            AUSTRALIA,
            "australia",
            CompileOptions::default(),
            true,
        ),
    ]
}

/// Compiles `top`, embeds it on a 2000Q (seed 11, the baseline
/// convention), and returns the completed certificate with its back-end
/// obligation attached.
///
/// # Panics
/// Panics if the workload fails to compile, certify, or embed — the
/// corpus is fixed and known-good, so any failure is a regression.
pub fn certify_workload(
    source: &str,
    top: &str,
    options: &CompileOptions,
    embed: bool,
) -> qac_cert::CompileCertificate {
    let compiled = compile(source, top, options)
        .unwrap_or_else(|e| panic!("workload `{top}` failed to certify: {e}"));
    let mut certificate = compiled
        .certificate
        .clone()
        .expect("certification is on by default");
    if !embed {
        certificate.finalize();
        return certificate;
    }

    let chimera = Chimera::dwave_2000q();
    let hardware = chimera.graph();
    let logical = &compiled.assembled.ising;
    let edges: Vec<(usize, usize)> = logical.j_iter().map(|t| (t.i, t.j)).collect();
    let embedding = find_embedding_or_clique(
        &edges,
        logical.num_vars(),
        &chimera,
        &hardware,
        &EmbedOptions {
            seed: 11,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("workload `{top}` failed to embed: {e}"));
    // The programmed chain strength must dominate the QAC03x
    // neighborhood-weight bound for the certificate's sufficiency check,
    // and by convention at least 2·max|J| and 1.0.
    let max_j = logical
        .j_iter()
        .map(|t| t.value.abs())
        .fold(0.0f64, f64::max);
    let strength = chain_strength_bound(logical).max(2.0 * max_j).max(1.0);
    let embedded = embed_ising(logical, &embedding, &hardware, strength);
    certificate.backend = Some(backend_obligation(logical, &embedded));
    certificate.finalize();
    certificate
}

/// The `certify verify CERT.json` subcommand body: parse and re-verify
/// a rendered certificate file. Returns `Err(why)` on a malformed file
/// or any error-severity issue.
///
/// # Errors
/// A human-readable description of the parse failure or the first
/// verification errors.
pub fn verify_certificate_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let certificate = qac_cert::CompileCertificate::parse(&text)
        .map_err(|err| format!("{path}: not a {} certificate: {err}", qac_cert::CERT_FORMAT))?;
    let issues = qac_cert::verify_certificate(&certificate);
    let errors: Vec<_> = issues.iter().filter(|i| i.kind.is_error()).collect();
    if !errors.is_empty() {
        let mut out = format!("{path}: certificate REJECTED ({} errors)", errors.len());
        for issue in &errors {
            out.push_str(&format!(
                "\n  [{:?}] {}: {}",
                issue.kind, issue.site, issue.message
            ));
        }
        return Err(out);
    }
    let skipped = issues.len() - errors.len();
    Ok(format!(
        "{path}: certificate OK — module `{}`, {} obligations verified ({} skipped notes)",
        certificate.module,
        certificate.num_obligations(),
        skipped,
    ))
}

/// §5/§6 certification table over the workload corpus.
pub fn run_certify() {
    println!("== certify: translation validation over the workload corpus ==\n");
    let cert_dir = std::env::var("QAC_CERT_DIR").ok();
    if let Some(dir) = &cert_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create cert dir {dir}: {e}"));
    }

    println!(
        "{:<10} {:>9} {:>7} {:>8} {:>7} {:>7}  verdict",
        "workload", "frontend", "macros", "backend", "proved", "skipped"
    );
    let mut failed = false;
    for (name, source, top, options, embed) in certified_corpus() {
        let certificate = certify_workload(source, top, &options, embed);
        let issues = qac_cert::verify_certificate(&certificate);
        let errors = issues.iter().filter(|i| i.kind.is_error()).count();
        let skipped_notes = issues.len() - errors;
        let enumerated = certificate
            .frontend
            .iter()
            .filter(|o| o.skipped.is_none())
            .count()
            + certificate.macros.len()
            + usize::from(certificate.backend.is_some());
        let verdict = if errors == 0 {
            "OK".to_string()
        } else {
            failed = true;
            format!("REJECTED ({errors} errors)")
        };
        println!(
            "{name:<10} {:>9} {:>7} {:>8} {enumerated:>7} {skipped_notes:>7}  {verdict}",
            certificate.frontend.len(),
            certificate.macros.len(),
            if certificate.backend.is_some() { 1 } else { 0 },
        );
        for issue in issues.iter().filter(|i| i.kind.is_error()) {
            println!("    [{:?}] {}: {}", issue.kind, issue.site, issue.message);
        }
        if let Some(dir) = &cert_dir {
            let path = format!("{dir}/{name}.cert.json");
            std::fs::write(&path, certificate.render())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("    wrote {path}");
        }
    }
    println!(
        "\nre-check any written certificate offline with:\n  \
         cargo run --release -p qac-bench --bin experiments -- certify verify CERT.json"
    );
    assert!(!failed, "a workload certificate failed verification");
}
