//! Sampler throughput shoot-out: scalar SA vs the packed-lane samplers.
//!
//! Runs every §6 baseline workload through scalar simulated annealing,
//! bit-parallel SA, parallel tempering, and population annealing at an
//! equal sweep budget and tabulates reads/sec, speedup over the scalar
//! path, best energy, and ground fraction. `experiments --sampler pt`
//! (or the `QAC_SAMPLERS` env var directly, comma-separated) restricts
//! the table to a subset of `sa,bp,pt,pa`.

use std::time::Instant;

use qac_solvers::{
    BitParallelSa, ParallelTempering, PopulationAnnealing, Sampler, SimulatedAnnealing,
};

use crate::{compile_workload, AUSTRALIA, CIRCSAT, FIGURE2};

/// Reads per measurement — a multiple of 64 so the packed samplers run
/// with every lane active.
const READS: usize = 256;

/// Sweeps per read for every sampler (equal budget).
const SWEEPS: usize = 256;

/// The sampler ids the experiment knows, in table order.
const SAMPLER_IDS: [&str; 4] = ["sa", "bp", "pt", "pa"];

fn selected_samplers() -> Vec<&'static str> {
    let Ok(filter) = std::env::var("QAC_SAMPLERS") else {
        return SAMPLER_IDS.to_vec();
    };
    let wanted: Vec<String> = filter
        .split(',')
        .map(|s| s.trim().to_lowercase())
        .filter(|s| !s.is_empty())
        .collect();
    for name in &wanted {
        assert!(
            SAMPLER_IDS.contains(&name.as_str()),
            "unknown sampler `{name}` in QAC_SAMPLERS (valid: sa, bp, pt, pa)"
        );
    }
    SAMPLER_IDS
        .into_iter()
        .filter(|id| wanted.iter().any(|w| w == id))
        .collect()
}

fn sampler_by_id(id: &str) -> Box<dyn Sampler> {
    match id {
        "sa" => Box::new(SimulatedAnnealing::new(7).with_sweeps(SWEEPS)),
        "bp" => Box::new(BitParallelSa::new(7).with_sweeps(SWEEPS)),
        "pt" => Box::new(ParallelTempering::new(7).with_sweeps(SWEEPS)),
        "pa" => Box::new(PopulationAnnealing::new(7).with_sweeps(SWEEPS)),
        other => unreachable!("unknown sampler id {other}"),
    }
}

/// The `samplers` experiment: per-workload sampler throughput table.
pub fn run_samplers() {
    println!("== sampler throughput: scalar SA vs packed-lane samplers ==");
    println!("({READS} reads, {SWEEPS} sweeps each; speedup is vs scalar SA)\n");
    let samplers = selected_samplers();

    for (name, source, top) in [
        ("figure2", FIGURE2, "circuit"),
        ("circsat", CIRCSAT, "circsat"),
        ("australia", AUSTRALIA, "australia"),
    ] {
        let model = compile_workload(source, top).assembled.ising.clone();
        println!(
            "-- {name}: {} vars, {} couplers --",
            model.num_vars(),
            model.num_couplings()
        );
        println!(
            "{:<8} {:>12} {:>9} {:>12} {:>9}",
            "sampler", "reads/sec", "speedup", "best E", "ground%"
        );
        // Scalar SA is always measured (it is the denominator), but only
        // printed when selected.
        let scalar_start = Instant::now();
        let scalar_set = sampler_by_id("sa").sample(&model, READS);
        let scalar_rps = READS as f64 / scalar_start.elapsed().as_secs_f64().max(1e-9);
        for id in &samplers {
            let (set, rps) = if *id == "sa" {
                (scalar_set.clone(), scalar_rps)
            } else {
                let start = Instant::now();
                let set = sampler_by_id(id).sample(&model, READS);
                (set, READS as f64 / start.elapsed().as_secs_f64().max(1e-9))
            };
            let best = set.best().expect("every run produces samples");
            println!(
                "{:<8} {:>12.0} {:>8.1}× {:>12.3} {:>8.1}%",
                id,
                rps,
                rps / scalar_rps.max(1e-9),
                best.energy,
                set.ground_fraction(1e-6) * 100.0
            );
        }
        println!();
    }
}
