//! One module per paper artifact; see DESIGN.md §4 for the index.

mod ablations;
mod analyze;
mod apps;
mod batch;
mod certify;
mod edit;
mod figure2;
mod samplers;
mod sec6;
mod tables;
mod topology;

pub use ablations::{run_ablation_chain, run_ablation_gap, run_ablation_opt, run_ablation_roof};
pub use analyze::{
    analysis_diagnostics_json, analysis_report_text, analyze_workloads, run_analyze, BROKEN_QMASM,
};
pub use apps::{run_circsat, run_counter, run_factor, run_map_color};
pub use batch::{run_batch, run_sec6_batch, sec6_batch_jobs};
pub use certify::{certified_corpus, certify_workload, run_certify, verify_certificate_file};
pub use edit::{canonical_gate_edit, run_edit};
pub use figure2::run_figure2_3;
pub use samplers::run_samplers;
pub use sec6::{run_sec6_1, run_sec6_2};
pub use tables::{run_table1, run_table2, run_table3_4, run_table5};
pub use topology::run_topology;

/// Every experiment id, in paper order.
pub const ALL: &[(&str, fn())] = &[
    ("table1", run_table1 as fn()),
    ("table2", run_table2),
    ("table3_4", run_table3_4),
    ("table5", run_table5),
    ("figure2_3", run_figure2_3),
    ("circsat", run_circsat),
    ("factor", run_factor),
    ("map_color", run_map_color),
    ("counter", run_counter),
    ("sec6_1", run_sec6_1),
    ("sec6_2", run_sec6_2),
    ("batch", run_batch),
    ("samplers", run_samplers),
    ("ablation_chain", run_ablation_chain),
    ("ablation_gap", run_ablation_gap),
    ("ablation_roof", run_ablation_roof),
    ("ablation_opt", run_ablation_opt),
    ("analyze", run_analyze),
    ("topology", run_topology),
    ("edit", run_edit),
    ("certify", run_certify),
];
