//! `experiments analyze`: the static-analysis lint report over the
//! paper's §5/§6 workloads, plus two demonstrations of the analyzer
//! rejecting broken programs (a contradictory QMASM source at compile
//! time, and contradictory run-time pins).
//!
//! Environment:
//! - `QAC_ANALYZE_STRICT=1` exits nonzero if any workload produces an
//!   Error-severity diagnostic (the `ci.sh analyze` gate).
//! - `QAC_ANALYZE_JSON=PATH` additionally writes the per-workload
//!   diagnostics as a JSON array (validated by `telemetry_check
//!   --diagnostics`).

use qac_analysis::analyze_assembled;
use qac_core::{compile, AnalysisOptions, AnalysisReport, CompileError, CompileOptions};
use qac_core::{RunOptions, SolverChoice};
use qac_qmasm::{assemble, parse, AssembleOptions, MapIncludes};
use qac_telemetry::json::Json;

use crate::{AUSTRALIA, CIRCSAT, COUNTER, FIGURE2, MULT};

/// A QMASM program whose pins contradict through an `=` chain: `A` and
/// `B` are merged into one variable, then pinned to opposite values.
pub const BROKEN_QMASM: &str = "A = B\nA := true\nB := false\nA C -1\n";

/// The workloads the lint report covers: every §5 example plus the
/// unrolled counter.
const WORKLOADS: &[(&str, &str, Option<usize>)] = &[
    ("figure2", FIGURE2, None),
    ("circsat", CIRCSAT, None),
    ("factor", MULT, None),
    ("australia", AUSTRALIA, None),
    ("counter", COUNTER, Some(2)),
];

fn top_module(name: &str) -> &'static str {
    match name {
        "figure2" => "circuit",
        "circsat" => "circsat",
        "factor" => "mult",
        "australia" => "australia",
        "counter" => "count",
        other => panic!("unknown workload {other}"),
    }
}

/// Compiles every workload with the exact audit opened up to 20
/// variables and returns its analysis report.
///
/// # Panics
/// Panics if a workload fails to compile (they are fixed and known-good;
/// an analyzer rejection here is a bug worth a loud failure).
pub fn analyze_workloads() -> Vec<(String, AnalysisReport)> {
    WORKLOADS
        .iter()
        .map(|&(name, source, unroll_steps)| {
            let options = CompileOptions {
                unroll_steps,
                analysis: AnalysisOptions {
                    exact_audit_max_vars: 20,
                    ..Default::default()
                },
                ..Default::default()
            };
            let compiled = compile(source, top_module(name), &options)
                .unwrap_or_else(|e| panic!("workload `{name}` failed to compile: {e}"));
            (name.to_string(), compiled.analysis)
        })
        .collect()
}

/// The full deterministic lint report (workload headers + rendered
/// analysis). This is the text the golden test pins: it contains no
/// wall times, paths, or thread-dependent ordering.
pub fn analysis_report_text() -> String {
    let mut out = String::new();
    for (name, report) in analyze_workloads() {
        out.push_str(&format!("### workload {name}\n"));
        out.push_str(&report.render());
        out.push('\n');
    }
    out
}

/// The per-workload diagnostics as a JSON array — one object per
/// workload with `workload`, `unsat`, `passes`, and `diagnostics` keys.
pub fn analysis_diagnostics_json(reports: &[(String, AnalysisReport)]) -> Json {
    Json::Arr(
        reports
            .iter()
            .map(|(name, report)| {
                let mut fields = vec![("workload".to_string(), Json::Str(name.clone()))];
                match report.to_json() {
                    Json::Obj(rest) => fields.extend(rest),
                    other => fields.push(("report".to_string(), other)),
                }
                Json::Obj(fields)
            })
            .collect(),
    )
}

/// Runs the lint report and the two broken-program demonstrations.
pub fn run_analyze() {
    println!("== static analysis: lint report over the paper workloads ==\n");
    let reports = analyze_workloads();
    let mut errors = 0usize;
    for (name, report) in &reports {
        println!("### workload {name}");
        println!("{}", report.render());
        assert!(
            report.passes.len() >= 6,
            "{name}: expected >= 6 analysis passes, got {}",
            report.passes.len()
        );
        errors += report.diagnostics.errors().count();
    }

    // Demonstration 1: a QMASM program whose pins contradict through an
    // `=` chain is rejected before any annealing could run.
    println!("### broken program (contradictory pins through a chain)");
    println!("{}", BROKEN_QMASM.trim_end());
    let program = parse(BROKEN_QMASM, &MapIncludes::new()).expect("broken program still parses");
    let assembled = assemble(&program, &AssembleOptions::default()).expect("and assembles");
    let report = analyze_assembled(&assembled, Some(&program), &AnalysisOptions::default());
    println!("{}", report.render());
    assert!(report.unsat, "contradictory pins must be flagged UNSAT");
    assert!(
        report.diagnostics.render_text().contains("QAC001"),
        "expected a QAC001 pin-contradiction diagnostic"
    );

    // Demonstration 2: the same contradiction arriving as run-time pins
    // is caught by `Compiled::run` before sampling.
    println!("\n### contradictory run-time pins (figure2, s := 1 and s := 0)");
    let compiled = compile(FIGURE2, "circuit", &CompileOptions::default()).expect("compiles");
    let run = RunOptions::new()
        .pin("s := 1")
        .pin("s := 0")
        .solver(SolverChoice::Exact);
    match compiled.run(&run) {
        Err(CompileError::Analysis(diags)) => {
            println!("rejected as expected:\n{diags}");
            assert!(diags.has_errors());
        }
        other => panic!("expected an analysis rejection, got {other:?}"),
    }

    if let Ok(path) = std::env::var("QAC_ANALYZE_JSON") {
        let json = analysis_diagnostics_json(&reports).to_string();
        match std::fs::write(&path, &json) {
            Ok(()) => println!("\n[analyze] wrote diagnostics JSON to {path}"),
            Err(err) => {
                eprintln!("cannot write diagnostics JSON to {path}: {err}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "\nlint summary: {} workloads, {} error diagnostics",
        reports.len(),
        errors
    );
    if errors > 0 && std::env::var("QAC_ANALYZE_STRICT").as_deref() == Ok("1") {
        eprintln!("QAC_ANALYZE_STRICT=1: failing on Error-severity diagnostics");
        std::process::exit(1);
    }
}
