//! §6: analysis of the map-coloring program — static properties (6.1)
//! and execution time against a classical CSP solver (6.2).

use std::time::Instant;

use qac_chimera::{
    embed_ising, find_embedding_or_clique, find_embedding_portfolio, Chimera, EmbedOptions,
};
use qac_pbf::scale::{scale_to_range, CoefficientRange};
use qac_solvers::{DWaveSim, DWaveSimOptions, TimingModel};

use crate::{compile_workload, handcoded_australia_unary, mean_std, AUSTRALIA};

/// §6.1: static properties of the compiled Listing 7 vs a hand-coded
/// unary encoding.
///
/// Paper numbers for the compiled version: 6 lines Verilog → 123 EDIF →
/// 736 QMASM; 74 logical variables; 312 logical terms; 369 ± 26 physical
/// qubits over 25 compilations; 963 ± 53 physical terms. Hand-coded:
/// 28 logical variables, 88 qubits — a 2.6× / 4× advantage.
pub fn run_sec6_1() {
    println!("== §6.1: static properties of the map-coloring program ==\n");
    let compiled = compile_workload(AUSTRALIA, "australia");

    println!("compiled (automated) version:");
    println!(
        "  Verilog lines:        {:>6}   (paper: 6)",
        compiled.stats.verilog_lines
    );
    println!(
        "  EDIF lines:           {:>6}   (paper: 123)",
        compiled.stats.edif_lines
    );
    println!(
        "  QMASM lines:          {:>6}   (paper: 736, excl. stdcell)",
        compiled.stats.qmasm_lines
    );
    println!(
        "  stdcell.qmasm lines:  {:>6}   (paper: 232)",
        compiled.stats.stdcell_lines
    );
    println!(
        "  logical variables:    {:>6}   (paper: 74)",
        compiled.stats.logical_variables
    );
    println!(
        "  logical terms:        {:>6}   (paper: 312)",
        compiled.stats.logical_terms
    );

    println!("\nper-stage compile trace (wall time, artifact sizes, retries):");
    println!("{}", compiled.trace);

    // Per-stage times over repeated compilations, aggregated with
    // Trace::all / Trace::total_for (the paper's §6.1 protocol averages
    // over 25 compilations; 5 keep this experiment snappy).
    let repeats = 5usize;
    let mut combined = qac_core::Trace::new();
    for _ in 0..repeats {
        for stage in compile_workload(AUSTRALIA, "australia").trace.stages() {
            combined.record(stage.clone());
        }
    }
    println!("mean stage times over {repeats} repeated compilations:");
    println!("{:<14} {:>6} {:>12}", "stage", "runs", "mean time");
    for stage in compiled.trace.stages() {
        let runs = combined.all(&stage.name).count();
        assert_eq!(runs, repeats, "every compile runs every stage once");
        let mean_us = combined.total_for(&stage.name).as_secs_f64() * 1e6 / runs.max(1) as f64;
        println!("{:<14} {runs:>6} {mean_us:>10.1}µs", stage.name);
    }

    // 25 randomized embeddings on a C16 (the paper's protocol).
    let chimera = Chimera::dwave_2000q();
    let hardware = chimera.graph();
    let scaled = scale_to_range(&compiled.assembled.ising, CoefficientRange::DWAVE_2000Q);
    let edges: Vec<(usize, usize)> = scaled.model.j_iter().map(|t| (t.i, t.j)).collect();
    let mut qubits = Vec::new();
    let mut terms = Vec::new();
    for seed in 0..25u64 {
        let options = EmbedOptions {
            seed: 1000 + seed,
            ..Default::default()
        };
        let embedding = find_embedding_or_clique(
            &edges,
            scaled.model.num_vars(),
            &chimera,
            &hardware,
            &options,
        )
        .expect("map coloring embeds on a 2000Q");
        let embedded = embed_ising(&scaled.model, &embedding, &hardware, 2.0);
        qubits.push(embedding.num_physical_qubits() as f64);
        terms.push(embedded.physical.num_terms(1e-12) as f64);
    }
    let (qm, qs) = mean_std(&qubits);
    let (tm, ts) = mean_std(&terms);
    println!(
        "  physical qubits:      {qm:>6.0} ± {qs:.0}   (paper: 369 ± 26, over 25 compilations)"
    );
    println!("  physical terms:       {tm:>6.0} ± {ts:.0}   (paper: 963 ± 53)");

    // The ± spread above is exactly what an embedding portfolio harvests:
    // run 8 seeded searches in parallel, keep the cheapest.
    let (portfolio, stats) = find_embedding_portfolio(
        &edges,
        scaled.model.num_vars(),
        &hardware,
        &EmbedOptions {
            seed: 1000,
            ..Default::default()
        },
        8,
    )
    .expect("portfolio embeds");
    println!(
        "  portfolio (8 arms):   {:>6} qubits, max chain {} ({} restarts, {} route iterations)",
        portfolio.num_physical_qubits(),
        portfolio.max_chain_length(),
        stats.restarts,
        stats.route_iterations
    );

    // Hand-coded unary encoding.
    println!("\nhand-coded unary encoding (Dahl/Lucas):");
    let hand = handcoded_australia_unary();
    println!(
        "  logical variables:    {:>6}   (paper: 28)",
        hand.num_vars()
    );
    let hand_scaled = scale_to_range(&hand, CoefficientRange::DWAVE_2000Q);
    let hand_edges: Vec<(usize, usize)> = hand_scaled.model.j_iter().map(|t| (t.i, t.j)).collect();
    let mut hand_qubits = Vec::new();
    for seed in 0..25u64 {
        let options = EmbedOptions {
            seed: 2000 + seed,
            ..Default::default()
        };
        let embedding = find_embedding_or_clique(
            &hand_edges,
            hand_scaled.model.num_vars(),
            &chimera,
            &hardware,
            &options,
        )
        .expect("unary encoding embeds");
        hand_qubits.push(embedding.num_physical_qubits() as f64);
    }
    let (hm, hs) = mean_std(&hand_qubits);
    println!("  physical qubits:      {hm:>6.0} ± {hs:.0}   (paper's pencil-and-paper: 88)");

    println!("\nconvenience cost of the compiled version (paper: 2.6× / 4×):");
    println!(
        "  logical blow-up:  {:.1}×",
        compiled.stats.logical_variables as f64 / hand.num_vars() as f64
    );
    println!("  physical blow-up: {:.1}×", qm / hm);
    assert!(
        compiled.stats.logical_variables > hand.num_vars(),
        "the compiled version must cost more logical variables"
    );
    assert!(
        qm > hm,
        "the compiled version must cost more physical qubits"
    );
}

/// §6.2: execution time — the D-Wave timing model vs the classical CSP
/// solver, per solution.
///
/// Paper: 1,000,000 anneals of 20 µs → 734 µs per solution (including
/// network and queueing); Chuffed: 1798 µs per solution. "The performance
/// of our approach is not necessarily worse than that of a classical
/// solver."
pub fn run_sec6_2() {
    println!("== §6.2: execution time, annealer vs classical CSP solver ==\n");

    // --- Annealer side. ---
    // Valid fraction measured on the hardware model, then extrapolated to
    // the paper's 1e6 anneals with its timing model.
    let compiled = compile_workload(AUSTRALIA, "australia");
    let pinned = {
        use qac_qmasm::PinStyle;
        compiled
            .assembled
            .pinned_model(&[("valid".to_string(), true)], PinStyle::Bias(4.0))
            .expect("pin resolves")
    };
    let sim = DWaveSim::new(DWaveSimOptions {
        topology: qac_solvers::TopologySpec::Chimera { m: 16 },
        anneal_sweeps: 256,
        chain_strength: Some(1.5),
        ..Default::default()
    });
    let reads = 2000usize;
    let result = sim.run(&pinned, reads).expect("embeds on 2000Q");
    // A read is a "solution" when it decodes to a valid execution of the
    // verifier at the expected ground energy.
    let expected = compiled.expected_ground_energy - 4.0; // pin adds −weight
    let valid_reads: usize = result
        .logical
        .iter()
        .filter(|s| (s.energy - expected).abs() < 1e-6)
        .map(|s| s.occurrences)
        .sum();
    let valid_fraction = valid_reads as f64 / reads as f64;
    println!(
        "hardware model: {} physical qubits, chain breaks {:.3}",
        result.physical_qubits, result.mean_chain_breaks
    );
    println!("valid-solution fraction over {reads} reads: {valid_fraction:.3}");

    // The paper's cost accounting: total job time / number of solutions.
    // The paper's 734 µs/solution at 164 µs/read implies the real 2000Q
    // decoded ~22% of anneals into solutions; we tabulate both our
    // measured fraction and that implied one.
    let timing = TimingModel::default(); // 20 µs anneals, readout, delays
    let anneals = 1_000_000usize;
    let total_us = timing.total_us(anneals);
    println!(
        "\nmodeled D-Wave job of {anneals} anneals ({} µs each + readout):",
        timing.anneal_us
    );
    println!("{:>24} {:>18}", "solution fraction", "µs per solution");
    for (label, fraction) in [
        ("measured (ours)", valid_fraction),
        ("paper-implied 0.223", 0.223),
    ] {
        let solutions = (anneals as f64 * fraction).max(1.0);
        println!("{label:>24} {:>18.0}", total_us / solutions);
    }
    let us_per_solution = total_us / (anneals as f64 * valid_fraction).max(1.0);
    println!("(paper reports 734 µs per solution)");

    // --- Classical CSP side (Listing 8). ---
    let model = qac_csp::mapcolor::australia(4);
    let runs = 20_000usize;
    let start = Instant::now();
    let mut found = 0usize;
    for _ in 0..runs {
        if model.solve().is_some() {
            found += 1;
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(found, runs);
    let csp_us_per_solution = elapsed.as_micros() as f64 / runs as f64;
    println!(
        "classical CSP solver: {runs} runs in {:.1} ms → {csp_us_per_solution:.0} µs per solution (paper, Chuffed: 1798 µs)",
        elapsed.as_secs_f64() * 1e3
    );

    println!("\nshape check:");
    println!(
        "  annealer / CSP time ratio: {:.1} (paper: 734/1798 = 0.41)",
        us_per_solution / csp_us_per_solution.max(1e-9)
    );
    println!("  caveats: our software anneal reaches the ground state less often than the");
    println!("  physical annealer, and our in-process CSP solver has none of Chuffed's");
    println!("  process/FlatZinc overheads — both shift the ratio against the annealer.");
    println!("  The qualitative §6.2 point stands: the CSP solver returns the SAME");
    println!("  coloring every run; the annealer SAMPLES the solution space.");
}
