//! Machine-readable perf baseline (BENCH_pr*.json).
//!
//! Times the three costs that dominate the pipeline — compile, minor
//! embedding, and sampling — for the §6-scale workloads, records them as
//! gauges in a private telemetry [`Recorder`], and renders the metric
//! snapshot as JSON. Committing the output gives later sessions a
//! baseline to diff perf changes against.

use std::time::Instant;

use qac_chimera::{
    find_embedding_or_clique_with_stats, Chimera, EmbedOptions, KingGraph, Pegasus, Topology,
    Zephyr,
};
use qac_pbf::scale::{scale_to_range, CoefficientRange};
use qac_solvers::{
    BitParallelSa, ParallelTempering, PopulationAnnealing, Sampler, SimulatedAnnealing,
};
use qac_telemetry::json::Json;
use qac_telemetry::Recorder;

use crate::{compile_workload, AUSTRALIA, CIRCSAT, FIGURE2};

/// Workloads the baseline covers: Figure 2, the CLRS verifier, and the
/// §6 map-coloring program.
const WORKLOADS: &[(&str, &str, &str)] = &[
    ("figure2", FIGURE2, "circuit"),
    ("circsat", CIRCSAT, "circsat"),
    ("australia", AUSTRALIA, "australia"),
];

/// Reads per sampling measurement.
const SAMPLE_READS: usize = 200;

/// Reads per sampler-throughput measurement — a multiple of 64 so the
/// bit-parallel samplers run with every lane active.
const SAMPLER_READS: usize = 256;

/// Measures compile / embed / sample wall time for every baseline
/// workload and renders the result as a JSON document (the
/// `BENCH_pr2.json` format). Uses its own recorder, so it neither
/// requires nor disturbs the global one.
pub fn bench_baseline_json() -> String {
    let recorder = Recorder::new();
    recorder.enable();

    let chimera = Chimera::dwave_2000q();
    let hardware = chimera.graph();
    for (name, source, top) in WORKLOADS {
        let start = Instant::now();
        let compiled = compile_workload(source, top);
        let compile_us = start.elapsed().as_secs_f64() * 1e6;
        recorder.gauge_set(
            &format!("qac_bench_compile_us{{workload=\"{name}\"}}"),
            compile_us,
        );

        let scaled = scale_to_range(&compiled.assembled.ising, CoefficientRange::DWAVE_2000Q);
        let edges: Vec<(usize, usize)> = scaled.model.j_iter().map(|t| (t.i, t.j)).collect();
        let start = Instant::now();
        let (embedding, stats) = find_embedding_or_clique_with_stats(
            &edges,
            scaled.model.num_vars(),
            &chimera,
            &hardware,
            &EmbedOptions {
                seed: 11,
                ..Default::default()
            },
        )
        .expect("baseline workloads embed on a 2000Q");
        let embed_us = start.elapsed().as_secs_f64() * 1e6;
        recorder.gauge_set(
            &format!("qac_bench_embed_us{{workload=\"{name}\"}}"),
            embed_us,
        );
        recorder.gauge_set(
            &format!("qac_bench_physical_qubits{{workload=\"{name}\"}}"),
            embedding.num_physical_qubits() as f64,
        );
        // Routing-work counters: deterministic per seed, unlike the wall
        // times above, so they diff cleanly across machines and make a
        // "the router got slower" claim falsifiable without a stopwatch.
        for (kind, value) in [
            ("route_iterations", stats.route_iterations as u64),
            ("heap_pops", stats.heap_pops),
            ("edge_relaxations", stats.edge_relaxations),
            ("weight_updates", stats.weight_updates),
        ] {
            recorder.gauge_set(
                &format!("qac_bench_embed_{kind}{{workload=\"{name}\"}}"),
                value as f64,
            );
        }

        let sampler = SimulatedAnnealing::new(7).with_sweeps(256);
        let start = Instant::now();
        let set = sampler.sample(&compiled.assembled.ising, SAMPLE_READS);
        let sample_us = start.elapsed().as_secs_f64() * 1e6;
        assert_eq!(set.total_reads(), SAMPLE_READS);
        recorder.gauge_set(
            &format!("qac_bench_sample_us{{workload=\"{name}\"}}"),
            sample_us,
        );
    }

    // Sampler-throughput baseline: scalar SA vs the packed-lane samplers
    // at an equal budget (256 sweeps, SAMPLER_READS reads — a multiple
    // of 64 so the bit-parallel path wastes no lanes). reads/sec is the
    // number the paper's "verifiers at scale" thesis rides on; the
    // speedup gauge is what CI's `--gauge-min` bar checks (≥10× for the
    // bit-parallel path on figure2 and australia).
    for (name, source, top) in WORKLOADS {
        let model = &compile_workload(source, top).assembled.ising;
        let rps = |sampler: &dyn Sampler, label: &str| -> f64 {
            // Best of three: each repetition's work is identical
            // (deterministic per seed), so the minimum wall time is the
            // least-interfered measurement — scheduler noise only ever
            // inflates a timing, never deflates it.
            let mut secs = f64::INFINITY;
            for _ in 0..3 {
                let start = Instant::now();
                let set = sampler.sample(model, SAMPLER_READS);
                secs = secs.min(start.elapsed().as_secs_f64().max(1e-9));
                assert_eq!(set.total_reads(), SAMPLER_READS);
            }
            let reads_per_sec = SAMPLER_READS as f64 / secs;
            recorder.gauge_set(
                &format!("qac_sampler_reads_per_sec{{sampler=\"{label}\",workload=\"{name}\"}}"),
                reads_per_sec,
            );
            reads_per_sec
        };
        let scalar = rps(&SimulatedAnnealing::new(7).with_sweeps(256), "sa");
        let bp = rps(&BitParallelSa::new(7).with_sweeps(256), "bp");
        rps(&ParallelTempering::new(7).with_sweeps(256), "pt");
        rps(&PopulationAnnealing::new(7).with_sweeps(256), "pa");
        recorder.gauge_set(
            &format!("qac_bench_sampler_speedup_bp_vs_scalar{{workload=\"{name}\"}}"),
            bp / scalar.max(1e-9),
        );
    }

    // Per-topology embedding baseline: the Figure 2 interaction graph
    // routed on every supported fabric (seed 11, default options). The
    // routing-work gauges are deterministic per (seed, topology), so a
    // baseline diff localizes a router regression to a fabric.
    {
        let compiled = compile_workload(FIGURE2, "circuit");
        let scaled = scale_to_range(&compiled.assembled.ising, CoefficientRange::DWAVE_2000Q);
        let edges: Vec<(usize, usize)> = scaled.model.j_iter().map(|t| (t.i, t.j)).collect();
        let topologies: [Box<dyn Topology>; 4] = [
            Box::new(Chimera::dwave_2000q()),
            Box::new(Pegasus::new(6)),
            Box::new(Zephyr::new(4)),
            Box::new(KingGraph::new(48)),
        ];
        for topology in &topologies {
            let family = topology.family();
            let hardware = topology.graph();
            let start = Instant::now();
            let (embedding, stats) = find_embedding_or_clique_with_stats(
                &edges,
                scaled.model.num_vars(),
                topology.as_ref(),
                &hardware,
                &EmbedOptions {
                    seed: 11,
                    ..Default::default()
                },
            )
            .expect("figure2 embeds on every supported fabric");
            let embed_us = start.elapsed().as_secs_f64() * 1e6;
            let label = format!("workload=\"figure2\",topology=\"{family}\"");
            recorder.gauge_set(&format!("qac_bench_embed_us{{{label}}}"), embed_us);
            for (kind, value) in [
                ("physical_qubits", embedding.num_physical_qubits() as u64),
                ("max_chain", embedding.max_chain_length() as u64),
                ("route_iterations", stats.route_iterations as u64),
                ("heap_pops", stats.heap_pops),
                ("edge_relaxations", stats.edge_relaxations),
                ("weight_updates", stats.weight_updates),
            ] {
                recorder.gauge_set(&format!("qac_bench_embed_{kind}{{{label}}}"), value as f64);
            }
        }
    }

    // Edit-turnaround baseline: the canonical one-gate edit paid for
    // cold (recompile + re-embed from scratch) and warm (incremental
    // compile + seeded chain repair, DESIGN.md §14). The speedup gauge
    // is a same-machine ratio, so CI pins an absolute `--gauge-min`
    // floor on it (≥10× on australia, whose cold cost is dominated by
    // the minor embed the warm path mostly reuses). Both paths are
    // asserted byte-identical before anything is recorded: a warm
    // compile that drifted from cold would make the speedup meaningless.
    for (name, source, top) in [
        ("figure2", FIGURE2, "circuit"),
        ("australia", AUSTRALIA, "australia"),
    ] {
        let embed_options = EmbedOptions {
            seed: 11,
            ..Default::default()
        };
        let compile_options = qac_core::CompileOptions::default();
        let base = compile_workload(source, top).netlist;
        let prev = qac_core::compile_netlist(base.clone(), &compile_options)
            .expect("pre-edit compile succeeds");
        let logical = |compiled: &qac_core::Compiled| -> (Vec<(usize, usize)>, usize) {
            let scaled = scale_to_range(&compiled.assembled.ising, CoefficientRange::DWAVE_2000Q);
            (
                scaled.model.j_iter().map(|t| (t.i, t.j)).collect(),
                scaled.model.num_vars(),
            )
        };
        let (prev_edges, prev_vars) = logical(&prev);
        let (prev_embedding, _) = qac_chimera::find_embedding_with_stats(
            &prev_edges,
            prev_vars,
            &hardware,
            &embed_options,
        )
        .expect("pre-edit embed succeeds");
        let (edited, _) = crate::experiments::canonical_gate_edit(&base);

        // Best of three on both sides, same argument as the sampler
        // throughput loop: the work is deterministic per seed, so the
        // minimum is the least-interfered measurement.
        let mut cold_us = f64::INFINITY;
        let mut cold = None;
        for _ in 0..3 {
            let start = Instant::now();
            let compiled =
                qac_core::compile_netlist(edited.clone(), &compile_options).expect("cold compile");
            let (edges, num_vars) = logical(&compiled);
            let (embedding, _) =
                qac_chimera::find_embedding_with_stats(&edges, num_vars, &hardware, &embed_options)
                    .expect("cold embed");
            cold_us = cold_us.min(start.elapsed().as_secs_f64() * 1e6);
            assert!(embedding.validate(&edges, &hardware));
            cold = Some(compiled);
        }
        let cold = cold.unwrap();
        let mut warm_us = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let (warm, _) =
                qac_core::compile_netlist_incremental(&prev, edited.clone(), &compile_options)
                    .expect("warm compile");
            let (edges, num_vars) = logical(&warm);
            let dirty = qac_core::dirty_variables(&prev.assembled, &warm.assembled)
                .expect("a gate swap keeps the variable space comparable");
            let (embedding, _) = qac_chimera::find_embedding_incremental(
                &edges,
                num_vars,
                &hardware,
                &embed_options,
                &prev_embedding,
                &dirty,
            )
            .expect("warm embed");
            warm_us = warm_us.min(start.elapsed().as_secs_f64() * 1e6);
            assert!(
                embedding.validate(&edges, &hardware),
                "warm embedding validates"
            );
            assert_eq!(
                qac_core::artifact_mismatch(&cold, &warm),
                None,
                "warm artifacts must be byte-identical to cold"
            );
        }
        recorder.gauge_set(
            &format!("qac_bench_incremental_cold_us{{workload=\"{name}\"}}"),
            cold_us,
        );
        recorder.gauge_set(
            &format!("qac_bench_incremental_warm_us{{workload=\"{name}\"}}"),
            warm_us,
        );
        recorder.gauge_set(
            &format!("qac_bench_incremental_speedup{{workload=\"{name}\"}}"),
            cold_us / warm_us.max(1e-9),
        );
    }

    // Batch-engine wall clock: the §6 job set on one worker vs eight.
    // The speedup gauge is honest, not aspirational — on a single-core
    // host it sits near 1.0, so `qac_bench_available_parallelism` is
    // recorded alongside it to make the ratio interpretable.
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    recorder.gauge_set("qac_bench_available_parallelism", parallelism as f64);
    let (wall_1, results_1) = crate::experiments::run_sec6_batch(1);
    let (wall_8, results_8) = crate::experiments::run_sec6_batch(8);
    let prints = |rs: &[qac_engine::JobResult]| -> Vec<Option<u64>> {
        rs.iter().map(|r| r.fingerprint()).collect()
    };
    assert_eq!(
        prints(&results_1),
        prints(&results_8),
        "batch results must be identical at 1 and 8 workers"
    );
    recorder.gauge_set(
        "qac_bench_batch_wall_us{workers=\"1\"}",
        wall_1.as_secs_f64() * 1e6,
    );
    recorder.gauge_set(
        "qac_bench_batch_wall_us{workers=\"8\"}",
        wall_8.as_secs_f64() * 1e6,
    );
    recorder.gauge_set(
        "qac_bench_batch_speedup_8v1",
        wall_1.as_secs_f64() / wall_8.as_secs_f64().max(1e-9),
    );
    // When the host has fewer cores than the 8-worker run asks for, the
    // "speedup" is really 8 threads time-slicing one core — flag it so a
    // near-1.0 ratio reads as "serialized by host", not "engine broken".
    recorder.gauge_set(
        "qac_bench_batch_serialized_by_host",
        if parallelism < 8 { 1.0 } else { 0.0 },
    );
    recorder.gauge_set("qac_bench_batch_jobs", results_1.len() as f64);

    let snapshot = recorder.snapshot();
    let metrics = Json::Obj(
        snapshot
            .gauges
            .iter()
            .map(|(name, value)| (name.clone(), Json::Num(*value)))
            .collect(),
    );
    let doc = Json::Obj(vec![
        (
            "schema".to_string(),
            Json::Str("qac-bench-baseline-v1".to_string()),
        ),
        (
            "description".to_string(),
            Json::Str(
                "compile/embed/sample wall times (µs) for the Section 6 workloads, \
                 sampler throughput (reads/sec) for scalar SA vs the packed-lane \
                 samplers, the figure2 embedding baseline per hardware topology, \
                 batch-engine wall clock at 1 vs 8 workers, plus cold-vs-warm \
                 edit turnaround for the incremental compiler"
                    .to_string(),
            ),
        ),
        ("sample_reads".to_string(), Json::Num(SAMPLE_READS as f64)),
        (
            "workloads".to_string(),
            Json::Arr(
                WORKLOADS
                    .iter()
                    .map(|(name, ..)| Json::Str((*name).to_string()))
                    .collect(),
            ),
        ),
        ("metrics".to_string(), metrics),
    ]);
    format!("{doc}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_json_parses_and_covers_every_workload() {
        let text = bench_baseline_json();
        let doc = qac_telemetry::json::parse(&text).expect("baseline is valid JSON");
        let metrics = doc.get("metrics").expect("metrics object");
        for (name, ..) in WORKLOADS {
            for kind in ["compile", "embed", "sample"] {
                let key = format!("qac_bench_{kind}_us{{workload=\"{name}\"}}");
                let value = metrics
                    .get(&key)
                    .and_then(|v| v.as_f64())
                    .unwrap_or_else(|| panic!("missing {key}"));
                assert!(value > 0.0, "{key} must be positive, got {value}");
            }
            for kind in [
                "route_iterations",
                "heap_pops",
                "edge_relaxations",
                "weight_updates",
            ] {
                let key = format!("qac_bench_embed_{kind}{{workload=\"{name}\"}}");
                let value = metrics
                    .get(&key)
                    .and_then(|v| v.as_f64())
                    .unwrap_or_else(|| panic!("missing {key}"));
                assert!(value > 0.0, "{key} must be positive, got {value}");
            }
        }
        for (name, ..) in WORKLOADS {
            for sampler in ["sa", "bp", "pt", "pa"] {
                let key = format!(
                    "qac_sampler_reads_per_sec{{sampler=\"{sampler}\",workload=\"{name}\"}}"
                );
                let value = metrics
                    .get(&key)
                    .and_then(|v| v.as_f64())
                    .unwrap_or_else(|| panic!("missing {key}"));
                assert!(value > 0.0, "{key} must be positive, got {value}");
            }
            let key = format!("qac_bench_sampler_speedup_bp_vs_scalar{{workload=\"{name}\"}}");
            let value = metrics
                .get(&key)
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("missing {key}"));
            assert!(value > 0.0, "{key} must be positive, got {value}");
        }
        for family in ["chimera", "pegasus", "zephyr", "king"] {
            for kind in ["us", "physical_qubits", "max_chain", "heap_pops"] {
                let key =
                    format!("qac_bench_embed_{kind}{{workload=\"figure2\",topology=\"{family}\"}}");
                let value = metrics
                    .get(&key)
                    .and_then(|v| v.as_f64())
                    .unwrap_or_else(|| panic!("missing {key}"));
                assert!(value > 0.0, "{key} must be positive, got {value}");
            }
        }
        for name in ["figure2", "australia"] {
            for kind in ["cold_us", "warm_us", "speedup"] {
                let key = format!("qac_bench_incremental_{kind}{{workload=\"{name}\"}}");
                let value = metrics
                    .get(&key)
                    .and_then(|v| v.as_f64())
                    .unwrap_or_else(|| panic!("missing {key}"));
                assert!(value > 0.0, "{key} must be positive, got {value}");
            }
            let key = format!("qac_bench_incremental_speedup{{workload=\"{name}\"}}");
            let speedup = metrics.get(&key).and_then(|v| v.as_f64()).unwrap();
            assert!(
                speedup > 1.0,
                "the warm edit path must beat cold, got {speedup}"
            );
        }
        for key in [
            "qac_bench_batch_wall_us{workers=\"1\"}",
            "qac_bench_batch_wall_us{workers=\"8\"}",
            "qac_bench_batch_speedup_8v1",
            "qac_bench_available_parallelism",
            "qac_bench_batch_jobs",
        ] {
            let value = metrics
                .get(key)
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("missing {key}"));
            assert!(value > 0.0, "{key} must be positive, got {value}");
        }
        let serialized = metrics
            .get("qac_bench_batch_serialized_by_host")
            .and_then(|v| v.as_f64())
            .expect("missing qac_bench_batch_serialized_by_host");
        let parallelism = metrics
            .get("qac_bench_available_parallelism")
            .and_then(|v| v.as_f64())
            .unwrap();
        assert_eq!(
            serialized,
            if parallelism < 8.0 { 1.0 } else { 0.0 },
            "serialized-by-host flag must reflect the host's parallelism"
        );
    }
}
