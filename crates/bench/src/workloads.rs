//! The paper's Verilog programs (Listings 3, 5, 6, 7 and Figure 2) plus
//! shared helpers used by experiments and benches.

use qac_core::{compile, CompileOptions, Compiled};
use qac_pbf::{Ising, Qubo};

/// Paper Figure 2(a): mux-selected add/subtract.
pub const FIGURE2: &str = r#"
    module circuit (s, a, b, c);
      input s, a, b;
      output [1:0] c;
      assign c = s ? a+b : a-b;
    endmodule
"#;

/// Paper Listing 3: 6-bit resettable counter.
pub const COUNTER: &str = r#"
    module count (clk, inc, reset, out);
      input clk;
      input inc;
      input reset;
      output [5:0] out;
      reg [5:0] var;
      always @(posedge clk)
        if (reset)
          var <= 0;
        else
          if (inc)
            var <= var + 1;
      assign out = var;
    endmodule
"#;

/// Paper Listing 5: the CLRS circuit-satisfiability verifier.
pub const CIRCSAT: &str = r#"
    module circsat (a, b, c, y);
      input a, b, c;
      output y;
      wire [1:10] x;
      assign x[1] = a;
      assign x[2] = b;
      assign x[3] = c;
      assign x[4] = ~x[3];
      assign x[5] = x[1] | x[2];
      assign x[6] = ~x[4];
      assign x[7] = x[1] & x[2] & x[4];
      assign x[8] = x[5] | x[6];
      assign x[9] = x[6] | x[7];
      assign x[10] = x[8] & x[9] & x[7];
      assign y = x[10];
    endmodule
"#;

/// Paper Listing 6: the 4×4 multiplier run backward to factor.
pub const MULT: &str = r#"
    module mult (A, B, C);
      input [3:0] A;
      input [3:0] B;
      output[7:0] C;
      assign C = A * B;
    endmodule
"#;

/// Paper Listing 7: the Australia four-coloring verifier.
pub const AUSTRALIA: &str = r#"
    module australia (NSW, QLD, SA, VIC, WA, NT, ACT, valid);
      input [1:0] NSW, QLD, SA, VIC, WA, NT, ACT;
      output valid;
      assign valid = WA != NT && WA != SA && NT != SA && NT != QLD
                  && SA != QLD && SA != NSW && SA != VIC && QLD != NSW
                  && NSW != VIC && NSW != ACT;
    endmodule
"#;

/// Compiles one of the paper workloads with default options.
///
/// # Panics
/// Panics if compilation fails (the workloads are fixed and known-good).
pub fn compile_workload(source: &str, top: &str) -> Compiled {
    compile(source, top, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("workload `{top}` failed to compile: {e}"))
}

/// The hand-coded unary ("one variable per region per color") map-coloring
/// Hamiltonian of §6.1, following Dahl / Lucas / Rieffel et al.:
/// 4 colors × 7 regions = 28 logical variables.
///
/// Energy terms (QUBO): a one-hot penalty `(Σ_c x_{r,c} − 1)²` per region
/// and a conflict penalty `x_{r,c}·x_{s,c}` per adjacency and color.
pub fn handcoded_australia_unary() -> Ising {
    let regions = qac_csp::mapcolor::AUSTRALIA_REGIONS;
    let adjacency = qac_csp::mapcolor::AUSTRALIA_ADJACENCY;
    let colors = 4usize;
    let var = |region: usize, color: usize| region * colors + color;
    let mut q = Qubo::new(regions.len() * colors);
    // One-hot: (Σx − 1)² = Σx² − 2Σx + 2Σ_{c<c'} x x' + 1
    //        = −Σx + 2Σ_{c<c'} x x' + 1   (x² = x)
    for r in 0..regions.len() {
        for c in 0..colors {
            q.add_linear(var(r, c), -1.0);
            for c2 in (c + 1)..colors {
                q.add_quadratic(var(r, c), var(r, c2), 2.0);
            }
        }
        q.add_offset(1.0);
    }
    // Adjacent regions must not share a color.
    let index_of = |name: &str| regions.iter().position(|&r| r == name).unwrap();
    for (a, b) in adjacency {
        let (ra, rb) = (index_of(a), index_of(b));
        for c in 0..colors {
            q.add_quadratic(var(ra, c), var(rb, c), 1.0);
        }
    }
    q.to_ising()
}

/// Decodes a unary-encoded solution into per-region colors; `None` if any
/// region's one-hot constraint is broken.
pub fn decode_unary_coloring(spins: &[qac_pbf::Spin]) -> Option<Vec<usize>> {
    let colors = 4;
    let regions = spins.len() / colors;
    let mut out = Vec::with_capacity(regions);
    for r in 0..regions {
        let on: Vec<usize> = (0..colors)
            .filter(|&c| spins[r * colors + c] == qac_pbf::Spin::Up)
            .collect();
        if on.len() != 1 {
            return None;
        }
        out.push(on[0]);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qac_solvers::{Sampler, TabuSearch};

    #[test]
    fn workloads_compile() {
        assert!(compile_workload(FIGURE2, "circuit").stats.logical_variables > 0);
        assert!(compile_workload(CIRCSAT, "circsat").stats.logical_variables > 0);
        assert!(
            compile_workload(AUSTRALIA, "australia")
                .stats
                .logical_variables
                > 0
        );
    }

    #[test]
    fn handcoded_unary_has_28_variables_and_valid_grounds() {
        let model = handcoded_australia_unary();
        assert_eq!(model.num_vars(), 28, "4 colors × 7 regions (paper §6.1)");
        // Its ground states are proper colorings: one-hot everywhere, no
        // adjacent conflicts. Ground energy = −#regions (each one-hot
        // contributes −1 … offset +1 cancels: check via solver).
        let best = TabuSearch::new(3).sample(&model, 20);
        let sample = best.best().unwrap();
        let coloring = decode_unary_coloring(&sample.spins).expect("one-hot holds at minimum");
        let regions = qac_csp::mapcolor::AUSTRALIA_REGIONS;
        let index_of = |name: &str| regions.iter().position(|&r| r == name).unwrap();
        for (a, b) in qac_csp::mapcolor::AUSTRALIA_ADJACENCY {
            assert_ne!(coloring[index_of(a)], coloring[index_of(b)]);
        }
    }
}
