//! Perf-regression gate over committed bench baselines.
//!
//! Compares two `qac-bench-baseline-v1` JSON documents (the
//! `BENCH_pr*.json` files at the repo root) gauge by gauge and decides
//! whether the newer one regresses beyond budget. The gate is the
//! mechanical half of the "perf trajectory" discipline: every PR
//! commits a fresh baseline, and CI diffs it against the previous one
//! so a routing or pipeline slowdown has to be *argued for*, not
//! slipped in.
//!
//! Two gauge classes, two policies:
//!
//! * **Deterministic work gauges** (`route_iterations`, `heap_pops`,
//!   `edge_relaxations`, `weight_updates`, `physical_qubits`,
//!   `max_chain`, `jobs`) count algorithmic work and are identical for
//!   a fixed seed on every machine. They are *gated*: NEW/OLD above the
//!   ratio budget (default [`DEFAULT_RATIO_BUDGET`]) is a violation.
//! * **Wall-clock and host gauges** (anything whose base name ends in
//!   `_us`, plus `available_parallelism`, `speedup`, and host flags)
//!   vary with the machine that produced each file. They are
//!   *report-only*: the comparison prints the ratio but never fails on
//!   it, because CI runners differ from the laptop that produced the
//!   old baseline.
//!
//! A gauge present in OLD but missing from NEW is always a violation —
//! a silently dropped measurement is how regressions hide. Gauges new
//! in NEW are reported and accepted (they are the next PR's baseline).

use qac_telemetry::json::{parse, Json};
use qac_telemetry::metrics::base_name;

/// Default NEW/OLD ratio budget for gated (deterministic) gauges: 30%
/// headroom, matching the `--counter-max` budgets in ci.sh.
pub const DEFAULT_RATIO_BUDGET: f64 = 1.30;

/// Deterministic work-gauge suffixes (on the gauge's *base* name, label
/// set stripped). These are gated; everything else is report-only.
const DETERMINISTIC_SUFFIXES: &[&str] = &[
    "route_iterations",
    "heap_pops",
    "edge_relaxations",
    "weight_updates",
    "physical_qubits",
    "max_chain",
    "_jobs",
];

/// A parsed `qac-bench-baseline-v1` document: schema string plus the
/// flat gauge map.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// The document's `schema` field, verbatim.
    pub schema: String,
    /// Gauge name (labels embedded) → value, in document order.
    pub metrics: Vec<(String, f64)>,
}

/// Parses a baseline JSON document, validating the schema tag.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let doc = parse(text).map_err(|err| format!("invalid JSON: {err}"))?;
    let schema = doc
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("missing \"schema\" field")?
        .to_string();
    if schema != "qac-bench-baseline-v1" {
        return Err(format!("unsupported schema {schema:?}"));
    }
    let Some(Json::Obj(members)) = doc.get("metrics") else {
        return Err("missing \"metrics\" object".to_string());
    };
    let mut metrics = Vec::with_capacity(members.len());
    for (name, value) in members {
        let value = value
            .as_f64()
            .ok_or_else(|| format!("metric {name:?} is not a number"))?;
        metrics.push((name.clone(), value));
    }
    if metrics.is_empty() {
        return Err("no metrics at all".to_string());
    }
    Ok(Baseline { schema, metrics })
}

/// Whether a gauge is deterministic work (gated) as opposed to
/// wall-clock / host-dependent (report-only).
pub fn is_deterministic_gauge(name: &str) -> bool {
    let base = base_name(name);
    if base.ends_with("_us") {
        return false;
    }
    DETERMINISTIC_SUFFIXES.iter().any(|s| base.ends_with(s))
}

/// One gauge's OLD→NEW comparison.
#[derive(Debug, Clone)]
pub struct GaugeDiff {
    /// Gauge name, labels embedded.
    pub name: String,
    /// OLD value (`None` when the gauge is new in NEW).
    pub old: Option<f64>,
    /// NEW value (`None` when the gauge vanished).
    pub new: Option<f64>,
    /// NEW/OLD when both sides exist and OLD > 0.
    pub ratio: Option<f64>,
    /// The budget applied, when the gauge is gated.
    pub budget: Option<f64>,
    /// Human-readable verdict: `ok`, `VIOLATION`, `new`, `report`.
    pub verdict: &'static str,
}

/// Full comparison result.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Every gauge seen on either side, OLD order then NEW-only.
    pub diffs: Vec<GaugeDiff>,
    /// Violation messages, empty iff the gate passes.
    pub violations: Vec<String>,
}

impl Comparison {
    /// True iff no gauge regressed beyond budget or vanished.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the comparison as an aligned text table plus verdict.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<64} {:>14} {:>14} {:>8} {:>8}  verdict\n",
            "gauge", "old", "new", "ratio", "budget"
        ));
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.1}"));
        let fmt_ratio = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.3}"));
        for diff in &self.diffs {
            out.push_str(&format!(
                "{:<64} {:>14} {:>14} {:>8} {:>8}  {}\n",
                diff.name,
                fmt(diff.old),
                fmt(diff.new),
                fmt_ratio(diff.ratio),
                fmt_ratio(diff.budget),
                diff.verdict
            ));
        }
        for violation in &self.violations {
            out.push_str(&format!("VIOLATION: {violation}\n"));
        }
        out.push_str(if self.passed() {
            "baseline comparison: PASS\n"
        } else {
            "baseline comparison: FAIL\n"
        });
        out
    }
}

/// Resolves the budget for a gauge: an exact-name override wins, then a
/// base-name override, then the default for deterministic gauges;
/// report-only gauges get `None`.
fn budget_for(name: &str, overrides: &[(String, f64)]) -> Option<f64> {
    let base = base_name(name);
    if let Some((_, ratio)) = overrides.iter().find(|(n, _)| n == name) {
        return Some(*ratio);
    }
    if let Some((_, ratio)) = overrides.iter().find(|(n, _)| n == base) {
        return Some(*ratio);
    }
    is_deterministic_gauge(name).then_some(DEFAULT_RATIO_BUDGET)
}

/// Diffs NEW against OLD under the given `--budget name=ratio`
/// overrides. See the module docs for the gating policy.
pub fn compare(old: &Baseline, new: &Baseline, overrides: &[(String, f64)]) -> Comparison {
    let mut diffs = Vec::new();
    let mut violations = Vec::new();
    let lookup = |baseline: &Baseline, name: &str| -> Option<f64> {
        baseline
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    };
    for (name, old_value) in &old.metrics {
        let budget = budget_for(name, overrides);
        let Some(new_value) = lookup(new, name) else {
            violations.push(format!("gauge {name} vanished from the new baseline"));
            diffs.push(GaugeDiff {
                name: name.clone(),
                old: Some(*old_value),
                new: None,
                ratio: None,
                budget,
                verdict: "VIOLATION",
            });
            continue;
        };
        // Ratio semantics around zero: 0→0 is flat (1.0); 0→x regressing
        // from nothing is infinitely worse, so it trips any finite
        // budget.
        let ratio = if *old_value > 0.0 {
            new_value / old_value
        } else if new_value > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        let verdict = match budget {
            Some(budget) if ratio > budget => {
                violations.push(format!(
                    "gauge {name} regressed: {old_value} -> {new_value} \
                     (ratio {ratio:.3} > budget {budget:.3})"
                ));
                "VIOLATION"
            }
            Some(_) => "ok",
            None => "report",
        };
        diffs.push(GaugeDiff {
            name: name.clone(),
            old: Some(*old_value),
            new: Some(new_value),
            ratio: Some(ratio),
            budget,
            verdict,
        });
    }
    for (name, new_value) in &new.metrics {
        if lookup(old, name).is_none() {
            diffs.push(GaugeDiff {
                name: name.clone(),
                old: None,
                new: Some(*new_value),
                ratio: None,
                budget: budget_for(name, overrides),
                verdict: "new",
            });
        }
    }
    Comparison { diffs, violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(metrics: &[(&str, f64)]) -> String {
        let members: Vec<String> = metrics
            .iter()
            .map(|(name, value)| format!("{}: {value}", Json::Str((*name).to_string())))
            .collect();
        format!(
            "{{\"schema\": \"qac-bench-baseline-v1\", \"metrics\": {{{}}}}}",
            members.join(", ")
        )
    }

    fn baseline(metrics: &[(&str, f64)]) -> Baseline {
        parse_baseline(&doc(metrics)).unwrap()
    }

    #[test]
    fn parse_rejects_wrong_schema_and_empty_metrics() {
        assert!(parse_baseline("{\"schema\": \"other\", \"metrics\": {\"a\": 1}}").is_err());
        assert!(parse_baseline(&doc(&[])).is_err());
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline("{\"metrics\": {\"a\": 1}}").is_err());
    }

    #[test]
    fn classification_splits_wall_clock_from_work() {
        assert!(is_deterministic_gauge(
            "qac_bench_embed_heap_pops{workload=\"figure2\"}"
        ));
        assert!(is_deterministic_gauge(
            "qac_bench_embed_max_chain{workload=\"figure2\",topology=\"king\"}"
        ));
        assert!(is_deterministic_gauge("qac_bench_batch_jobs"));
        assert!(!is_deterministic_gauge(
            "qac_bench_embed_us{workload=\"figure2\"}"
        ));
        assert!(!is_deterministic_gauge("qac_bench_batch_speedup_8v1"));
        assert!(!is_deterministic_gauge("qac_bench_available_parallelism"));
    }

    #[test]
    fn flat_and_improved_gauges_pass() {
        let old = baseline(&[("qac_bench_embed_heap_pops", 1000.0)]);
        let new = baseline(&[("qac_bench_embed_heap_pops", 900.0)]);
        let cmp = compare(&old, &new, &[]);
        assert!(cmp.passed(), "{:?}", cmp.violations);
        assert_eq!(cmp.diffs[0].verdict, "ok");
    }

    #[test]
    fn deterministic_regression_beyond_budget_fails() {
        let old = baseline(&[("qac_bench_embed_heap_pops", 1000.0)]);
        let new = baseline(&[("qac_bench_embed_heap_pops", 1400.0)]);
        let cmp = compare(&old, &new, &[]);
        assert!(!cmp.passed());
        assert!(
            cmp.violations[0].contains("heap_pops"),
            "{:?}",
            cmp.violations
        );
        // Within the default 1.30 budget it passes.
        let new = baseline(&[("qac_bench_embed_heap_pops", 1250.0)]);
        assert!(compare(&old, &new, &[]).passed());
    }

    #[test]
    fn wall_clock_gauges_never_gate() {
        let old = baseline(&[("qac_bench_compile_us{workload=\"figure2\"}", 100.0)]);
        let new = baseline(&[("qac_bench_compile_us{workload=\"figure2\"}", 100000.0)]);
        let cmp = compare(&old, &new, &[]);
        assert!(cmp.passed());
        assert_eq!(cmp.diffs[0].verdict, "report");
    }

    #[test]
    fn budget_overrides_by_exact_and_base_name() {
        let old = baseline(&[("qac_bench_embed_heap_pops{workload=\"a\"}", 1000.0)]);
        let new = baseline(&[("qac_bench_embed_heap_pops{workload=\"a\"}", 1100.0)]);
        // Tighten via base name: 1.10 ratio > 1.05 budget.
        let tight = vec![("qac_bench_embed_heap_pops".to_string(), 1.05)];
        assert!(!compare(&old, &new, &tight).passed());
        // Exact labeled name wins over the base-name override.
        let mixed = vec![
            ("qac_bench_embed_heap_pops".to_string(), 1.05),
            ("qac_bench_embed_heap_pops{workload=\"a\"}".to_string(), 1.5),
        ];
        assert!(compare(&old, &new, &mixed).passed());
        // An override can also gate an otherwise report-only wall gauge.
        let old_us = baseline(&[("qac_bench_compile_us{workload=\"a\"}", 100.0)]);
        let new_us = baseline(&[("qac_bench_compile_us{workload=\"a\"}", 300.0)]);
        let gated = vec![("qac_bench_compile_us".to_string(), 2.0)];
        assert!(!compare(&old_us, &new_us, &gated).passed());
    }

    #[test]
    fn vanished_gauges_violate_and_new_gauges_pass() {
        let old = baseline(&[
            ("qac_bench_embed_heap_pops", 1000.0),
            ("qac_bench_embed_weight_updates", 50.0),
        ]);
        let new = baseline(&[
            ("qac_bench_embed_heap_pops", 1000.0),
            ("qac_bench_embed_route_iterations", 7.0),
        ]);
        let cmp = compare(&old, &new, &[]);
        assert_eq!(cmp.violations.len(), 1);
        assert!(cmp.violations[0].contains("weight_updates"));
        let new_entry = cmp
            .diffs
            .iter()
            .find(|d| d.name.contains("route_iterations"))
            .unwrap();
        assert_eq!(new_entry.verdict, "new");
    }

    #[test]
    fn zero_to_positive_trips_any_budget() {
        let old = baseline(&[("qac_bench_embed_weight_updates", 0.0)]);
        let new = baseline(&[("qac_bench_embed_weight_updates", 1.0)]);
        assert!(!compare(&old, &new, &[]).passed());
        let flat = baseline(&[("qac_bench_embed_weight_updates", 0.0)]);
        assert!(compare(&old, &flat, &[]).passed());
    }

    #[test]
    fn render_text_carries_the_verdict() {
        let old = baseline(&[("qac_bench_embed_heap_pops", 1000.0)]);
        let new = baseline(&[("qac_bench_embed_heap_pops", 2000.0)]);
        let text = compare(&old, &new, &[]).render_text();
        assert!(text.contains("VIOLATION"));
        assert!(text.contains("baseline comparison: FAIL"));
        let text = compare(&old, &old, &[]).render_text();
        assert!(text.contains("baseline comparison: PASS"));
    }

    #[test]
    fn committed_pr6_baseline_parses() {
        // The gate's input contract against the real committed artifact.
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json"))
                .expect("BENCH_pr6.json is committed at the repo root");
        let baseline = parse_baseline(&text).unwrap();
        assert!(baseline.metrics.len() > 20);
        assert!(baseline
            .metrics
            .iter()
            .any(|(name, _)| is_deterministic_gauge(name)));
    }
}
