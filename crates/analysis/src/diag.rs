//! The diagnostics framework: stable codes, severities, symbolic
//! locations, and text/JSON rendering.
//!
//! Every finding of the analyzer is a [`Diagnostic`]: a stable [`Code`]
//! (`QAC001`, …), a [`Severity`] derived from the code, the pass that
//! produced it, a symbolic [`Location`] (QMASM net or macro, Ising
//! variable), and a human-readable message. [`Diagnostics`] is the
//! ordered collection with text and JSON renderers. The text rendering
//! is pinned by golden tests, so everything here must be deterministic:
//! no wall times, no hash-map iteration order, fixed float formatting.

use std::fmt;

use qac_telemetry::json::Json;

/// How serious a diagnostic is.
///
/// Severity policy (DESIGN.md §11): **Error** means the program provably
/// cannot execute validly and compilation fails; **Warning** means the
/// program is likely to misbehave on hardware (chains can break,
/// coefficients collapse into analog noise, qubits are wasted);
/// **Info** is a report that requires no action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The program provably cannot execute validly.
    Error,
    /// The program is likely to misbehave on hardware.
    Warning,
    /// A report; no action required.
    Info,
}

impl Severity {
    /// The lowercase label used in rendered text and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. The numeric ranges group by pass family:
/// `QAC00x` pins, `QAC01x` dead code, `QAC02x` dynamic range, `QAC03x`
/// chain strength, `QAC04x` roof duality, `QAC05x` exact audit,
/// `QAC06x` certification (translation validation). Codes are
/// append-only; never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `QAC001`: two pins demand opposite values of one merged variable.
    PinContradiction,
    /// `QAC002`: a pin fights the constant implied by an isolated weight.
    PinVsConstant,
    /// `QAC003`: a pin repeats a value that is already pinned.
    RedundantPin,
    /// `QAC010`: a variable has no weight and no couplings.
    DisconnectedVariable,
    /// `QAC011`: a macro is defined but never instantiated.
    UnusedMacro,
    /// `QAC020`: distinct coefficients collapse within the noise epsilon.
    CoefficientCollapse,
    /// `QAC021`: the dynamic-range report (scale, min gap, precision).
    DynamicRange,
    /// `QAC030`: a variable's neighborhood weight exceeds the chain strength.
    ChainStrengthInsufficient,
    /// `QAC031`: the chain-strength report (strength vs. worst neighborhood).
    ChainStrengthReport,
    /// `QAC040`: the roof-duality persistency report.
    RoofPersistency,
    /// `QAC041`: the pinned model's roof-dual lower bound proves UNSAT.
    RoofUnsat,
    /// `QAC050`: the exact audit confirmed every static verdict.
    ExactAuditOk,
    /// `QAC051`: exact enumeration proves the pinned program UNSAT.
    ExactAuditUnsat,
    /// `QAC052`: the exact audit was skipped (model too large, or moot).
    ExactAuditSkipped,
    /// `QAC053`: a static verdict disagreed with exact enumeration.
    ExactAuditMismatch,
    /// `QAC060`: the compile certificate verified (the success report).
    CertOk,
    /// `QAC061`: an output's optimized truth table differs from the source.
    CertFrontendMismatch,
    /// `QAC062`: a macro's ground states differ from its gate's truth table.
    CertMacroGroundSpace,
    /// `QAC063`: a macro's invalid-row energy gap is missing or wrong.
    CertMacroGap,
    /// `QAC064`: an embedding chain is not connected by programmed couplers.
    CertChainDisconnected,
    /// `QAC065`: the chain-contracted hardware model differs from the logical model.
    CertContractionMismatch,
    /// `QAC066`: the chain strength is below the neighborhood-weight bound.
    CertChainStrengthBound,
    /// `QAC067`: an obligation was recorded but not proved (e.g. wide cut).
    CertObligationSkipped,
    /// `QAC068`: the certificate itself is malformed or inconsistent.
    CertMalformed,
}

impl Code {
    /// The stable `QACnnn` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::PinContradiction => "QAC001",
            Code::PinVsConstant => "QAC002",
            Code::RedundantPin => "QAC003",
            Code::DisconnectedVariable => "QAC010",
            Code::UnusedMacro => "QAC011",
            Code::CoefficientCollapse => "QAC020",
            Code::DynamicRange => "QAC021",
            Code::ChainStrengthInsufficient => "QAC030",
            Code::ChainStrengthReport => "QAC031",
            Code::RoofPersistency => "QAC040",
            Code::RoofUnsat => "QAC041",
            Code::ExactAuditOk => "QAC050",
            Code::ExactAuditUnsat => "QAC051",
            Code::ExactAuditSkipped => "QAC052",
            Code::ExactAuditMismatch => "QAC053",
            Code::CertOk => "QAC060",
            Code::CertFrontendMismatch => "QAC061",
            Code::CertMacroGroundSpace => "QAC062",
            Code::CertMacroGap => "QAC063",
            Code::CertChainDisconnected => "QAC064",
            Code::CertContractionMismatch => "QAC065",
            Code::CertChainStrengthBound => "QAC066",
            Code::CertObligationSkipped => "QAC067",
            Code::CertMalformed => "QAC068",
        }
    }

    /// The severity this code always carries (codes never change
    /// severity between sites; that keeps `ci.sh analyze` gating stable).
    pub fn severity(self) -> Severity {
        match self {
            Code::PinContradiction
            | Code::PinVsConstant
            | Code::RoofUnsat
            | Code::ExactAuditUnsat
            | Code::ExactAuditMismatch
            | Code::CertFrontendMismatch
            | Code::CertMacroGroundSpace
            | Code::CertMacroGap
            | Code::CertChainDisconnected
            | Code::CertContractionMismatch
            | Code::CertChainStrengthBound
            | Code::CertMalformed => Severity::Error,
            Code::DisconnectedVariable
            | Code::CoefficientCollapse
            | Code::ChainStrengthInsufficient => Severity::Warning,
            Code::RedundantPin
            | Code::UnusedMacro
            | Code::DynamicRange
            | Code::ChainStrengthReport
            | Code::RoofPersistency
            | Code::ExactAuditOk
            | Code::ExactAuditSkipped
            | Code::CertOk
            | Code::CertObligationSkipped => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points: a symbolic location in the QMASM program
/// or the logical Ising model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Location {
    /// The model as a whole.
    Model,
    /// A QMASM net (symbol) name.
    Net(String),
    /// Two QMASM nets involved in one finding (e.g. conflicting pins).
    Nets(String, String),
    /// A logical Ising variable with no known symbol name.
    Var(usize),
    /// A QMASM macro definition.
    Macro(String),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Model => f.write_str("model"),
            Location::Net(name) => write!(f, "net `{name}`"),
            Location::Nets(a, b) => write!(f, "nets `{a}` and `{b}`"),
            Location::Var(v) => write!(f, "variable {v}"),
            Location::Macro(name) => write!(f, "macro `{name}`"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// The pass that produced the finding.
    pub pass: &'static str,
    /// What the finding points at.
    pub location: Location,
    /// The human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic; the severity comes from the code.
    pub fn new(code: Code, pass: &'static str, location: Location, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            pass,
            location,
            message,
        }
    }

    /// The JSON object form used by `--diagnostics-json` exports.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "code".to_string(),
                Json::Str(self.code.as_str().to_string()),
            ),
            (
                "severity".to_string(),
                Json::Str(self.severity.as_str().to_string()),
            ),
            ("pass".to_string(), Json::Str(self.pass.to_string())),
            ("location".to_string(), Json::Str(self.location.to_string())),
            ("message".to_string(), Json::Str(self.message.clone())),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {} @ {}: {}",
            self.severity, self.code, self.pass, self.location, self.message
        )
    }
}

/// An ordered collection of diagnostics (the order passes emitted them).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.items.push(diagnostic);
    }

    /// Appends every diagnostic of `other`.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no diagnostics were recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == severity).count()
    }

    /// True when any Error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Iterates over the Error-severity diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter().filter(|d| d.severity == Severity::Error)
    }

    /// One line per diagnostic, each terminated by `\n`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// The JSON array form used by `--diagnostics-json` exports.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.items.iter().map(Diagnostic::to_json).collect())
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render_text().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_comes_from_code() {
        let d = Diagnostic::new(
            Code::PinContradiction,
            "pins",
            Location::Nets("a".into(), "b".into()),
            "boom".into(),
        );
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.to_string(), "error[QAC001] pins @ nets `a` and `b`: boom");
    }

    #[test]
    fn counts_and_errors() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::new(
            Code::DynamicRange,
            "dynamic-range",
            Location::Model,
            "report".into(),
        ));
        assert!(!ds.has_errors());
        ds.push(Diagnostic::new(
            Code::RoofUnsat,
            "roof-duality",
            Location::Model,
            "unsat".into(),
        ));
        assert!(ds.has_errors());
        assert_eq!(ds.count(Severity::Info), 1);
        assert_eq!(ds.count(Severity::Error), 1);
        assert_eq!(ds.errors().count(), 1);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::new(
            Code::UnusedMacro,
            "dead-code",
            Location::Macro("XOR".into()),
            "macro is defined but never instantiated".into(),
        ));
        let text = ds.to_json().to_string();
        let parsed = qac_telemetry::json::parse(&text).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("code").unwrap().as_str(), Some("QAC011"));
        assert_eq!(arr[0].get("severity").unwrap().as_str(), Some("info"));
    }

    #[test]
    fn every_code_renders_qac_prefix() {
        for code in [
            Code::PinContradiction,
            Code::PinVsConstant,
            Code::RedundantPin,
            Code::DisconnectedVariable,
            Code::UnusedMacro,
            Code::CoefficientCollapse,
            Code::DynamicRange,
            Code::ChainStrengthInsufficient,
            Code::ChainStrengthReport,
            Code::RoofPersistency,
            Code::RoofUnsat,
            Code::ExactAuditOk,
            Code::ExactAuditUnsat,
            Code::ExactAuditSkipped,
            Code::ExactAuditMismatch,
            Code::CertOk,
            Code::CertFrontendMismatch,
            Code::CertMacroGroundSpace,
            Code::CertMacroGap,
            Code::CertChainDisconnected,
            Code::CertContractionMismatch,
            Code::CertChainStrengthBound,
            Code::CertObligationSkipped,
            Code::CertMalformed,
        ] {
            let s = code.as_str();
            assert!(s.starts_with("QAC") && s.len() == 6, "{s}");
        }
    }
}
