//! qac-analysis — a multi-pass static analyzer and lint framework for
//! QMASM programs and Ising models.
//!
//! The paper's toolchain silently relies on properties it never checks:
//! pins must not contradict the circuit, coefficients must survive
//! rescaling into the hardware range without drowning in analog noise,
//! and chain strengths must dominate neighborhood weight or ground
//! states stop encoding the program (Pakin §4.4). This crate makes
//! those properties checkable at compile time: [`analyze_assembled`]
//! runs a fixed catalog of passes over an assembled QMASM program (or
//! [`analyze_ising`] over a bare Ising model) and produces an
//! [`AnalysisReport`] of [`Diagnostics`] with stable `QACnnn` codes.
//!
//! The pass catalog, in execution order:
//!
//! | pass | codes | what it checks |
//! |---|---|---|
//! | `pins` | QAC001–003 | pin propagation through `=`/`!=` chains; contradictions are compile-time UNSAT |
//! | `dead-code` | QAC010–011 | disconnected variables, macros never instantiated |
//! | `dynamic-range` | QAC020–021 | coefficient precision after scaling into the hardware range |
//! | `chain-strength` | QAC030–031 | chain J vs. per-variable neighborhood weight bound |
//! | `roof-duality` | QAC040–041 | persistency (statically fixable qubits), dual-bound UNSAT proofs |
//! | `exact-audit` | QAC050–053 | ≤`exact_audit_max_vars` models cross-checked against `ExactSolver` |
//!
//! Severity policy: **Error** diagnostics mean the program provably
//! cannot execute validly and the pipeline rejects it; **Warning** means
//! likely hardware misbehavior (broken chains, coefficients inside the
//! noise floor); **Info** is a report. Only syntactic pin contradictions
//! (QAC001), roof-dual bound violations (QAC041), and exact-enumeration
//! proofs (QAC051) mark a model UNSAT — QAC002 stays an Error without
//! the UNSAT claim because the unpinned minimum is unknown statically.
//!
//! Everything here is deterministic: reports render byte-identically
//! across runs and thread counts, which the golden-diagnostics tests
//! pin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod passes;

pub use diag::{Code, Diagnostic, Diagnostics, Location, Severity};

use qac_pbf::scale::CoefficientRange;
use qac_pbf::{Ising, Spin};
use qac_qmasm::{Assembled, Program, Statement};
use qac_telemetry::json::Json;

/// Options controlling the analyzer.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Run the analyzer at all. When false, [`analyze_assembled`]
    /// returns [`AnalysisReport::empty`] without touching the model.
    pub enabled: bool,
    /// The hardware coefficient range models are scaled into before the
    /// dynamic-range and chain-strength passes.
    pub range: CoefficientRange,
    /// Two distinct scaled coefficients closer than this are considered
    /// indistinguishable under analog noise (QAC020).
    pub noise_epsilon: f64,
    /// The exact audit enumerates models with at most this many
    /// variables; larger models get a QAC052 "skipped" report.
    pub exact_audit_max_vars: usize,
    /// Explicit chain strength to check, overriding the embedder's
    /// derived default.
    pub chain_strength: Option<f64>,
    /// The energy every valid execution must reach (the compile
    /// pipeline's expected ground energy). Enables the UNSAT proofs of
    /// the roof-duality and exact-audit passes.
    pub expected_ground_energy: Option<f64>,
    /// Cap on per-code diagnostics for repetitive findings (QAC010,
    /// QAC030); the pass summary still reports the full count.
    pub max_reported_per_code: usize,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            enabled: true,
            range: CoefficientRange::DWAVE_2000Q,
            noise_epsilon: 0.01,
            exact_audit_max_vars: 12,
            chain_strength: None,
            expected_ground_energy: None,
            max_reported_per_code: 8,
        }
    }
}

impl AnalysisOptions {
    /// Defaults tuned for a specific hardware family: the dynamic-range
    /// and chain-strength passes scale into that topology's coefficient
    /// range instead of the 2000Q's (e.g. Pegasus h ∈ [−4, 4]).
    pub fn for_topology<T: qac_chimera::Topology + ?Sized>(topology: &T) -> AnalysisOptions {
        AnalysisOptions {
            range: topology.coefficient_range(),
            ..AnalysisOptions::default()
        }
    }
}

/// One pass's one-line outcome, reported even when the pass found
/// nothing (so every analysis lists the full catalog).
#[derive(Debug, Clone, PartialEq)]
pub struct PassResult {
    /// The pass name (`pins`, `dead-code`, …).
    pub pass: &'static str,
    /// A one-line summary of what the pass concluded.
    pub summary: String,
}

/// Everything the analyzer concluded about one model.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// All findings, in pass order.
    pub diagnostics: Diagnostics,
    /// One summary per pass, in execution order.
    pub passes: Vec<PassResult>,
    /// The model provably cannot reach its expected ground energy with
    /// its pins satisfied (set only by QAC001, QAC041, QAC051).
    pub unsat: bool,
    /// Two pins demanded opposite values of one merged variable.
    pub pin_contradiction: bool,
    /// Unpinned variables roof duality proved fixable, with their values.
    pub roof_fixed: Vec<(usize, Spin)>,
    /// The roof-dual lower bound of the pinned model, when computed.
    pub roof_lower_bound: Option<f64>,
    /// The factor the model was scaled by to fit the hardware range.
    pub scale: f64,
    /// Smallest gap between distinct scaled coefficients (infinite when
    /// fewer than two distinct values exist).
    pub min_coefficient_gap: f64,
    /// `min_coefficient_gap / noise_epsilon` — below 1.0, distinct
    /// coefficients collapse into the noise floor.
    pub precision_ratio: f64,
    /// The chain strength the chain-strength pass checked against.
    pub chain_strength: f64,
    /// Variables whose neighborhood weight exceeds the chain strength.
    pub chain_unsafe: Vec<usize>,
    /// Number of coupled variables the chain-strength bound considered.
    pub chain_considered: usize,
}

impl Default for AnalysisReport {
    fn default() -> AnalysisReport {
        AnalysisReport::empty()
    }
}

impl AnalysisReport {
    /// The report of a skipped analysis: no passes, no diagnostics.
    pub fn empty() -> AnalysisReport {
        AnalysisReport {
            diagnostics: Diagnostics::new(),
            passes: Vec::new(),
            unsat: false,
            pin_contradiction: false,
            roof_fixed: Vec::new(),
            roof_lower_bound: None,
            scale: 1.0,
            min_coefficient_gap: f64::INFINITY,
            precision_ratio: f64::INFINITY,
            chain_strength: 0.0,
            chain_unsafe: Vec::new(),
            chain_considered: 0,
        }
    }

    /// Renders the full report: a header line, one line per pass, then
    /// one line per diagnostic. Deterministic (no wall times, no
    /// hash-order iteration); pinned byte-for-byte by golden tests.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "analysis: {} passes, {} diagnostics ({} errors, {} warnings, {} infos)",
            self.passes.len(),
            self.diagnostics.len(),
            self.diagnostics.count(Severity::Error),
            self.diagnostics.count(Severity::Warning),
            self.diagnostics.count(Severity::Info),
        ));
        if self.unsat {
            out.push_str(" [UNSAT]");
        }
        out.push('\n');
        for p in &self.passes {
            out.push_str(&format!("  pass {}: {}\n", p.pass, p.summary));
        }
        out.push_str(&self.diagnostics.render_text());
        out
    }

    /// The JSON object consumed by `telemetry_check --diagnostics`
    /// (callers wrap it with a `workload` key).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("unsat".to_string(), Json::Bool(self.unsat)),
            (
                "passes".to_string(),
                Json::Arr(
                    self.passes
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("pass".to_string(), Json::Str(p.pass.to_string())),
                                ("summary".to_string(), Json::Str(p.summary.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("diagnostics".to_string(), self.diagnostics.to_json()),
        ])
    }
}

/// What the passes see: the model plus symbolic naming and pin data.
pub(crate) struct Ctx<'a> {
    /// The logical model (pins not applied).
    pub model: &'a Ising,
    /// Resolved pins in program order: `(variable, required spin, net name)`.
    pub pins: Vec<(usize, Spin, String)>,
    /// First symbol name of each variable (first-appearance order),
    /// `None` for bare-Ising analyses.
    pub names: Vec<Option<String>>,
    /// Macros defined but never instantiated, sorted by name.
    pub unused_macros: Vec<String>,
}

impl Ctx<'_> {
    /// The symbolic location of a variable.
    pub fn loc(&self, var: usize) -> Location {
        match self.names.get(var).and_then(|n| n.clone()) {
            Some(name) => Location::Net(name),
            None => Location::Var(var),
        }
    }

    /// The display name of a variable in messages.
    pub fn name(&self, var: usize) -> String {
        match self.names.get(var).and_then(|n| n.clone()) {
            Some(name) => format!("`{name}`"),
            None => format!("variable {var}"),
        }
    }
}

/// Renders a spin as `+1` / `-1` in messages.
pub(crate) fn spin_str(s: Spin) -> &'static str {
    match s {
        Spin::Up => "+1",
        Spin::Down => "-1",
    }
}

/// Detects contradictory and redundant pins (QAC001, QAC003).
///
/// Pins are `(variable, required spin, net name)` in program order; the
/// first pin of a variable wins and later pins are checked against it.
/// This is shared with the run path so a `run()` with contradictory
/// `extra_pins` is rejected before any embedding or sampling happens —
/// callers reject when [`Diagnostics::has_errors`] is true.
pub fn pin_conflicts(pins: &[(usize, Spin, String)]) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let mut first: std::collections::BTreeMap<usize, (Spin, &str)> =
        std::collections::BTreeMap::new();
    for (var, spin, name) in pins {
        match first.get(var) {
            None => {
                first.insert(*var, (*spin, name));
            }
            Some(&(prev_spin, prev_name)) => {
                if prev_spin != *spin {
                    diags.push(Diagnostic::new(
                        Code::PinContradiction,
                        "pins",
                        Location::Nets(prev_name.to_string(), name.clone()),
                        format!(
                            "pin on `{name}` requires spin {} of merged variable {var}, \
                             but the pin on `{prev_name}` already requires spin {}",
                            spin_str(*spin),
                            spin_str(prev_spin),
                        ),
                    ));
                } else if prev_name != name {
                    diags.push(Diagnostic::new(
                        Code::RedundantPin,
                        "pins",
                        Location::Net(name.clone()),
                        format!(
                            "pin repeats the value the pin on `{prev_name}` already \
                             requires of merged variable {var}"
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// Analyzes an assembled QMASM program: resolves its pins and symbol
/// names, finds unused macros (when the parsed [`Program`] is
/// available), and runs the full pass catalog.
pub fn analyze_assembled(
    assembled: &Assembled,
    program: Option<&Program>,
    options: &AnalysisOptions,
) -> AnalysisReport {
    if !options.enabled {
        return AnalysisReport::empty();
    }
    // Resolve pins to (variable, required spin, name). Unknown symbols
    // cannot occur for program-recorded pins (the assembler interned
    // them); skip defensively rather than panic.
    let mut pins = Vec::new();
    for (name, value) in &assembled.pins {
        if let Some((var, parity)) = assembled.symbols.resolve(name) {
            let target = match parity {
                Spin::Up => Spin::from(*value),
                Spin::Down => Spin::from(!*value),
            };
            pins.push((var, target, name.clone()));
        }
    }
    // First symbol name per variable, in first-appearance order.
    let mut names: Vec<Option<String>> = vec![None; assembled.ising.num_vars()];
    for name in assembled.symbols.names() {
        if let Some((var, _)) = assembled.symbols.resolve(name) {
            if names[var].is_none() {
                names[var] = Some(name.to_string());
            }
        }
    }
    let ctx = Ctx {
        model: &assembled.ising,
        pins,
        names,
        unused_macros: program.map(unused_macros).unwrap_or_default(),
    };
    analyze_ctx(&ctx, options)
}

/// Analyzes a bare Ising model with explicit pins (no QMASM naming);
/// locations degrade to `variable N` and pins are named `vN`.
pub fn analyze_ising(
    model: &Ising,
    pins: &[(usize, Spin)],
    options: &AnalysisOptions,
) -> AnalysisReport {
    if !options.enabled {
        return AnalysisReport::empty();
    }
    let ctx = Ctx {
        model,
        pins: pins
            .iter()
            .map(|&(var, spin)| (var, spin, format!("v{var}")))
            .collect(),
        names: vec![None; model.num_vars()],
        unused_macros: Vec::new(),
    };
    analyze_ctx(&ctx, options)
}

/// Macros defined in `program` but unreachable from its top-level
/// statements, sorted by name (the macro map iterates in hash order).
fn unused_macros(program: &Program) -> Vec<String> {
    use std::collections::BTreeSet;
    let mut used: BTreeSet<&str> = BTreeSet::new();
    let mut queue: Vec<&[Statement]> = vec![&program.statements];
    while let Some(stmts) = queue.pop() {
        for stmt in stmts {
            if let Statement::UseMacro { name, .. } = stmt {
                if used.insert(name.as_str()) {
                    if let Some(body) = program.macros.get(name) {
                        queue.push(body);
                    }
                }
            }
        }
    }
    let mut unused: Vec<String> = program
        .macros
        .keys()
        .filter(|name| !used.contains(name.as_str()))
        .cloned()
        .collect();
    unused.sort();
    unused
}

/// Runs the pass catalog over a prepared context, wrapping every pass
/// in a telemetry span and bumping the per-severity counters.
fn analyze_ctx(ctx: &Ctx<'_>, options: &AnalysisOptions) -> AnalysisReport {
    let recorder = qac_telemetry::global();
    let mut report = AnalysisReport::empty();
    type Pass = fn(&Ctx<'_>, &AnalysisOptions, &mut AnalysisReport);
    let catalog: [(&str, Pass); 6] = [
        ("pins", passes::pins::run),
        ("dead-code", passes::dead::run),
        ("dynamic-range", passes::range::run),
        ("chain-strength", passes::chain::run),
        ("roof-duality", passes::roof::run),
        ("exact-audit", passes::audit::run),
    ];
    for (name, pass) in catalog {
        let mut span = recorder.span(&format!("analyze:{name}"));
        let before = report.diagnostics.len();
        pass(ctx, options, &mut report);
        span.arg("diagnostics", (report.diagnostics.len() - before) as f64);
    }
    for severity in [Severity::Error, Severity::Warning, Severity::Info] {
        recorder.counter_add(
            &format!(
                "qac_analysis_diagnostics_total{{severity=\"{}\"}}",
                severity.as_str()
            ),
            report.diagnostics.count(severity) as u64,
        );
    }
    report
}

/// Per-variable count of nonzero couplings (parallel to the model).
pub(crate) fn degrees(model: &Ising) -> Vec<usize> {
    let mut deg = vec![0usize; model.num_vars()];
    for t in model.j_iter() {
        if t.value != 0.0 {
            deg[t.i] += 1;
            deg[t.j] += 1;
        }
    }
    deg
}

/// The model with first-wins pins substituted out via `fix_variable`
/// (conflicting later pins are ignored — the pins pass already
/// reported them).
pub(crate) fn pinned_fix_model(ctx: &Ctx<'_>) -> (Ising, std::collections::BTreeMap<usize, Spin>) {
    let mut first: std::collections::BTreeMap<usize, Spin> = std::collections::BTreeMap::new();
    for (var, spin, _) in &ctx.pins {
        first.entry(*var).or_insert(*spin);
    }
    let mut model = ctx.model.clone();
    for (&var, &spin) in &first {
        model.fix_variable(var, spin);
    }
    (model, first)
}

/// Formats a float for diagnostics: fixed `{:.4}` with infinities as
/// `inf` and negative zero normalized, so renders are stable.
pub(crate) fn fmt4(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 { "inf".into() } else { "-inf".into() };
    }
    let v = if v == 0.0 { 0.0 } else { v };
    format!("{v:.4}")
}

/// [`fmt4`] at six decimal places for small gaps.
pub(crate) fn fmt6(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 { "inf".into() } else { "-inf".into() };
    }
    let v = if v == 0.0 { 0.0 } else { v };
    format!("{v:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qac_qmasm::{assemble, parse, AssembleOptions, NoIncludes};

    fn analyze_src(src: &str, options: &AnalysisOptions) -> AnalysisReport {
        let program = parse(src, &NoIncludes).unwrap();
        let assembled = assemble(&program, &AssembleOptions::default()).unwrap();
        analyze_assembled(&assembled, Some(&program), options)
    }

    #[test]
    fn disabled_analysis_is_empty() {
        let options = AnalysisOptions {
            enabled: false,
            ..Default::default()
        };
        let report = analyze_src("A B -1\n", &options);
        assert_eq!(report, AnalysisReport::empty());
    }

    #[test]
    fn every_pass_reports_once() {
        let report = analyze_src("A B -1\nA := true\n", &AnalysisOptions::default());
        let names: Vec<&str> = report.passes.iter().map(|p| p.pass).collect();
        assert_eq!(
            names,
            vec![
                "pins",
                "dead-code",
                "dynamic-range",
                "chain-strength",
                "roof-duality",
                "exact-audit"
            ]
        );
    }

    #[test]
    fn for_topology_adopts_the_fabric_coefficient_range() {
        use qac_chimera::{Chimera, Pegasus, ADVANTAGE_RANGE};
        let chimera = AnalysisOptions::for_topology(&Chimera::dwave_2000q());
        assert_eq!(chimera.range, CoefficientRange::DWAVE_2000Q);
        let pegasus = AnalysisOptions::for_topology(&Pegasus::advantage());
        assert_eq!(pegasus.range, ADVANTAGE_RANGE);
        // Everything except the range stays at the defaults.
        assert_eq!(
            pegasus.noise_epsilon,
            AnalysisOptions::default().noise_epsilon
        );
        // The wider Advantage h range (±4 vs the 2000Q's ±2) changes the
        // reported scale factor: an h = 3 bias forces the 2000Q to shrink
        // the whole model while the Advantage takes it unscaled.
        let model = "A 3\nA B -1\n";
        let on_chimera = analyze_src(model, &chimera);
        let on_pegasus = analyze_src(model, &pegasus);
        assert!(on_pegasus.scale > on_chimera.scale);
        assert!(on_pegasus.chain_strength >= on_chimera.chain_strength);
    }

    #[test]
    fn contradictory_pins_through_a_chain_are_unsat() {
        // A = B merges the nets; pinning them apart is a contradiction
        // detectable without looking at energies at all.
        let report = analyze_src(
            "A = B\nA := true\nB := false\nA C -1\n",
            &AnalysisOptions::default(),
        );
        assert!(report.unsat);
        assert!(report.pin_contradiction);
        let err = report.diagnostics.errors().next().unwrap();
        assert_eq!(err.code, Code::PinContradiction);
        assert!(err.to_string().contains("`A`"), "{err}");
        assert!(err.to_string().contains("`B`"), "{err}");
    }

    #[test]
    fn clean_program_has_no_errors() {
        let report = analyze_src("A B -1\nA := true\n", &AnalysisOptions::default());
        assert!(!report.diagnostics.has_errors(), "{}", report.render());
        assert!(!report.unsat);
    }

    #[test]
    fn pin_conflicts_shared_helper() {
        let pins = vec![
            (0, Spin::Up, "a".to_string()),
            (1, Spin::Down, "b".to_string()),
            (0, Spin::Down, "a2".to_string()),
        ];
        let diags = pin_conflicts(&pins);
        assert!(diags.has_errors());
        assert_eq!(diags.errors().count(), 1);
        // Distinct variables never conflict.
        let ok = pin_conflicts(&[(0, Spin::Up, "a".into()), (1, Spin::Down, "b".into())]);
        assert!(ok.is_empty());
    }

    #[test]
    fn unused_macro_detection_is_sorted_and_recursive() {
        let src = "!begin_macro INNER\nA 1\n!end_macro INNER\n\
                   !begin_macro OUTER\n!use_macro INNER i\n!end_macro OUTER\n\
                   !begin_macro ZOMBIE\nB 1\n!end_macro ZOMBIE\n\
                   !begin_macro APPENDIX\nC 1\n!end_macro APPENDIX\n\
                   !use_macro OUTER o\n";
        let program = parse(src, &NoIncludes).unwrap();
        assert_eq!(unused_macros(&program), vec!["APPENDIX", "ZOMBIE"]);
    }

    #[test]
    fn render_is_deterministic_across_calls() {
        let options = AnalysisOptions::default();
        let a = analyze_src("A B -1\nB C 0.5\nA := true\nD 0\n", &options).render();
        let b = analyze_src("A B -1\nB C 0.5\nA := true\nD 0\n", &options).render();
        assert_eq!(a, b);
    }

    #[test]
    fn json_shape_matches_schema() {
        let report = analyze_src("A B -1\nA := true\n", &AnalysisOptions::default());
        let json = report.to_json();
        assert!(matches!(json.get("unsat"), Some(Json::Bool(_))));
        let passes = json.get("passes").unwrap().as_array().unwrap();
        assert_eq!(passes.len(), 6);
        for p in passes {
            assert!(p.get("pass").unwrap().as_str().is_some());
            assert!(p.get("summary").unwrap().as_str().is_some());
        }
        for d in json.get("diagnostics").unwrap().as_array().unwrap() {
            let code = d.get("code").unwrap().as_str().unwrap();
            assert!(code.starts_with("QAC") && code.len() == 6);
        }
    }
}
