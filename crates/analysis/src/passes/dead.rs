//! Pass `dead-code`: disconnected variables and unused macros
//! (QAC010–QAC011).
//!
//! A variable with no weight and no couplings cannot influence the
//! energy; it still consumes a qubit (and an embedding chain) and its
//! sampled value is meaningless noise. Macros defined but never
//! instantiated are usually leftovers from edits — harmless, so Info.

use crate::{AnalysisOptions, AnalysisReport, Code, Ctx, Diagnostic, Location, PassResult};

pub(crate) fn run(ctx: &Ctx<'_>, options: &AnalysisOptions, report: &mut AnalysisReport) {
    let degrees = crate::degrees(ctx.model);
    let pinned: std::collections::BTreeSet<usize> =
        ctx.pins.iter().map(|&(var, _, _)| var).collect();
    let dead: Vec<usize> = (0..ctx.model.num_vars())
        .filter(|&v| ctx.model.h(v) == 0.0 && degrees[v] == 0 && !pinned.contains(&v))
        .collect();
    for &v in dead.iter().take(options.max_reported_per_code) {
        report.diagnostics.push(Diagnostic::new(
            Code::DisconnectedVariable,
            "dead-code",
            ctx.loc(v),
            "variable has no weight and no couplings; its qubit is wasted and its \
             sampled value is noise"
                .to_string(),
        ));
    }
    for name in &ctx.unused_macros {
        report.diagnostics.push(Diagnostic::new(
            Code::UnusedMacro,
            "dead-code",
            Location::Macro(name.clone()),
            "macro is defined but never instantiated".to_string(),
        ));
    }
    let mut summary = format!(
        "{} disconnected variables, {} unused macros",
        dead.len(),
        ctx.unused_macros.len(),
    );
    if dead.len() > options.max_reported_per_code {
        summary.push_str(&format!(
            " (first {} reported)",
            options.max_reported_per_code
        ));
    }
    report.passes.push(PassResult {
        pass: "dead-code",
        summary,
    });
}

#[cfg(test)]
mod tests {
    use crate::{analyze_assembled, analyze_ising, AnalysisOptions, Code};
    use qac_pbf::{Ising, Spin};
    use qac_qmasm::{assemble, parse, AssembleOptions, NoIncludes};

    #[test]
    fn disconnected_variable_flagged() {
        let mut m = Ising::new(3);
        m.add_j(0, 1, -1.0);
        let report = analyze_ising(&m, &[], &AnalysisOptions::default());
        let dead: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::DisconnectedVariable)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].location, crate::Location::Var(2));
    }

    #[test]
    fn pinned_isolated_variable_is_not_dead() {
        // A pinned variable is an output the user asked for even when
        // nothing couples to it.
        let m = Ising::new(1);
        let report = analyze_ising(&m, &[(0, Spin::Up)], &AnalysisOptions::default());
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::DisconnectedVariable));
    }

    #[test]
    fn reporting_cap_applies() {
        let m = Ising::new(20);
        let options = AnalysisOptions {
            max_reported_per_code: 3,
            ..Default::default()
        };
        let report = analyze_ising(&m, &[], &options);
        assert_eq!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.code == Code::DisconnectedVariable)
                .count(),
            3
        );
        let dead_pass = report
            .passes
            .iter()
            .find(|p| p.pass == "dead-code")
            .unwrap();
        assert!(dead_pass.summary.contains("20 disconnected"));
        assert!(dead_pass.summary.contains("first 3 reported"));
    }

    #[test]
    fn unused_macro_reported_by_name() {
        let src = "!begin_macro GHOST\nA 1\n!end_macro GHOST\nX Y -1\n";
        let program = parse(src, &NoIncludes).unwrap();
        let assembled = assemble(&program, &AssembleOptions::default()).unwrap();
        let report = analyze_assembled(&assembled, Some(&program), &AnalysisOptions::default());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::UnusedMacro)
            .expect("QAC011 expected");
        assert_eq!(d.location, crate::Location::Macro("GHOST".to_string()));
    }
}
