//! Pass `chain-strength`: static chain-strength sufficiency
//! (QAC030–QAC031).
//!
//! When a logical variable is embedded as a chain, the intra-chain
//! coupling −S must dominate the variable's *neighborhood weight*
//! `W_v = |h_v| + Σ|J_vu|`: if S ≥ W_v, breaking the chain of `v` in an
//! otherwise-optimal state always costs more than any energy the break
//! could recover, so no broken-chain state undercuts an intact ground
//! state. The pass checks the exact strength the embedder would choose
//! (`qac_chimera::choose_chain_strength`, the same formula the D-Wave
//! simulator uses) against every coupled variable's bound on the
//! *scaled* model — comparing like with like, since the embedder
//! derives S from scaled coefficients.
//!
//! Both the scale target and the clamp `|j_min|` come from
//! `options.range`; [`AnalysisOptions::for_topology`] sets them from the
//! topology's coefficient range, mirroring `Topology::chain_strength`,
//! so the pass stays in lockstep with what the simulator would program
//! on that fabric.

use qac_chimera::{choose_chain_strength, neighborhood_weights};
use qac_pbf::scale::scale_to_range;

use crate::{fmt4, AnalysisOptions, AnalysisReport, Code, Ctx, Diagnostic, PassResult};

pub(crate) fn run(ctx: &Ctx<'_>, options: &AnalysisOptions, report: &mut AnalysisReport) {
    let scaled = scale_to_range(ctx.model, options.range);
    let strength = choose_chain_strength(
        options.chain_strength,
        scaled.model.max_abs_j(),
        options.range.j_min,
    );
    report.chain_strength = strength;

    let weights = neighborhood_weights(&scaled.model);
    let degrees = crate::degrees(&scaled.model);
    let mut considered = 0usize;
    let mut unsafe_vars: Vec<usize> = Vec::new();
    let mut worst: Option<(usize, f64)> = None;
    for (v, &w) in weights.iter().enumerate() {
        if degrees[v] == 0 {
            // An uncoupled variable is never chained across couplings
            // worth protecting; skip it.
            continue;
        }
        considered += 1;
        if worst.map(|(_, ww)| w > ww).unwrap_or(true) {
            worst = Some((v, w));
        }
        if strength + 1e-9 < w {
            unsafe_vars.push(v);
        }
    }
    for &v in unsafe_vars.iter().take(options.max_reported_per_code) {
        report.diagnostics.push(Diagnostic::new(
            Code::ChainStrengthInsufficient,
            "chain-strength",
            ctx.loc(v),
            format!(
                "neighborhood weight {} exceeds the chain strength {}; an embedded \
                 chain of this variable can break in a state below the intact ground state",
                fmt4(weights[v]),
                fmt4(strength),
            ),
        ));
    }
    report.chain_unsafe = unsafe_vars;
    report.chain_considered = considered;

    let summary = match worst {
        None => format!(
            "no coupled variables; chain strength {} unused",
            fmt4(strength)
        ),
        Some((v, w)) => {
            report.diagnostics.push(Diagnostic::new(
                Code::ChainStrengthReport,
                "chain-strength",
                ctx.loc(v),
                format!(
                    "chain strength {} vs worst neighborhood weight {} at {}; \
                     {} of {} coupled variables unsafe",
                    fmt4(strength),
                    fmt4(w),
                    ctx.name(v),
                    report.chain_unsafe.len(),
                    considered,
                ),
            ));
            format!(
                "chain strength {}, worst neighborhood weight {}, {} of {} coupled variables unsafe",
                fmt4(strength),
                fmt4(w),
                report.chain_unsafe.len(),
                considered,
            )
        }
    };
    report.passes.push(PassResult {
        pass: "chain-strength",
        summary,
    });
}

#[cfg(test)]
mod tests {
    use crate::{analyze_ising, AnalysisOptions, Code};
    use qac_pbf::Ising;

    #[test]
    fn weak_explicit_strength_is_flagged() {
        // Star center: W = |h| + 3|J| = 3.5; an explicit strength of 1
        // cannot protect its chain.
        let mut m = Ising::new(4);
        m.add_h(0, 0.5);
        for v in 1..4 {
            m.add_j(0, v, -1.0);
        }
        let options = AnalysisOptions {
            chain_strength: Some(1.0),
            ..Default::default()
        };
        let report = analyze_ising(&m, &[], &options);
        assert_eq!(report.chain_strength, 1.0);
        assert!(report.chain_unsafe.contains(&0));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::ChainStrengthInsufficient));
    }

    #[test]
    fn default_strength_covers_a_single_coupling() {
        // One J = −1 coupling: default strength = max(2·1, 1) = 2 ≥
        // W = 1 on both ends.
        let mut m = Ising::new(2);
        m.add_j(0, 1, -1.0);
        let report = analyze_ising(&m, &[], &AnalysisOptions::default());
        assert_eq!(report.chain_strength, 2.0);
        assert!(report.chain_unsafe.is_empty());
        assert_eq!(report.chain_considered, 2);
    }

    #[test]
    fn uncoupled_model_reports_unused_strength() {
        let mut m = Ising::new(2);
        m.add_h(0, 1.0);
        let report = analyze_ising(&m, &[], &AnalysisOptions::default());
        assert_eq!(report.chain_considered, 0);
        let pass = report
            .passes
            .iter()
            .find(|p| p.pass == "chain-strength")
            .unwrap();
        assert!(pass.summary.contains("no coupled variables"));
    }

    #[test]
    fn bound_uses_the_scaled_model() {
        // Logical J = ±8 scale by 1/4 into [−2, 1]... the positive J=4
        // limits: 4 → 1 requires factor 1/4. Scaled: J = −2 and 1, so
        // the center weight is 3 and the default strength is
        // min(2·2, 2) = 2 < 3 ⇒ unsafe. With unscaled weights the
        // numbers would be 12 vs 2 — still unsafe, but the report must
        // show the scaled values.
        let mut m = Ising::new(3);
        m.add_j(0, 1, -8.0);
        m.add_j(0, 2, 4.0);
        let report = analyze_ising(&m, &[], &AnalysisOptions::default());
        assert!((report.scale - 0.25).abs() < 1e-12);
        assert_eq!(report.chain_strength, 2.0);
        assert!(report.chain_unsafe.contains(&0));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::ChainStrengthInsufficient)
            .unwrap();
        assert!(d.message.contains("3.0000"), "{}", d.message);
    }
}
