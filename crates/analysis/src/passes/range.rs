//! Pass `dynamic-range`: coefficient precision after scaling
//! (QAC020–QAC021).
//!
//! The hardware is analog: after the model is scaled into the target
//! coefficient range, two *distinct* coefficients closer than the noise
//! floor are effectively the same number, so the programmed Hamiltonian
//! is not the logical one. The pass scales the model exactly as the
//! run path does, sorts the distinct coefficient values, and reports
//! the smallest adjacent gap as a precision ratio against
//! `noise_epsilon` (Pakin §2 puts the 2000Q at 5–6 effective bits).
//!
//! The target range comes from `options.range`, which
//! [`AnalysisOptions::for_topology`] derives from the hardware family
//! under analysis (2000Q h ∈ [−2, 2] on Chimera, Advantage h ∈ [−4, 4]
//! on Pegasus/Zephyr), so the precision verdict tracks the fabric the
//! model will actually run on.

use qac_pbf::scale::scale_to_range;

use crate::{
    fmt4, fmt6, AnalysisOptions, AnalysisReport, Code, Ctx, Diagnostic, Location, PassResult,
};

pub(crate) fn run(ctx: &Ctx<'_>, options: &AnalysisOptions, report: &mut AnalysisReport) {
    let scaled = scale_to_range(ctx.model, options.range);
    report.scale = scaled.scale;

    let mut values: Vec<f64> = scaled
        .model
        .h_iter()
        .map(|(_, h)| h)
        .filter(|v| *v != 0.0)
        .chain(scaled.model.j_iter().map(|t| t.value))
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite coefficients"));
    values.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);

    let mut min_gap = f64::INFINITY;
    let mut worst_pair = None;
    let mut collapsed_pairs = 0usize;
    for w in values.windows(2) {
        let gap = w[1] - w[0];
        if gap <= options.noise_epsilon {
            collapsed_pairs += 1;
        }
        if gap < min_gap {
            min_gap = gap;
            worst_pair = Some((w[0], w[1]));
        }
    }
    report.min_coefficient_gap = min_gap;
    report.precision_ratio = min_gap / options.noise_epsilon;

    if let Some((a, b)) = worst_pair {
        if min_gap <= options.noise_epsilon {
            report.diagnostics.push(Diagnostic::new(
                Code::CoefficientCollapse,
                "dynamic-range",
                Location::Model,
                format!(
                    "{} distinct coefficient pairs collapse within the noise epsilon {}; \
                     worst pair {} and {} differ by only {}",
                    collapsed_pairs,
                    fmt6(options.noise_epsilon),
                    fmt6(a),
                    fmt6(b),
                    fmt6(min_gap),
                ),
            ));
        }
    }
    report.diagnostics.push(Diagnostic::new(
        Code::DynamicRange,
        "dynamic-range",
        Location::Model,
        format!(
            "scale {}; {} distinct coefficient values; min gap {}; precision ratio {}",
            fmt4(scaled.scale),
            values.len(),
            fmt6(min_gap),
            fmt4(report.precision_ratio),
        ),
    ));

    report.passes.push(PassResult {
        pass: "dynamic-range",
        summary: format!(
            "scale {}, {} distinct values, min gap {}, {} pairs within epsilon",
            fmt4(scaled.scale),
            values.len(),
            fmt6(min_gap),
            collapsed_pairs,
        ),
    });
}

#[cfg(test)]
mod tests {
    use crate::{analyze_ising, AnalysisOptions, Code};
    use qac_pbf::Ising;

    #[test]
    fn collapse_detected_after_scaling() {
        // Coefficients 4.0 and 4.02 differ by 0.02 logically, but after
        // scaling by 1/4 into J ∈ [−2, 1] the gap shrinks to ~0.005 —
        // inside the 0.01 noise epsilon.
        let mut m = Ising::new(3);
        m.add_j(0, 1, 4.0);
        m.add_j(1, 2, 4.02);
        let report = analyze_ising(&m, &[], &AnalysisOptions::default());
        assert!(report.scale < 0.26);
        assert!(report.precision_ratio < 1.0);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::CoefficientCollapse));
    }

    #[test]
    fn well_separated_coefficients_are_clean() {
        let mut m = Ising::new(2);
        m.add_h(0, 1.0);
        m.add_j(0, 1, -0.5);
        let report = analyze_ising(&m, &[], &AnalysisOptions::default());
        assert_eq!(report.scale, 1.0);
        assert!(report.precision_ratio > 1.0);
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::CoefficientCollapse));
    }

    #[test]
    fn empty_model_reports_infinite_gap() {
        let m = Ising::new(2);
        let report = analyze_ising(&m, &[], &AnalysisOptions::default());
        assert!(report.min_coefficient_gap.is_infinite());
        let pass = report
            .passes
            .iter()
            .find(|p| p.pass == "dynamic-range")
            .unwrap();
        assert!(pass.summary.contains("min gap inf"), "{}", pass.summary);
    }

    #[test]
    fn equal_coefficients_do_not_collapse() {
        // Identical values dedup to one; "collapse" is only about
        // *distinct* values getting too close.
        let mut m = Ising::new(3);
        m.add_j(0, 1, -1.0);
        m.add_j(1, 2, -1.0);
        let report = analyze_ising(&m, &[], &AnalysisOptions::default());
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::CoefficientCollapse));
        assert!(report.min_coefficient_gap.is_infinite());
    }
}
