//! Pass `roof-duality`: persistency reporting and dual-bound UNSAT
//! proofs (QAC040–QAC041).
//!
//! Roof duality on the *pinned* model (pins substituted out with
//! `fix_variable`) reports weak persistencies — variables whose value
//! is already decided in some minimizer, i.e. qubits the compiler could
//! elide (Pakin §4.4 uses SAPI's roof duality for exactly this). The
//! dual lower bound doubles as an UNSAT prover: a valid execution must
//! reach the expected ground energy with its pins satisfied, so when
//! the pinned model's lower bound exceeds that energy (beyond the
//! fixed-point margin), no such execution exists.

use qac_pbf::roof::roof_duality;

use crate::{
    fmt4, pinned_fix_model, AnalysisOptions, AnalysisReport, Code, Ctx, Diagnostic, Location,
    PassResult,
};

/// Slack absorbing the flow network's 2⁻²⁰ fixed-point quantization.
const BOUND_MARGIN: f64 = 1e-3;

pub(crate) fn run(ctx: &Ctx<'_>, options: &AnalysisOptions, report: &mut AnalysisReport) {
    let (pinned, pin_values) = pinned_fix_model(ctx);
    let rd = roof_duality(&pinned);
    report.roof_lower_bound = Some(rd.lower_bound);
    report.roof_fixed = rd
        .fixed
        .iter()
        .enumerate()
        .filter_map(|(v, f)| f.map(|spin| (v, spin)))
        .filter(|(v, _)| !pin_values.contains_key(v))
        .collect();

    let unpinned = ctx.model.num_vars() - pin_values.len();
    report.diagnostics.push(Diagnostic::new(
        Code::RoofPersistency,
        "roof-duality",
        Location::Model,
        format!(
            "roof duality fixes {} of {} unpinned variables; pinned-model dual \
             lower bound {}",
            report.roof_fixed.len(),
            unpinned,
            fmt4(rd.lower_bound),
        ),
    ));

    if let Some(expected) = options.expected_ground_energy {
        // A syntactic pin contradiction already proved UNSAT, and the
        // fixed model it produced (first pin wins) is not the program's
        // semantics — don't pile a bound argument on top of it.
        if !report.pin_contradiction && rd.lower_bound > expected + BOUND_MARGIN {
            report.unsat = true;
            report.diagnostics.push(Diagnostic::new(
                Code::RoofUnsat,
                "roof-duality",
                Location::Model,
                format!(
                    "pinned-model dual lower bound {} exceeds the expected ground \
                     energy {}; the pins are unsatisfiable at minimum energy",
                    fmt4(rd.lower_bound),
                    fmt4(expected),
                ),
            ));
        }
    }

    report.passes.push(PassResult {
        pass: "roof-duality",
        summary: format!(
            "{} of {} unpinned variables fixable; dual lower bound {}",
            report.roof_fixed.len(),
            unpinned,
            fmt4(rd.lower_bound),
        ),
    });
}

#[cfg(test)]
mod tests {
    use crate::{analyze_ising, AnalysisOptions, Code};
    use qac_pbf::{Ising, Spin};

    #[test]
    fn persistency_propagates_through_pins() {
        // Pin 0 up; the ferromagnetic chain forces 1 and 2 up in every
        // minimizer ⇒ both reported fixable.
        let mut m = Ising::new(3);
        m.add_j(0, 1, -1.0);
        m.add_j(1, 2, -1.0);
        let report = analyze_ising(&m, &[(0, Spin::Up)], &AnalysisOptions::default());
        assert_eq!(report.roof_fixed, vec![(1, Spin::Up), (2, Spin::Up)]);
        assert!(!report.unsat);
    }

    #[test]
    fn contradictory_pin_energy_proves_unsat() {
        // H = −σ0σ1 has ground energy −1 (expected). Pinning both ends
        // of the *antiferromagnetic-incompatible* way: pin 0 up, 1 down
        // forces energy +1 > −1 ⇒ QAC041.
        let mut m = Ising::new(2);
        m.add_j(0, 1, -1.0);
        let options = AnalysisOptions {
            expected_ground_energy: Some(-1.0),
            ..Default::default()
        };
        let report = analyze_ising(&m, &[(0, Spin::Up), (1, Spin::Down)], &options);
        assert!(report.unsat);
        assert!(report.diagnostics.iter().any(|d| d.code == Code::RoofUnsat));
    }

    #[test]
    fn satisfiable_pins_stay_clean() {
        let mut m = Ising::new(2);
        m.add_j(0, 1, -1.0);
        let options = AnalysisOptions {
            expected_ground_energy: Some(-1.0),
            ..Default::default()
        };
        let report = analyze_ising(&m, &[(0, Spin::Up), (1, Spin::Up)], &options);
        assert!(!report.unsat);
        assert!(!report.diagnostics.iter().any(|d| d.code == Code::RoofUnsat));
        // The pinned model is fully substituted: bound equals expected.
        assert!((report.roof_lower_bound.unwrap() - (-1.0)).abs() < 1e-3);
    }

    #[test]
    fn no_bound_claim_on_syntactic_contradiction() {
        let mut m = Ising::new(2);
        m.add_j(0, 1, -1.0);
        let options = AnalysisOptions {
            expected_ground_energy: Some(-1.0),
            ..Default::default()
        };
        let report = analyze_ising(&m, &[(0, Spin::Up), (0, Spin::Down)], &options);
        assert!(report.unsat, "QAC001 already proves UNSAT");
        assert!(!report.diagnostics.iter().any(|d| d.code == Code::RoofUnsat));
    }
}
