//! The analyzer's pass catalog. Every pass appends exactly one
//! [`crate::PassResult`] plus zero or more diagnostics; passes run in a
//! fixed order (`pins` → `dead-code` → `dynamic-range` →
//! `chain-strength` → `roof-duality` → `exact-audit`) and later passes
//! may read conclusions recorded by earlier ones on the shared
//! [`crate::AnalysisReport`] (e.g. the audit consults
//! `pin_contradiction` and `roof_lower_bound`).

pub(crate) mod audit;
pub(crate) mod chain;
pub(crate) mod dead;
pub(crate) mod pins;
pub(crate) mod range;
pub(crate) mod roof;
