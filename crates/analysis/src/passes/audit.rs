//! Pass `exact-audit`: cross-checking static verdicts against
//! exhaustive enumeration (QAC050–QAC053).
//!
//! For models small enough to enumerate (≤ `exact_audit_max_vars`),
//! `ExactSolver` ground states of the pinned model are the ground
//! truth. The audit verifies that (a) the roof-dual lower bound really
//! is a lower bound, (b) every roof persistency is realized by some
//! ground state, and (c) the expected-energy UNSAT verdicts agree with
//! the true pinned minimum. Disagreement between two *static* results
//! is an internal inconsistency (QAC053 — Error, because one of the
//! verdicts is a lie, but not an UNSAT claim); only the enumeration
//! itself proves UNSAT (QAC051).

use qac_solvers::ExactSolver;

use crate::{
    fmt4, pinned_fix_model, AnalysisOptions, AnalysisReport, Code, Ctx, Diagnostic, Location,
    PassResult,
};

/// Matches the roof pass's fixed-point slack.
const BOUND_MARGIN: f64 = 1e-3;
/// Tolerance for comparing exact energies.
const ENERGY_EPS: f64 = 1e-6;

pub(crate) fn run(ctx: &Ctx<'_>, options: &AnalysisOptions, report: &mut AnalysisReport) {
    let n = ctx.model.num_vars();
    if report.pin_contradiction {
        report.diagnostics.push(Diagnostic::new(
            Code::ExactAuditSkipped,
            "exact-audit",
            Location::Model,
            "skipped: pins contradict syntactically, so the pinned model does not \
             represent the program"
                .to_string(),
        ));
        report.passes.push(PassResult {
            pass: "exact-audit",
            summary: "skipped (pin contradiction)".to_string(),
        });
        return;
    }
    if n > options.exact_audit_max_vars {
        report.diagnostics.push(Diagnostic::new(
            Code::ExactAuditSkipped,
            "exact-audit",
            Location::Model,
            format!(
                "skipped: {} variables exceed the audit cap {}",
                n, options.exact_audit_max_vars
            ),
        ));
        report.passes.push(PassResult {
            pass: "exact-audit",
            summary: format!("skipped ({n} vars > cap {})", options.exact_audit_max_vars),
        });
        return;
    }

    let (pinned, _) = pinned_fix_model(ctx);
    let solver = ExactSolver::new().with_max_vars(options.exact_audit_max_vars.max(n));
    let (min, minima) = solver.ground_states(&pinned, 1e-9);
    let mut mismatches = 0usize;
    let mut checks = 0usize;

    if let Some(lb) = report.roof_lower_bound {
        checks += 1;
        if lb > min + BOUND_MARGIN {
            mismatches += 1;
            report.diagnostics.push(Diagnostic::new(
                Code::ExactAuditMismatch,
                "exact-audit",
                Location::Model,
                format!(
                    "roof-dual lower bound {} exceeds the true pinned minimum {}; \
                     the bound is not a lower bound",
                    fmt4(lb),
                    fmt4(min),
                ),
            ));
        }
    }

    if !report.roof_fixed.is_empty() {
        checks += 1;
        let realized = minima
            .iter()
            .any(|assign| report.roof_fixed.iter().all(|&(v, spin)| assign[v] == spin));
        if !realized {
            mismatches += 1;
            report.diagnostics.push(Diagnostic::new(
                Code::ExactAuditMismatch,
                "exact-audit",
                Location::Model,
                format!(
                    "no ground state of the pinned model realizes all {} roof \
                     persistencies jointly",
                    report.roof_fixed.len(),
                ),
            ));
        }
    }

    if let Some(expected) = options.expected_ground_energy {
        checks += 1;
        if min > expected + ENERGY_EPS {
            report.unsat = true;
            report.diagnostics.push(Diagnostic::new(
                Code::ExactAuditUnsat,
                "exact-audit",
                Location::Model,
                format!(
                    "exact minimum {} of the pinned model exceeds the expected ground \
                     energy {}; the pins are unsatisfiable",
                    fmt4(min),
                    fmt4(expected),
                ),
            ));
        } else if min < expected - ENERGY_EPS {
            mismatches += 1;
            report.diagnostics.push(Diagnostic::new(
                Code::ExactAuditMismatch,
                "exact-audit",
                Location::Model,
                format!(
                    "exact minimum {} of the pinned model is below the expected ground \
                     energy {}; the expected-energy bookkeeping is wrong",
                    fmt4(min),
                    fmt4(expected),
                ),
            ));
        } else if report.unsat {
            // An earlier pass claimed UNSAT but enumeration reaches the
            // expected energy — that claim was false.
            mismatches += 1;
            report.diagnostics.push(Diagnostic::new(
                Code::ExactAuditMismatch,
                "exact-audit",
                Location::Model,
                format!(
                    "a static pass claimed UNSAT but the pinned model reaches the \
                     expected ground energy {}",
                    fmt4(expected),
                ),
            ));
        }
    }

    if mismatches == 0 && !report.unsat {
        report.diagnostics.push(Diagnostic::new(
            Code::ExactAuditOk,
            "exact-audit",
            Location::Model,
            format!(
                "enumerated {} assignments; pinned minimum {} with {} ground states; \
                 {} static verdicts confirmed",
                1u64 << pinned.num_vars(),
                fmt4(min),
                minima.len(),
                checks,
            ),
        ));
    }

    report.passes.push(PassResult {
        pass: "exact-audit",
        summary: format!(
            "pinned minimum {} over {} ground states; {} checks, {} mismatches",
            fmt4(min),
            minima.len(),
            checks,
            mismatches,
        ),
    });
}

#[cfg(test)]
mod tests {
    use crate::{analyze_ising, AnalysisOptions, Code};
    use qac_pbf::{Ising, Spin};

    fn options_with_expected(e: f64) -> AnalysisOptions {
        AnalysisOptions {
            expected_ground_energy: Some(e),
            ..Default::default()
        }
    }

    #[test]
    fn clean_model_gets_audit_ok() {
        let mut m = Ising::new(2);
        m.add_j(0, 1, -1.0);
        let report = analyze_ising(&m, &[(0, Spin::Up)], &options_with_expected(-1.0));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::ExactAuditOk));
        assert!(!report.unsat);
    }

    #[test]
    fn energy_infeasible_pins_proven_unsat() {
        // Frustrated triangle: ground energy is −1 (one bond
        // unsatisfied). Expecting −3 (all bonds) is unsatisfiable —
        // roof duality's bound is too loose to see it on this
        // symmetric model, so only the audit catches it.
        let mut m = Ising::new(3);
        m.add_j(0, 1, 1.0);
        m.add_j(1, 2, 1.0);
        m.add_j(0, 2, 1.0);
        let report = analyze_ising(&m, &[], &options_with_expected(-3.0));
        assert!(report.unsat);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::ExactAuditUnsat));
    }

    #[test]
    fn minimum_below_expected_is_a_bookkeeping_mismatch() {
        let mut m = Ising::new(2);
        m.add_j(0, 1, -1.0);
        let report = analyze_ising(&m, &[], &options_with_expected(0.5));
        assert!(!report.unsat, "model beats expected; not UNSAT");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::ExactAuditMismatch));
    }

    #[test]
    fn large_model_is_skipped() {
        let mut m = Ising::new(13);
        m.add_j(0, 1, -1.0);
        let report = analyze_ising(&m, &[], &AnalysisOptions::default());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::ExactAuditSkipped)
            .expect("QAC052 expected");
        assert!(d.message.contains("13 variables exceed the audit cap 12"));
    }

    #[test]
    fn audit_runs_at_the_cap_boundary() {
        let mut m = Ising::new(12);
        m.add_j(0, 1, -1.0);
        let report = analyze_ising(&m, &[], &AnalysisOptions::default());
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::ExactAuditSkipped));
    }
}
