//! Pass `pins`: pin/constant propagation (QAC001–QAC003).
//!
//! Pins already propagate through `=`/`!=` chains because the assembler
//! merged chained nets into single variables with parities — so two
//! pins on the same merged variable demanding opposite spins are a
//! *syntactic* contradiction: no assignment satisfies both, the program
//! is UNSAT before any energy argument (QAC001, Error). A pin can also
//! fight the constant implied by an isolated weight — a degree-0
//! variable with `h != 0` is minimized only at `σ = −sign(h)` (how
//! QMASM's `H_VCC`/`H_GND` encode constants), so pinning it the other
//! way costs `2|h|` over the unpinned minimum (QAC002, Error — but not
//! an UNSAT claim: the unpinned minimum is not known statically).

use std::collections::BTreeMap;

use crate::{
    fmt4, pin_conflicts, spin_str, AnalysisOptions, AnalysisReport, Code, Ctx, Diagnostic,
    PassResult, Severity,
};
use qac_pbf::Spin;

pub(crate) fn run(ctx: &Ctx<'_>, _options: &AnalysisOptions, report: &mut AnalysisReport) {
    let conflicts = pin_conflicts(&ctx.pins);
    let contradictions = conflicts.count(Severity::Error);
    let redundant = conflicts.count(Severity::Info);
    report.pin_contradiction = contradictions > 0;
    if report.pin_contradiction {
        report.unsat = true;
    }
    report.diagnostics.extend(conflicts);

    // Pins vs. isolated constants: first pin per variable wins.
    let mut first: BTreeMap<usize, (Spin, &str)> = BTreeMap::new();
    for (var, spin, name) in &ctx.pins {
        first.entry(*var).or_insert((*spin, name));
    }
    let degrees = crate::degrees(ctx.model);
    let mut constant_conflicts = 0usize;
    for (&var, &(spin, name)) in &first {
        if degrees[var] != 0 {
            continue;
        }
        let h = ctx.model.h(var);
        if h == 0.0 {
            continue;
        }
        let implied = if h < 0.0 { Spin::Up } else { Spin::Down };
        if implied != spin {
            constant_conflicts += 1;
            report.diagnostics.push(Diagnostic::new(
                Code::PinVsConstant,
                "pins",
                ctx.loc(var),
                format!(
                    "pin on `{name}` forces spin {} but the isolated weight h = {} \
                     encodes the constant spin {} (pinning against it costs {} energy)",
                    spin_str(spin),
                    fmt4(h),
                    spin_str(implied),
                    fmt4(2.0 * h.abs()),
                ),
            ));
        }
    }

    let summary = if ctx.pins.is_empty() {
        "no pins".to_string()
    } else {
        format!(
            "{} pins over {} variables; {} contradictions, {} redundant, {} constant conflicts",
            ctx.pins.len(),
            first.len(),
            contradictions,
            redundant,
            constant_conflicts,
        )
    };
    report.passes.push(PassResult {
        pass: "pins",
        summary,
    });
}

#[cfg(test)]
mod tests {
    use crate::{analyze_ising, AnalysisOptions, Code, Severity};
    use qac_pbf::{Ising, Spin};

    #[test]
    fn contradiction_sets_unsat() {
        let mut m = Ising::new(2);
        m.add_j(0, 1, -1.0);
        let report = analyze_ising(
            &m,
            &[(0, Spin::Up), (0, Spin::Down)],
            &AnalysisOptions::default(),
        );
        assert!(report.unsat);
        assert!(report.pin_contradiction);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::PinContradiction));
    }

    #[test]
    fn pin_against_isolated_constant_is_an_error_but_not_unsat() {
        // Variable 0 is degree-0 with h = −2 (the H_VCC constant-true
        // idiom); pinning it false fights the constant.
        let mut m = Ising::new(2);
        m.add_h(0, -2.0);
        m.add_h(1, 0.5);
        let report = analyze_ising(&m, &[(0, Spin::Down)], &AnalysisOptions::default());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::PinVsConstant)
            .expect("QAC002 expected");
        assert_eq!(d.severity, Severity::Error);
        assert!(!report.pin_contradiction);
        assert!(!report.unsat, "QAC002 must not claim UNSAT");
    }

    #[test]
    fn pin_agreeing_with_constant_is_clean() {
        let mut m = Ising::new(1);
        m.add_h(0, -2.0);
        let report = analyze_ising(&m, &[(0, Spin::Up)], &AnalysisOptions::default());
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::PinVsConstant));
    }

    #[test]
    fn coupled_variable_never_triggers_constant_check() {
        let mut m = Ising::new(2);
        m.add_h(0, -2.0);
        m.add_j(0, 1, 1.0);
        let report = analyze_ising(&m, &[(0, Spin::Down)], &AnalysisOptions::default());
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::PinVsConstant));
    }
}
