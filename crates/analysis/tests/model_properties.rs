//! Property testing of the analyzer's static verdicts against
//! exhaustive enumeration.
//!
//! Over 200 random pinned Ising models small enough to enumerate
//! (≤ 12 variables, coefficients quantized to multiples of 0.25 so
//! verdicts are crisp), three verdict families must agree with
//! [`ExactSolver`]:
//!
//! 1. **UNSAT** — `report.unsat` iff the pinned minimum exceeds the
//!    expected (unpinned ground) energy.
//! 2. **Fixed variables** — every roof-duality persistency fix must be
//!    jointly realized by some exact ground state of the pinned model
//!    (weak persistency).
//! 3. **Chain-strength sufficiency** — for a variable the analyzer
//!    declares safe, physically splitting it into a two-qubit chain at
//!    the reported strength must leave the chain intact in some exact
//!    ground state of the split model.
//!
//! On a violation the harness greedily shrinks the model (deleting
//! terms and pins while the violation persists) and panics with the
//! minimized model as constructor code, mirroring
//! `qac-solvers/tests/differential.rs`.

use qac_analysis::{analyze_ising, AnalysisOptions, AnalysisReport};
use qac_pbf::scale::scale_to_range;
use qac_pbf::{Ising, Spin};
use qac_solvers::ExactSolver;

const MODELS: usize = 200;
const EPS: f64 = 1e-6;

/// Deterministic xorshift64 RNG — no external dependency, same numbers
/// on every platform.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// A value in `0..bound`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// A nonzero coefficient in `[-2, 2]`, quantized to 0.25 steps.
    fn coefficient(&mut self) -> f64 {
        loop {
            let v = (self.below(17) as i64 - 8) as f64 * 0.25;
            if v != 0.0 {
                return v;
            }
        }
    }
}

#[derive(Clone)]
enum Term {
    H(usize, f64),
    J(usize, usize, f64),
}

/// One random pinned model: term list plus first-wins pins on distinct
/// variables (so the only possible UNSAT mechanism is energetic, not a
/// syntactic pin contradiction).
#[derive(Clone)]
struct Case {
    num_vars: usize,
    terms: Vec<Term>,
    pins: Vec<(usize, Spin)>,
}

fn random_case(seed: u64) -> Case {
    let mut rng = XorShift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let num_vars = 2 + rng.below(11) as usize; // 2..=12
    let mut terms = Vec::new();
    for i in 0..num_vars {
        if rng.below(10) < 7 {
            terms.push(Term::H(i, rng.coefficient()));
        }
        for j in (i + 1)..num_vars {
            if rng.below(10) < 4 {
                terms.push(Term::J(i, j, rng.coefficient()));
            }
        }
    }
    let mut pins = Vec::new();
    for _ in 0..rng.below(4) {
        let var = rng.below(num_vars as u64) as usize;
        if pins.iter().all(|&(v, _)| v != var) {
            let spin = if rng.below(2) == 0 {
                Spin::Up
            } else {
                Spin::Down
            };
            pins.push((var, spin));
        }
    }
    Case {
        num_vars,
        terms,
        pins,
    }
}

fn build(case: &Case) -> Ising {
    let mut model = Ising::new(case.num_vars);
    for term in &case.terms {
        match *term {
            Term::H(i, v) => model.add_h(i, v),
            Term::J(i, j, v) => model.add_j(i, j, v),
        }
    }
    model
}

fn render(case: &Case) -> String {
    let mut code = format!("let mut m = Ising::new({});\n", case.num_vars);
    for term in &case.terms {
        match *term {
            Term::H(i, v) => code.push_str(&format!("m.add_h({i}, {v:?});\n")),
            Term::J(i, j, v) => code.push_str(&format!("m.add_j({i}, {j}, {v:?});\n")),
        }
    }
    for &(var, spin) in &case.pins {
        code.push_str(&format!("// pin {var} := {spin:?}\n"));
    }
    code
}

fn analyzer_options(expected: f64) -> AnalysisOptions {
    AnalysisOptions {
        exact_audit_max_vars: 12,
        expected_ground_energy: Some(expected),
        ..Default::default()
    }
}

fn analyze(case: &Case, expected: f64) -> AnalysisReport {
    analyze_ising(&build(case), &case.pins, &analyzer_options(expected))
}

/// The model with every pin substituted out (the analyzer's own pinned
/// view), for exact cross-checks.
fn pinned_model(case: &Case) -> Ising {
    let mut model = build(case);
    for &(var, spin) in &case.pins {
        model.fix_variable(var, spin);
    }
    model
}

/// Returns a description of the first verdict that disagrees with
/// exhaustive enumeration, or `None` if the analyzer is right about
/// this case.
fn verdict_violation(case: &Case) -> Option<String> {
    let model = build(case);
    let expected = ExactSolver::new().minimum_energy(&model);
    let report = analyze(case, expected);

    // 1. UNSAT agreement: the pins force an energy above the unpinned
    // ground iff the analyzer says so.
    let pinned = pinned_model(case);
    let (pinned_min, grounds) = ExactSolver::new().ground_states(&pinned, 1e-9);
    let truly_unsat = pinned_min > expected + EPS;
    if report.unsat != truly_unsat {
        return Some(format!(
            "unsat verdict {} but exact pinned minimum {pinned_min} vs expected {expected}",
            report.unsat
        ));
    }

    // 2. Weak persistency: all roof fixes jointly present in some exact
    // ground state of the pinned model.
    if !report.roof_fixed.is_empty() {
        let realized = grounds.iter().any(|spins| {
            report
                .roof_fixed
                .iter()
                .all(|&(var, spin)| spins[var] == spin)
        });
        if !realized {
            return Some(format!(
                "roof fixes {:?} are realized by no exact ground state",
                report.roof_fixed
            ));
        }
    }

    // 3. Chain-strength sufficiency: split the first safe coupled
    // variable into a two-qubit chain at the reported strength; some
    // exact ground state of the split model must keep the chain intact.
    let scaled = scale_to_range(&model, AnalysisOptions::default().range);
    let mut degrees = vec![0usize; case.num_vars];
    for t in scaled.model.j_iter() {
        if t.value != 0.0 {
            degrees[t.i] += 1;
            degrees[t.j] += 1;
        }
    }
    let safe = (0..case.num_vars).find(|&v| degrees[v] > 0 && !report.chain_unsafe.contains(&v));
    if let Some(v) = safe {
        let twin = case.num_vars;
        let mut split = Ising::new(case.num_vars + 1);
        for i in 0..case.num_vars {
            split.add_h(i, scaled.model.h(i));
        }
        // Alternate v's couplings between the original and the twin so
        // the chain actually carries interaction on both ends.
        let mut moved = 0usize;
        for t in scaled.model.j_iter() {
            if t.value == 0.0 {
                continue;
            }
            let (mut i, mut j) = (t.i, t.j);
            if i == v || j == v {
                if moved % 2 == 1 {
                    if i == v {
                        i = twin;
                    } else {
                        j = twin;
                    }
                }
                moved += 1;
            }
            split.add_j(i, j, t.value);
        }
        split.add_j(v, twin, -report.chain_strength);
        let (_, split_grounds) = ExactSolver::new()
            .with_max_vars(case.num_vars + 1)
            .ground_states(&split, 1e-9);
        if !split_grounds.iter().any(|spins| spins[v] == spins[twin]) {
            return Some(format!(
                "variable {v} declared chain-safe at strength {} but every exact \
                 ground state of the split model breaks the chain",
                report.chain_strength
            ));
        }
    }

    None
}

/// Greedily deletes terms and pins while the violation persists, then
/// panics with the minimized reproduction.
fn shrink_and_report(mut case: Case, mut reason: String) -> ! {
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < case.terms.len() {
            let mut candidate = case.clone();
            candidate.terms.remove(i);
            if let Some(r) = verdict_violation(&candidate) {
                case = candidate;
                reason = r;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        let mut p = 0;
        while p < case.pins.len() {
            let mut candidate = case.clone();
            candidate.pins.remove(p);
            if let Some(r) = verdict_violation(&candidate) {
                case = candidate;
                reason = r;
                shrunk = true;
            } else {
                p += 1;
            }
        }
        if !shrunk {
            break;
        }
    }
    panic!(
        "analyzer verdict disagrees with exhaustive enumeration: {reason}\n\
         minimized reproduction ({} terms, {} pins):\n{}",
        case.terms.len(),
        case.pins.len(),
        render(&case),
    );
}

#[test]
fn analyzer_verdicts_agree_with_exact_enumeration() {
    let mut pinned_cases = 0usize;
    let mut unsat_cases = 0usize;
    for i in 0..MODELS {
        let case = random_case(0xa11a_1515 + i as u64);
        if let Some(reason) = verdict_violation(&case) {
            shrink_and_report(case, reason);
        }
        if !case.pins.is_empty() {
            pinned_cases += 1;
        }
        let model = build(&case);
        let expected = ExactSolver::new().minimum_energy(&model);
        if analyze(&case, expected).unsat {
            unsat_cases += 1;
        }
    }
    // The corpus must actually exercise both pinned and UNSAT regimes —
    // a vacuous sweep would pass on a broken analyzer.
    assert!(
        pinned_cases >= MODELS / 3,
        "only {pinned_cases} pinned cases"
    );
    assert!(unsat_cases >= 5, "only {unsat_cases} UNSAT cases");
}

/// Prove the harness fails loudly: feeding it a wrong expected energy
/// must trip the UNSAT agreement check.
#[test]
fn harness_detects_a_lying_verdict() {
    for i in 0..MODELS {
        let case = random_case(0xbad_cafe + i as u64);
        if case.pins.is_empty() {
            continue;
        }
        let model = build(&case);
        let expected = ExactSolver::new().minimum_energy(&model);
        let pinned = pinned_model(&case);
        let pinned_min = ExactSolver::new().minimum_energy(&pinned);
        if pinned_min > expected + EPS {
            // Claim a *higher* expected energy: the analyzer will call
            // this satisfiable while the honest verdict is UNSAT, which
            // the agreement check must notice.
            let report = analyze_ising(&model, &case.pins, &analyzer_options(pinned_min));
            assert!(!report.unsat, "analyzer should believe the lie");
            return;
        }
    }
    panic!("corpus produced no energetically-UNSAT pinned case");
}
