//! The Chimera graph family (paper §2, Figure 1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::HardwareGraph;

/// A `C_m` Chimera topology: an m×m mesh of unit cells, each a K₄,₄
/// bipartite graph of 8 qubits. A D-Wave 2000Q is a C16 (2048 qubits).
///
/// Qubit indexing: `((row · m) + col) · 8 + partition · 4 + k` with
/// `partition 0` the "horizontal" shore (coupled east–west) and
/// `partition 1` the "vertical" shore (coupled north–south).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chimera {
    m: usize,
}

/// Qubits per unit-cell shore.
const SHORE: usize = 4;

impl Chimera {
    /// A `C_m` topology.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Chimera {
        assert!(m > 0, "Chimera size must be positive");
        Chimera { m }
    }

    /// The D-Wave 2000Q: C16, nominally 2048 qubits.
    pub fn dwave_2000q() -> Chimera {
        Chimera::new(16)
    }

    /// Mesh size m.
    pub fn size(&self) -> usize {
        self.m
    }

    /// Total qubits, 8m².
    pub fn num_qubits(&self) -> usize {
        8 * self.m * self.m
    }

    /// The linear index of a qubit.
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn qubit(&self, row: usize, col: usize, partition: usize, k: usize) -> usize {
        assert!(row < self.m && col < self.m && partition < 2 && k < SHORE);
        ((row * self.m) + col) * 2 * SHORE + partition * SHORE + k
    }

    /// The `(row, col, partition, k)` coordinates of a linear index.
    pub fn coordinates(&self, qubit: usize) -> (usize, usize, usize, usize) {
        let cell = qubit / (2 * SHORE);
        let within = qubit % (2 * SHORE);
        (cell / self.m, cell % self.m, within / SHORE, within % SHORE)
    }

    /// Builds the full hardware graph.
    pub fn graph(&self) -> HardwareGraph {
        let mut g = HardwareGraph::new(self.num_qubits());
        for row in 0..self.m {
            for col in 0..self.m {
                // Intra-cell bipartite couplers.
                for i in 0..SHORE {
                    for j in 0..SHORE {
                        g.add_edge(self.qubit(row, col, 0, i), self.qubit(row, col, 1, j));
                    }
                }
                // Horizontal shore couples east.
                if col + 1 < self.m {
                    for k in 0..SHORE {
                        g.add_edge(self.qubit(row, col, 0, k), self.qubit(row, col + 1, 0, k));
                    }
                }
                // Vertical shore couples south.
                if row + 1 < self.m {
                    for k in 0..SHORE {
                        g.add_edge(self.qubit(row, col, 1, k), self.qubit(row + 1, col, 1, k));
                    }
                }
            }
        }
        g
    }

    /// The deterministic "triangle" clique embedding: chains for a
    /// complete graph K_n, n ≤ 4m, each an L of one vertical and one
    /// horizontal wire meeting on the diagonal. This is the template
    /// D-Wave tooling uses when the randomized heuristic struggles on
    /// dense graphs.
    ///
    /// Returns `None` when `n > 4m`.
    pub fn clique_embedding(&self, n: usize) -> Option<crate::Embedding> {
        if n > 4 * self.m {
            return None;
        }
        let blocks = n.div_ceil(4).max(1);
        let mut chains = Vec::with_capacity(n);
        for i in 0..n {
            let a = i / 4;
            let r = i % 4;
            let mut chain = Vec::with_capacity(2 * blocks);
            for j in 0..blocks {
                chain.push(self.qubit(j, a, 1, r)); // vertical wire in column a
            }
            for j in 0..blocks {
                chain.push(self.qubit(a, j, 0, r)); // horizontal wire in row a
            }
            chains.push(chain);
        }
        Some(crate::Embedding::from_chains(chains))
    }

    /// Builds the hardware graph with a random `fraction` of qubits
    /// deactivated (deterministic under `seed`), modeling fabrication
    /// drop-out.
    ///
    /// # Panics
    /// Panics if `fraction` is not within `[0, 1)`.
    pub fn graph_with_dropout(&self, fraction: f64, seed: u64) -> HardwareGraph {
        assert!((0.0..1.0).contains(&fraction), "fraction in [0,1)");
        let mut g = self.graph();
        let mut rng = StdRng::seed_from_u64(seed);
        for q in 0..self.num_qubits() {
            if rng.gen::<f64>() < fraction {
                g.deactivate(q);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c16_is_a_dwave_2000q() {
        let c = Chimera::dwave_2000q();
        assert_eq!(c.num_qubits(), 2048);
        let g = c.graph();
        // Edge count: 16 intra-cell per cell ×256 cells + inter-cell:
        // horizontal 16 rows × 15 transitions × 4 + same vertical.
        let intra = 256 * 16;
        let inter = 2 * 16 * 15 * 4;
        assert_eq!(g.num_edges(), intra + inter);
    }

    #[test]
    fn coordinates_round_trip() {
        let c = Chimera::new(3);
        for q in 0..c.num_qubits() {
            let (r, col, p, k) = c.coordinates(q);
            assert_eq!(c.qubit(r, col, p, k), q);
        }
    }

    #[test]
    fn figure1_adjacency() {
        // Within a cell every horizontal qubit touches every vertical one
        // and nothing in its own shore.
        let c = Chimera::new(2);
        let g = c.graph();
        for i in 0..4 {
            for j in 0..4 {
                assert!(g.has_edge(c.qubit(0, 0, 0, i), c.qubit(0, 0, 1, j)));
                if i != j {
                    assert!(!g.has_edge(c.qubit(0, 0, 0, i), c.qubit(0, 0, 0, j)));
                }
            }
        }
        // Inter-cell: horizontal shore east, vertical shore south.
        assert!(g.has_edge(c.qubit(0, 0, 0, 2), c.qubit(0, 1, 0, 2)));
        assert!(!g.has_edge(c.qubit(0, 0, 0, 2), c.qubit(0, 1, 0, 3)));
        assert!(g.has_edge(c.qubit(0, 0, 1, 1), c.qubit(1, 0, 1, 1)));
        assert!(!g.has_edge(c.qubit(0, 0, 1, 1), c.qubit(1, 0, 0, 1)));
    }

    #[test]
    fn no_odd_cycles() {
        // The paper notes a Chimera graph contains no odd-length cycles
        // (it is bipartite). Check 2-colorability of C3 by BFS.
        let c = Chimera::new(3);
        let g = c.graph();
        let n = c.num_qubits();
        let mut color = vec![-1i8; n];
        for start in 0..n {
            if color[start] >= 0 {
                continue;
            }
            color[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                for &u in g.neighbors(v) {
                    if color[u] < 0 {
                        color[u] = 1 - color[v];
                        queue.push_back(u);
                    } else {
                        assert_ne!(color[u], color[v], "odd cycle through {u}-{v}");
                    }
                }
            }
        }
    }

    #[test]
    fn dropout_is_deterministic() {
        let c = Chimera::new(4);
        let g1 = c.graph_with_dropout(0.05, 42);
        let g2 = c.graph_with_dropout(0.05, 42);
        assert_eq!(g1, g2);
        assert!(g1.num_active() < c.num_qubits());
        assert!(g1.num_active() > c.num_qubits() / 2);
    }
}
