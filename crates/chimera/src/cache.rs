//! A process-wide embedding cache.
//!
//! Minor embedding dominates compile-to-run latency (the CMR heuristic
//! reroutes chains for dozens of rounds), yet repeated runs of the same
//! compiled program re-solve the identical placement problem: the logical
//! interaction graph, the embedding options, and the hardware graph fully
//! determine the search. [`EmbeddingCache`] memoizes on exactly that
//! triple, so a warm run performs **zero** route iterations.
//!
//! The cache is `Sync`; share one instance across runs (or threads) via
//! `Arc`.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::embed::{EmbedOptions, EmbedStats, Embedding};
use crate::topology::Topology;
use crate::{EmbedError, HardwareGraph};

/// FNV-1a, the canonical-form hasher for cache keys (stable across runs,
/// unlike `DefaultHasher`, whose seeds are unspecified). Shared with the
/// topology module, which uses it for [`Topology::parameter_hash`]
/// values.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    pub(crate) fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Canonical hash of one embedding problem: logical interaction graph
/// (edges normalized, sorted, deduplicated) + [`EmbedOptions`] + hardware
/// graph (node count, active set, couplers).
///
/// The edge *weights* of the logical model are deliberately excluded —
/// an embedding depends only on which interactions exist, so models that
/// differ only in coefficients (e.g. different pin biases) share a cache
/// entry.
pub fn embedding_key(
    edges: &[(usize, usize)],
    num_vars: usize,
    options: &EmbedOptions,
    hardware: &HardwareGraph,
) -> u64 {
    let mut h = Fnv::new();
    h.write_usize(num_vars);

    let mut canonical: Vec<(usize, usize)> =
        edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
    canonical.sort_unstable();
    canonical.dedup();
    h.write_usize(canonical.len());
    for (a, b) in canonical {
        h.write_usize(a);
        h.write_usize(b);
    }

    h.write_u64(options.seed);
    h.write_usize(options.tries);
    h.write_usize(options.rounds);
    h.write_u64(options.penalty_base.to_bits());
    // The restart-race flag changes which embedding comes back (different
    // per-try seeds, best-of-all-tries winner), so it is part of the key;
    // `restart_threads` never affects the result, so it is not.
    h.write_u64(u64::from(options.parallel_restarts));

    h.write_usize(hardware.num_nodes());
    for node in 0..hardware.num_nodes() {
        if !hardware.is_active(node) {
            h.write_usize(node);
        }
    }
    h.write_usize(hardware.num_edges());
    for (a, b) in hardware.edges() {
        h.write_usize(a);
        h.write_usize(b);
    }
    h.finish()
}

/// [`embedding_key`] extended with the topology's canonical
/// [`parameter_hash`](Topology::parameter_hash).
///
/// The hardware-graph component of [`embedding_key`] already separates
/// most topologies (different edges hash differently), but two families
/// can in principle produce isomorphic — even identical — graphs of the
/// same size. Mixing in the family/parameter hash guarantees, e.g., a C4
/// and a king's graph with equal qubit counts can never share a cache
/// entry.
pub fn topology_embedding_key<T: Topology + ?Sized>(
    topology: &T,
    edges: &[(usize, usize)],
    num_vars: usize,
    options: &EmbedOptions,
    hardware: &HardwareGraph,
) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(topology.parameter_hash());
    h.write_u64(embedding_key(edges, num_vars, options, hardware));
    h.finish()
}

/// A coherent snapshot of the cache's counters (see
/// [`EmbeddingCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to embed.
    pub misses: usize,
    /// Embeddings currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Total completed lookups (every lookup is exactly one of hit or
    /// miss).
    pub fn lookups(&self) -> usize {
        self.hits + self.misses
    }
}

/// Memoizes minor embeddings by [`embedding_key`], with hit/miss
/// counters.
///
/// Counter updates happen while the entry map's lock is held, so a
/// [`EmbeddingCache::stats`] snapshot (which takes the same lock) is
/// always coherent: `entries <= misses` and `hits + misses` equals the
/// number of completed lookups — under any number of concurrent
/// threads, not just at quiescence. The engine's workers hammer one
/// shared cache, so these invariants are load-bearing (and tested
/// below).
#[derive(Default)]
pub struct EmbeddingCache {
    entries: Mutex<HashMap<u64, Embedding>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl fmt::Debug for EmbeddingCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EmbeddingCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl EmbeddingCache {
    /// An empty cache.
    pub fn new() -> EmbeddingCache {
        EmbeddingCache::default()
    }

    /// Returns the cached embedding for this problem, or computes one with
    /// `embed`, stores it, and returns it. Hits report
    /// [`EmbedStats::cache_hit`] with zero route iterations; failures are
    /// not cached (a later call with more tries may succeed).
    ///
    /// # Errors
    /// Whatever `embed` returns on a miss.
    pub fn get_or_embed<F>(
        &self,
        edges: &[(usize, usize)],
        num_vars: usize,
        options: &EmbedOptions,
        hardware: &HardwareGraph,
        embed: F,
    ) -> Result<(Embedding, EmbedStats), EmbedError>
    where
        F: FnOnce() -> Result<(Embedding, EmbedStats), EmbedError>,
    {
        let key = embedding_key(edges, num_vars, options, hardware);
        self.get_or_embed_keyed(key, None, embed)
    }

    /// Topology-aware [`EmbeddingCache::get_or_embed`]: the key also
    /// incorporates [`Topology::parameter_hash`] (see
    /// [`topology_embedding_key`]), so equal hardware graphs from
    /// different families never share an entry, and the cache counters
    /// are additionally emitted with a `topology="family"` label.
    ///
    /// # Errors
    /// Whatever `embed` returns on a miss.
    pub fn get_or_embed_on<T, F>(
        &self,
        topology: &T,
        edges: &[(usize, usize)],
        num_vars: usize,
        options: &EmbedOptions,
        hardware: &HardwareGraph,
        embed: F,
    ) -> Result<(Embedding, EmbedStats), EmbedError>
    where
        T: Topology + ?Sized,
        F: FnOnce() -> Result<(Embedding, EmbedStats), EmbedError>,
    {
        let key = topology_embedding_key(topology, edges, num_vars, options, hardware);
        self.get_or_embed_keyed(key, Some(topology.family()), embed)
    }

    fn get_or_embed_keyed<F>(
        &self,
        key: u64,
        family: Option<&'static str>,
        embed: F,
    ) -> Result<(Embedding, EmbedStats), EmbedError>
    where
        F: FnOnce() -> Result<(Embedding, EmbedStats), EmbedError>,
    {
        let labeled =
            |base: &str| family.map(|f| qac_telemetry::metrics::labeled(base, &[("topology", f)]));
        // Both the PR 6 `qac_embed_*` names and the generic
        // `qac_cache_hit/miss_total` convention the service layer will
        // scrape; the flight recorder gets the same event under the
        // current job's trace id for post-mortems.
        let bump = |names: [&str; 2], kind: qac_telemetry::FlightKind| {
            let telemetry = qac_telemetry::global();
            for base in names {
                telemetry.counter_add(base, 1);
                if let Some(name) = labeled(base) {
                    telemetry.counter_add(&name, 1);
                }
            }
            qac_telemetry::global_flight().record(kind, family.unwrap_or("embed"), 1.0);
        };
        {
            let guard = self.lock();
            if let Some(found) = guard.get(&key).cloned() {
                // Count the hit before releasing the map lock, so no
                // stats() snapshot can observe the lookup half-recorded.
                self.hits.fetch_add(1, Ordering::Relaxed);
                drop(guard);
                bump(
                    ["qac_embed_cache_hits_total", "qac_cache_hit_total"],
                    qac_telemetry::FlightKind::CacheHit,
                );
                let stats = EmbedStats {
                    cache_hit: true,
                    ..EmbedStats::default()
                };
                return Ok((found, stats));
            }
        }
        // The lock is NOT held while embedding (it can take seconds);
        // concurrent misses on the same key both embed and one insert
        // wins, which costs duplicated work but never blocks other keys.
        let (embedding, stats) = embed()?;
        {
            // Miss counter and insert move together under the lock:
            // `entries <= misses` holds at every instant (a lost update
            // here would let a stats() reader see an entry with no miss
            // accounting for it).
            let mut guard = self.lock();
            self.misses.fetch_add(1, Ordering::Relaxed);
            guard.entry(key).or_insert_with(|| embedding.clone());
        }
        bump(
            ["qac_embed_cache_misses_total", "qac_cache_miss_total"],
            qac_telemetry::FlightKind::CacheMiss,
        );
        Ok((embedding, stats))
    }

    /// Number of cached embeddings.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to embed.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// A coherent snapshot of hits, misses, and entry count, taken under
    /// the entry map's lock (unlike three separate calls to
    /// [`EmbeddingCache::hits`] / [`EmbeddingCache::misses`] /
    /// [`EmbeddingCache::len`], which can interleave with writers).
    pub fn stats(&self) -> CacheStats {
        let guard = self.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: guard.len(),
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Embedding>> {
        // A poisoned mutex means another thread panicked mid-insert; the
        // map itself is always in a consistent state.
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{find_embedding_with_stats, Chimera, KingGraph, Pegasus, Zephyr};

    fn triangle() -> Vec<(usize, usize)> {
        vec![(0, 1), (1, 2), (0, 2)]
    }

    fn embed_triangle(
        cache: &EmbeddingCache,
        hw: &HardwareGraph,
        options: &EmbedOptions,
    ) -> (Embedding, EmbedStats) {
        cache
            .get_or_embed(&triangle(), 3, options, hw, || {
                find_embedding_with_stats(&triangle(), 3, hw, options)
            })
            .unwrap()
    }

    #[test]
    fn warm_lookup_is_a_hit_with_zero_route_iterations() {
        let hw = Chimera::new(2).graph();
        let options = EmbedOptions::default();
        let cache = EmbeddingCache::new();

        let (cold, cold_stats) = embed_triangle(&cache, &hw, &options);
        assert!(!cold_stats.cache_hit);
        assert!(cold_stats.route_iterations > 0);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let (warm, warm_stats) = embed_triangle(&cache, &hw, &options);
        assert!(warm_stats.cache_hit);
        assert_eq!(warm_stats.route_iterations, 0);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cold, warm, "hit returns the identical embedding");
        assert!(
            warm.validate(&triangle(), &hw),
            "cached embedding stays valid"
        );
    }

    #[test]
    fn key_distinguishes_problem_options_and_hardware() {
        let hw2 = Chimera::new(2).graph();
        let hw3 = Chimera::new(3).graph();
        let mut dropped = Chimera::new(2).graph();
        dropped.deactivate(0);
        let base = EmbedOptions::default();
        let key =
            |edges: &[(usize, usize)], n, o: &EmbedOptions, hw| embedding_key(edges, n, o, hw);

        let k0 = key(&triangle(), 3, &base, &hw2);
        // Edge order and duplicates do not matter.
        assert_eq!(k0, key(&[(2, 1), (0, 2), (1, 0), (1, 2)], 3, &base, &hw2));
        // Everything else does.
        assert_ne!(k0, key(&[(0, 1), (1, 2)], 3, &base, &hw2));
        assert_ne!(k0, key(&triangle(), 4, &base, &hw2));
        assert_ne!(
            k0,
            key(
                &triangle(),
                3,
                &EmbedOptions {
                    seed: 1,
                    ..base.clone()
                },
                &hw2
            )
        );
        assert_ne!(
            k0,
            key(
                &triangle(),
                3,
                &EmbedOptions {
                    rounds: 7,
                    ..base.clone()
                },
                &hw2
            )
        );
        assert_ne!(
            k0,
            key(
                &triangle(),
                3,
                &EmbedOptions {
                    parallel_restarts: true,
                    ..base.clone()
                },
                &hw2
            )
        );
        // Thread count is a wall-time knob, never a result knob: same key.
        assert_eq!(
            k0,
            key(
                &triangle(),
                3,
                &EmbedOptions {
                    restart_threads: 8,
                    ..base.clone()
                },
                &hw2
            )
        );
        assert_ne!(k0, key(&triangle(), 3, &base, &hw3));
        assert_ne!(k0, key(&triangle(), 3, &base, &dropped));

        // Topology-aware keys: the family/parameter hash separates
        // topologies even when their qubit counts are equal. A C4 has
        // 8·16 = 128 qubits; so does a √128-free king's graph? No — but
        // equal *node counts* are exactly what the plain hardware hash
        // could conflate if the edge sets also matched, so the guarantee
        // must come from the parameter hash, not the graph bytes.
        let c4 = Chimera::new(4);
        let king = KingGraph::new(11); // 121 vs 128 nodes: near-miss sizes
        let tk = |t: &dyn Topology, hw: &HardwareGraph| {
            topology_embedding_key(t, &triangle(), 3, &base, hw)
        };
        let c4_graph = c4.graph();
        let king_graph = king.graph();
        assert_ne!(tk(&c4, &c4_graph), tk(&king, &king_graph));
        // Same problem + same hardware bytes, different claimed family →
        // different key (the collision the satellite guards against).
        assert_ne!(tk(&c4, &c4_graph), tk(&king, &c4_graph));
        assert_ne!(
            tk(&Pegasus::new(4), &c4_graph),
            tk(&Zephyr::new(4), &c4_graph)
        );
        // And the topology-aware key still separates everything the
        // plain key separates.
        assert_ne!(tk(&c4, &c4_graph), tk(&Chimera::new(3), &c4_graph));
    }

    #[test]
    fn failures_are_not_cached() {
        let hw = Chimera::new(1).graph();
        let cache = EmbeddingCache::new();
        let options = EmbedOptions {
            tries: 1,
            rounds: 4,
            ..Default::default()
        };
        // K9 in one unit cell: impossible.
        let edges: Vec<(usize, usize)> = (0..9)
            .flat_map(|i| ((i + 1)..9).map(move |j| (i, j)))
            .collect();
        let attempt = |cache: &EmbeddingCache| {
            cache.get_or_embed(&edges, 9, &options, &hw, || {
                find_embedding_with_stats(&edges, 9, &hw, &options)
            })
        };
        assert!(attempt(&cache).is_err());
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        // Still a miss (not a poisoned hit) the second time.
        assert!(attempt(&cache).is_err());
    }

    #[test]
    fn stats_snapshot_matches_individual_accessors_at_quiescence() {
        let hw = Chimera::new(2).graph();
        let options = EmbedOptions::default();
        let cache = EmbeddingCache::new();
        embed_triangle(&cache, &hw, &options);
        embed_triangle(&cache, &hw, &options);
        let stats = cache.stats();
        assert_eq!(
            stats,
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
        assert_eq!(stats.lookups(), 2);
        assert_eq!(
            (stats.hits, stats.misses, stats.entries),
            (cache.hits(), cache.misses(), cache.len())
        );
    }

    #[test]
    fn concurrent_hammer_loses_no_counter_updates() {
        // The engine fans workers out over one shared cache; this is the
        // lost-update regression test. 8 threads × 24 lookups over 4
        // distinct keys: every lookup must be accounted as exactly one
        // hit or miss, every key must end up cached, and mid-flight
        // stats() snapshots must never observe entries the miss counter
        // cannot explain.
        let hw = Chimera::new(2).graph();
        let cache = EmbeddingCache::new();
        let threads = 8usize;
        let iterations = 24usize;
        let keys = 4u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                let hw = &hw;
                scope.spawn(move || {
                    for i in 0..iterations {
                        // Distinct EmbedOptions seeds are distinct cache
                        // keys; rotate so every thread touches every key.
                        let options = EmbedOptions {
                            seed: (t + i) as u64 % keys,
                            ..Default::default()
                        };
                        let (embedding, _) = cache
                            .get_or_embed(&triangle(), 3, &options, hw, || {
                                find_embedding_with_stats(&triangle(), 3, hw, &options)
                            })
                            .expect("triangle embeds");
                        assert!(embedding.validate(&triangle(), hw));
                        let stats = cache.stats();
                        assert!(
                            stats.entries <= stats.misses,
                            "entry without a recorded miss: {stats:?}"
                        );
                        assert!(
                            stats.lookups() <= threads * iterations,
                            "over-counted lookups: {stats:?}"
                        );
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            stats.lookups(),
            threads * iterations,
            "lost a counter update: {stats:?}"
        );
        assert_eq!(stats.entries, keys as usize, "every key cached once");
        // Duplicated work on racing first lookups is allowed (misses may
        // exceed entries) but each key misses at least once.
        assert!(stats.misses >= keys as usize);
        assert_eq!(stats.hits, threads * iterations - stats.misses);
    }

    #[test]
    fn concurrent_hammer_across_mixed_topologies() {
        // Same shape as the single-topology hammer, but the 8 threads
        // rotate over *topologies* instead of seeds: one triangle, one
        // option set, four families of similar scale. Every
        // (topology, hardware) pair must get exactly one entry and the
        // counters must balance — a cross-family key collision would
        // surface as a missing entry (two families sharing one) or as a
        // validate() failure (a chain of foreign qubit indices).
        let topologies: Vec<(Box<dyn Topology + Sync>, HardwareGraph)> = vec![
            (Box::new(Chimera::new(2)), Chimera::new(2).graph()),
            (Box::new(Pegasus::new(2)), Pegasus::new(2).graph()),
            (Box::new(Zephyr::new(2)), Zephyr::new(2).graph()),
            (Box::new(KingGraph::new(4)), KingGraph::new(4).graph()),
        ];
        let cache = EmbeddingCache::new();
        let threads = 8usize;
        let iterations = 24usize;
        let options = EmbedOptions::default();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                let topologies = &topologies;
                let options = &options;
                scope.spawn(move || {
                    for i in 0..iterations {
                        let (topology, hw) = &topologies[(t + i) % topologies.len()];
                        let (embedding, _) = cache
                            .get_or_embed_on(topology.as_ref(), &triangle(), 3, options, hw, || {
                                find_embedding_with_stats(&triangle(), 3, hw, options)
                            })
                            .expect("triangle embeds on every family");
                        assert!(
                            embedding.validate(&triangle(), hw),
                            "cached chain must be valid on its own topology"
                        );
                        let stats = cache.stats();
                        assert!(stats.entries <= stats.misses, "{stats:?}");
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.lookups(), threads * iterations);
        assert_eq!(
            stats.entries,
            topologies.len(),
            "one entry per topology — no cross-family collisions: {stats:?}"
        );
        assert!(stats.misses >= topologies.len());
        assert_eq!(stats.hits, threads * iterations - stats.misses);
    }

    #[test]
    fn lookups_emit_generic_counters_and_flight_events() {
        // The PR 7 satellite: alongside the qac_embed_* names, every
        // lookup bumps the generic qac_cache_hit/miss_total counters
        // (labeled by topology family + unlabeled aggregate) and leaves
        // a CacheHit/CacheMiss flight event under the active trace.
        use qac_telemetry::{FlightKind, TraceId, TraceScope};
        let telemetry = qac_telemetry::global();
        telemetry.enable();
        let labeled_hit =
            qac_telemetry::metrics::labeled("qac_cache_hit_total", &[("topology", "king")]);
        let counters = || {
            let m = telemetry.metrics();
            (
                m.counter("qac_cache_hit_total"),
                m.counter("qac_cache_miss_total"),
                m.counter(&labeled_hit),
            )
        };
        let before = counters();

        let king = KingGraph::new(4);
        let hw = king.graph();
        let options = EmbedOptions::default();
        let cache = EmbeddingCache::new();
        let trace = TraceId::fresh();
        {
            let _scope = TraceScope::enter(trace);
            for _ in 0..2 {
                cache
                    .get_or_embed_on(&king, &triangle(), 3, &options, &hw, || {
                        find_embedding_with_stats(&triangle(), 3, &hw, &options)
                    })
                    .expect("triangle embeds on a king graph");
            }
        }

        let after = counters();
        assert_eq!(after.0, before.0 + 1, "one generic hit");
        assert_eq!(after.1, before.1 + 1, "one generic miss");
        assert_eq!(after.2, before.2 + 1, "one king-labeled hit");

        let kinds: Vec<FlightKind> = qac_telemetry::global_flight()
            .events_for(trace)
            .iter()
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            kinds,
            [FlightKind::CacheMiss, FlightKind::CacheHit],
            "miss then hit, both under the job's trace id"
        );
        for event in qac_telemetry::global_flight().events_for(trace) {
            assert_eq!(event.name, "king");
        }
    }

    #[test]
    fn clear_forces_recomputation() {
        let hw = Chimera::new(2).graph();
        let options = EmbedOptions::default();
        let cache = EmbeddingCache::new();
        embed_triangle(&cache, &hw, &options);
        cache.clear();
        let (_, stats) = embed_triangle(&cache, &hw, &options);
        assert!(!stats.cache_hit);
        assert_eq!(cache.misses(), 2);
    }
}
