//! A process-wide embedding cache.
//!
//! Minor embedding dominates compile-to-run latency (the CMR heuristic
//! reroutes chains for dozens of rounds), yet repeated runs of the same
//! compiled program re-solve the identical placement problem: the logical
//! interaction graph, the embedding options, and the hardware graph fully
//! determine the search. [`EmbeddingCache`] memoizes on exactly that
//! triple, so a warm run performs **zero** route iterations.
//!
//! The cache is `Sync`; share one instance across runs (or threads) via
//! `Arc`.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::embed::{find_embedding_incremental, EmbedOptions, EmbedStats, Embedding};
use crate::topology::Topology;
use crate::{EmbedError, HardwareGraph};

/// FNV-1a, the canonical-form hasher for cache keys (stable across runs,
/// unlike `DefaultHasher`, whose seeds are unspecified). Shared with the
/// topology module, which uses it for [`Topology::parameter_hash`]
/// values.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    pub(crate) fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// First token of a snapshot file's header line.
const SNAPSHOT_MAGIC: &str = "qac-embedding-cache";

/// Snapshot format version; bump on any layout change so stale files
/// are rejected instead of misread.
const SNAPSHOT_VERSION: u32 = 1;

/// Why [`EmbeddingCache::load`] rejected a snapshot file.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading the file itself failed.
    Io(std::io::Error),
    /// The file parses as a snapshot but was written by a different
    /// format version.
    VersionMismatch {
        /// The version token found in the header.
        found: String,
    },
    /// The snapshot was saved for a different hardware family or size.
    TopologyMismatch {
        /// `family parameter_hash` the caller expected.
        expected: String,
        /// `family parameter_hash` stamped in the file.
        found: String,
    },
    /// The file is malformed: bad magic, failed checksum, or an
    /// unparseable line.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::VersionMismatch { found } => {
                write!(
                    f,
                    "snapshot version mismatch: found {found}, want v{SNAPSHOT_VERSION}"
                )
            }
            SnapshotError::TopologyMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot topology mismatch: saved for {found}, loading on {expected}"
                )
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Canonical hash of one embedding problem: logical interaction graph
/// (edges normalized, sorted, deduplicated) + [`EmbedOptions`] + hardware
/// graph (node count, active set, couplers).
///
/// The edge *weights* of the logical model are deliberately excluded —
/// an embedding depends only on which interactions exist, so models that
/// differ only in coefficients (e.g. different pin biases) share a cache
/// entry.
pub fn embedding_key(
    edges: &[(usize, usize)],
    num_vars: usize,
    options: &EmbedOptions,
    hardware: &HardwareGraph,
) -> u64 {
    let mut h = Fnv::new();
    h.write_usize(num_vars);

    let mut canonical: Vec<(usize, usize)> =
        edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
    canonical.sort_unstable();
    canonical.dedup();
    h.write_usize(canonical.len());
    for (a, b) in canonical {
        h.write_usize(a);
        h.write_usize(b);
    }

    h.write_u64(options.seed);
    h.write_usize(options.tries);
    h.write_usize(options.rounds);
    h.write_u64(options.penalty_base.to_bits());
    // The restart-race flag changes which embedding comes back (different
    // per-try seeds, best-of-all-tries winner), so it is part of the key;
    // `restart_threads` never affects the result, so it is not.
    h.write_u64(u64::from(options.parallel_restarts));

    h.write_usize(hardware.num_nodes());
    for node in 0..hardware.num_nodes() {
        if !hardware.is_active(node) {
            h.write_usize(node);
        }
    }
    h.write_usize(hardware.num_edges());
    for (a, b) in hardware.edges() {
        h.write_usize(a);
        h.write_usize(b);
    }
    h.finish()
}

/// [`embedding_key`] extended with the topology's canonical
/// [`parameter_hash`](Topology::parameter_hash).
///
/// The hardware-graph component of [`embedding_key`] already separates
/// most topologies (different edges hash differently), but two families
/// can in principle produce isomorphic — even identical — graphs of the
/// same size. Mixing in the family/parameter hash guarantees, e.g., a C4
/// and a king's graph with equal qubit counts can never share a cache
/// entry.
pub fn topology_embedding_key<T: Topology + ?Sized>(
    topology: &T,
    edges: &[(usize, usize)],
    num_vars: usize,
    options: &EmbedOptions,
    hardware: &HardwareGraph,
) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(topology.parameter_hash());
    h.write_u64(embedding_key(edges, num_vars, options, hardware));
    h.finish()
}

/// A coherent snapshot of the cache's counters (see
/// [`EmbeddingCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to embed.
    pub misses: usize,
    /// Embeddings currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Total completed lookups (every lookup is exactly one of hit or
    /// miss).
    pub fn lookups(&self) -> usize {
        self.hits + self.misses
    }
}

/// Memoizes minor embeddings by [`embedding_key`], with hit/miss
/// counters.
///
/// Counter updates happen while the entry map's lock is held, so a
/// [`EmbeddingCache::stats`] snapshot (which takes the same lock) is
/// always coherent: `entries <= misses` and `hits + misses` equals the
/// number of completed lookups — under any number of concurrent
/// threads, not just at quiescence. The engine's workers hammer one
/// shared cache, so these invariants are load-bearing (and tested
/// below).
#[derive(Default)]
pub struct EmbeddingCache {
    entries: Mutex<HashMap<u64, Embedding>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl fmt::Debug for EmbeddingCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EmbeddingCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl EmbeddingCache {
    /// An empty cache.
    pub fn new() -> EmbeddingCache {
        EmbeddingCache::default()
    }

    /// Returns the cached embedding for this problem, or computes one with
    /// `embed`, stores it, and returns it. Hits report
    /// [`EmbedStats::cache_hit`] with zero route iterations; failures are
    /// not cached (a later call with more tries may succeed).
    ///
    /// # Errors
    /// Whatever `embed` returns on a miss.
    pub fn get_or_embed<F>(
        &self,
        edges: &[(usize, usize)],
        num_vars: usize,
        options: &EmbedOptions,
        hardware: &HardwareGraph,
        embed: F,
    ) -> Result<(Embedding, EmbedStats), EmbedError>
    where
        F: FnOnce() -> Result<(Embedding, EmbedStats), EmbedError>,
    {
        let key = embedding_key(edges, num_vars, options, hardware);
        self.get_or_embed_keyed(key, None, embed)
    }

    /// Topology-aware [`EmbeddingCache::get_or_embed`]: the key also
    /// incorporates [`Topology::parameter_hash`] (see
    /// [`topology_embedding_key`]), so equal hardware graphs from
    /// different families never share an entry, and the cache counters
    /// are additionally emitted with a `topology="family"` label.
    ///
    /// # Errors
    /// Whatever `embed` returns on a miss.
    pub fn get_or_embed_on<T, F>(
        &self,
        topology: &T,
        edges: &[(usize, usize)],
        num_vars: usize,
        options: &EmbedOptions,
        hardware: &HardwareGraph,
        embed: F,
    ) -> Result<(Embedding, EmbedStats), EmbedError>
    where
        T: Topology + ?Sized,
        F: FnOnce() -> Result<(Embedding, EmbedStats), EmbedError>,
    {
        let key = topology_embedding_key(topology, edges, num_vars, options, hardware);
        self.get_or_embed_keyed(key, Some(topology.family()), embed)
    }

    /// [`EmbeddingCache::get_or_embed`] whose miss path repairs a
    /// previous embedding instead of routing from scratch: on a miss the
    /// cache calls [`find_embedding_incremental`], which keeps every
    /// chain of a clean (`!dirty[v]`) variable and reroutes only the
    /// dirtied ones, falling back to a full route when the seed cannot
    /// be repaired (DESIGN.md §14). The result is stored under the *new*
    /// problem's key, so later identical lookups are plain hits.
    ///
    /// # Errors
    /// Whatever the seeded embed (or its full-routing fallback) returns.
    pub fn get_or_embed_incremental(
        &self,
        edges: &[(usize, usize)],
        num_vars: usize,
        options: &EmbedOptions,
        hardware: &HardwareGraph,
        prev: &Embedding,
        dirty: &[bool],
    ) -> Result<(Embedding, EmbedStats), EmbedError> {
        let key = embedding_key(edges, num_vars, options, hardware);
        self.get_or_embed_keyed(key, None, || {
            find_embedding_incremental(edges, num_vars, hardware, options, prev, dirty)
        })
    }

    fn get_or_embed_keyed<F>(
        &self,
        key: u64,
        family: Option<&'static str>,
        embed: F,
    ) -> Result<(Embedding, EmbedStats), EmbedError>
    where
        F: FnOnce() -> Result<(Embedding, EmbedStats), EmbedError>,
    {
        let labeled =
            |base: &str| family.map(|f| qac_telemetry::metrics::labeled(base, &[("topology", f)]));
        // Both the PR 6 `qac_embed_*` names and the generic
        // `qac_cache_hit/miss_total` convention the service layer will
        // scrape; the flight recorder gets the same event under the
        // current job's trace id for post-mortems.
        let bump = |names: [&str; 2], kind: qac_telemetry::FlightKind| {
            let telemetry = qac_telemetry::global();
            for base in names {
                telemetry.counter_add(base, 1);
                if let Some(name) = labeled(base) {
                    telemetry.counter_add(&name, 1);
                }
            }
            qac_telemetry::global_flight().record(kind, family.unwrap_or("embed"), 1.0);
        };
        {
            let guard = self.lock();
            if let Some(found) = guard.get(&key).cloned() {
                // Count the hit before releasing the map lock, so no
                // stats() snapshot can observe the lookup half-recorded.
                self.hits.fetch_add(1, Ordering::Relaxed);
                drop(guard);
                bump(
                    ["qac_embed_cache_hits_total", "qac_cache_hit_total"],
                    qac_telemetry::FlightKind::CacheHit,
                );
                let stats = EmbedStats {
                    cache_hit: true,
                    ..EmbedStats::default()
                };
                return Ok((found, stats));
            }
        }
        // The lock is NOT held while embedding (it can take seconds);
        // concurrent misses on the same key both embed and one insert
        // wins, which costs duplicated work but never blocks other keys.
        let (embedding, stats) = embed()?;
        {
            // Miss counter and insert move together under the lock:
            // `entries <= misses` holds at every instant (a lost update
            // here would let a stats() reader see an entry with no miss
            // accounting for it).
            let mut guard = self.lock();
            self.misses.fetch_add(1, Ordering::Relaxed);
            guard.entry(key).or_insert_with(|| embedding.clone());
        }
        bump(
            ["qac_embed_cache_misses_total", "qac_cache_miss_total"],
            qac_telemetry::FlightKind::CacheMiss,
        );
        Ok((embedding, stats))
    }

    /// Number of cached embeddings.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to embed.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// A coherent snapshot of hits, misses, and entry count, taken under
    /// the entry map's lock (unlike three separate calls to
    /// [`EmbeddingCache::hits`] / [`EmbeddingCache::misses`] /
    /// [`EmbeddingCache::len`], which can interleave with writers).
    pub fn stats(&self) -> CacheStats {
        let guard = self.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: guard.len(),
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Writes every cached entry to `path` in the versioned snapshot
    /// format (see [`EmbeddingCache::load`]). The snapshot is stamped
    /// with `topology`'s family and
    /// [`parameter_hash`](Topology::parameter_hash), so it can only be
    /// loaded back against the same hardware family and size, and ends
    /// with an FNV-1a checksum over the body. Entries are written in key
    /// order, so equal caches produce byte-identical snapshots.
    ///
    /// # Errors
    /// Any I/O error from writing `path`.
    pub fn save<T: Topology + ?Sized>(&self, topology: &T, path: &Path) -> std::io::Result<()> {
        let mut body = String::new();
        body.push_str(&format!("{SNAPSHOT_MAGIC} v{SNAPSHOT_VERSION}\n"));
        body.push_str(&format!(
            "topology {} {:016x}\n",
            topology.family(),
            topology.parameter_hash()
        ));
        let entries: Vec<(u64, Embedding)> = {
            let guard = self.lock();
            let mut entries: Vec<(u64, Embedding)> =
                guard.iter().map(|(&k, e)| (k, e.clone())).collect();
            entries.sort_unstable_by_key(|&(k, _)| k);
            entries
        };
        body.push_str(&format!("entries {}\n", entries.len()));
        for (key, embedding) in entries {
            body.push_str(&format!("entry {key:016x} {}\n", embedding.num_vars()));
            for chain in embedding.chains() {
                body.push_str("chain");
                for &q in chain {
                    body.push_str(&format!(" {q}"));
                }
                body.push('\n');
            }
        }
        let mut h = Fnv::new();
        h.write_bytes(body.as_bytes());
        body.push_str(&format!("checksum {:016x}\n", h.finish()));
        std::fs::write(path, body)
    }

    /// Reads a snapshot written by [`EmbeddingCache::save`] into a fresh
    /// cache (counters start at zero; the loaded entries count as
    /// pre-warmed, not as misses).
    ///
    /// The snapshot is rejected — never partially loaded — when the
    /// magic or version line does not match, when the stamped topology
    /// family or parameter hash differs from `topology`'s, when the
    /// trailing checksum does not cover the body bytes, or when any
    /// line fails to parse.
    ///
    /// # Errors
    /// [`SnapshotError`] describing the first rejection reason.
    pub fn load<T: Topology + ?Sized>(
        topology: &T,
        path: &Path,
    ) -> Result<EmbeddingCache, SnapshotError> {
        let corrupt = |what: &str| SnapshotError::Corrupt(what.to_string());
        let text = std::fs::read_to_string(path).map_err(SnapshotError::Io)?;

        // Split off and verify the checksum line first: everything else
        // is only trustworthy if the body bytes are intact.
        let body_end = text
            .trim_end_matches('\n')
            .rfind('\n')
            .map(|idx| idx + 1)
            .ok_or_else(|| corrupt("snapshot has no checksum line"))?;
        let (body, trailer) = text.split_at(body_end);
        let stated = trailer
            .trim_end()
            .strip_prefix("checksum ")
            .ok_or_else(|| corrupt("last line is not a checksum"))?;
        let stated =
            u64::from_str_radix(stated, 16).map_err(|_| corrupt("unparseable checksum"))?;
        let mut h = Fnv::new();
        h.write_bytes(body.as_bytes());
        if h.finish() != stated {
            return Err(corrupt("checksum mismatch (truncated or edited snapshot)"));
        }

        let mut lines = body.lines();
        let header = lines.next().ok_or_else(|| corrupt("empty snapshot"))?;
        match header.strip_prefix(SNAPSHOT_MAGIC) {
            Some(version) if version == format!(" v{SNAPSHOT_VERSION}") => {}
            Some(version) => {
                return Err(SnapshotError::VersionMismatch {
                    found: version.trim().to_string(),
                })
            }
            None => return Err(corrupt("not an embedding-cache snapshot")),
        }
        let topo_line = lines
            .next()
            .and_then(|l| l.strip_prefix("topology "))
            .ok_or_else(|| corrupt("missing topology line"))?;
        let (family, hash) = topo_line
            .split_once(' ')
            .ok_or_else(|| corrupt("malformed topology line"))?;
        let hash =
            u64::from_str_radix(hash, 16).map_err(|_| corrupt("unparseable topology hash"))?;
        if family != topology.family() || hash != topology.parameter_hash() {
            return Err(SnapshotError::TopologyMismatch {
                expected: format!("{} {:016x}", topology.family(), topology.parameter_hash()),
                found: format!("{family} {hash:016x}"),
            });
        }
        let count: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("entries "))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| corrupt("missing or malformed entries line"))?;

        let mut map = HashMap::with_capacity(count);
        for _ in 0..count {
            let entry = lines
                .next()
                .and_then(|l| l.strip_prefix("entry "))
                .ok_or_else(|| corrupt("missing entry line"))?;
            let (key, num_vars) = entry
                .split_once(' ')
                .ok_or_else(|| corrupt("malformed entry line"))?;
            let key = u64::from_str_radix(key, 16).map_err(|_| corrupt("unparseable entry key"))?;
            let num_vars: usize = num_vars
                .parse()
                .map_err(|_| corrupt("unparseable chain count"))?;
            let mut chains = Vec::with_capacity(num_vars);
            for _ in 0..num_vars {
                let line = lines
                    .next()
                    .and_then(|l| l.strip_prefix("chain"))
                    .ok_or_else(|| corrupt("missing chain line"))?;
                let chain: Vec<usize> = line
                    .split_whitespace()
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .map_err(|_| corrupt("unparseable qubit index"))?;
                chains.push(chain);
            }
            map.insert(key, Embedding::from_chains(chains));
        }
        if lines.next().is_some() {
            return Err(corrupt("trailing data after the last entry"));
        }
        Ok(EmbeddingCache {
            entries: Mutex::new(map),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Embedding>> {
        // A poisoned mutex means another thread panicked mid-insert; the
        // map itself is always in a consistent state.
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{find_embedding_with_stats, Chimera, KingGraph, Pegasus, Zephyr};

    fn triangle() -> Vec<(usize, usize)> {
        vec![(0, 1), (1, 2), (0, 2)]
    }

    fn embed_triangle(
        cache: &EmbeddingCache,
        hw: &HardwareGraph,
        options: &EmbedOptions,
    ) -> (Embedding, EmbedStats) {
        cache
            .get_or_embed(&triangle(), 3, options, hw, || {
                find_embedding_with_stats(&triangle(), 3, hw, options)
            })
            .unwrap()
    }

    #[test]
    fn warm_lookup_is_a_hit_with_zero_route_iterations() {
        let hw = Chimera::new(2).graph();
        let options = EmbedOptions::default();
        let cache = EmbeddingCache::new();

        let (cold, cold_stats) = embed_triangle(&cache, &hw, &options);
        assert!(!cold_stats.cache_hit);
        assert!(cold_stats.route_iterations > 0);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let (warm, warm_stats) = embed_triangle(&cache, &hw, &options);
        assert!(warm_stats.cache_hit);
        assert_eq!(warm_stats.route_iterations, 0);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cold, warm, "hit returns the identical embedding");
        assert!(
            warm.validate(&triangle(), &hw),
            "cached embedding stays valid"
        );
    }

    #[test]
    fn key_distinguishes_problem_options_and_hardware() {
        let hw2 = Chimera::new(2).graph();
        let hw3 = Chimera::new(3).graph();
        let mut dropped = Chimera::new(2).graph();
        dropped.deactivate(0);
        let base = EmbedOptions::default();
        let key =
            |edges: &[(usize, usize)], n, o: &EmbedOptions, hw| embedding_key(edges, n, o, hw);

        let k0 = key(&triangle(), 3, &base, &hw2);
        // Edge order and duplicates do not matter.
        assert_eq!(k0, key(&[(2, 1), (0, 2), (1, 0), (1, 2)], 3, &base, &hw2));
        // Everything else does.
        assert_ne!(k0, key(&[(0, 1), (1, 2)], 3, &base, &hw2));
        assert_ne!(k0, key(&triangle(), 4, &base, &hw2));
        assert_ne!(
            k0,
            key(
                &triangle(),
                3,
                &EmbedOptions {
                    seed: 1,
                    ..base.clone()
                },
                &hw2
            )
        );
        assert_ne!(
            k0,
            key(
                &triangle(),
                3,
                &EmbedOptions {
                    rounds: 7,
                    ..base.clone()
                },
                &hw2
            )
        );
        assert_ne!(
            k0,
            key(
                &triangle(),
                3,
                &EmbedOptions {
                    parallel_restarts: true,
                    ..base.clone()
                },
                &hw2
            )
        );
        // Thread count is a wall-time knob, never a result knob: same key.
        assert_eq!(
            k0,
            key(
                &triangle(),
                3,
                &EmbedOptions {
                    restart_threads: 8,
                    ..base.clone()
                },
                &hw2
            )
        );
        assert_ne!(k0, key(&triangle(), 3, &base, &hw3));
        assert_ne!(k0, key(&triangle(), 3, &base, &dropped));

        // Topology-aware keys: the family/parameter hash separates
        // topologies even when their qubit counts are equal. A C4 has
        // 8·16 = 128 qubits; so does a √128-free king's graph? No — but
        // equal *node counts* are exactly what the plain hardware hash
        // could conflate if the edge sets also matched, so the guarantee
        // must come from the parameter hash, not the graph bytes.
        let c4 = Chimera::new(4);
        let king = KingGraph::new(11); // 121 vs 128 nodes: near-miss sizes
        let tk = |t: &dyn Topology, hw: &HardwareGraph| {
            topology_embedding_key(t, &triangle(), 3, &base, hw)
        };
        let c4_graph = c4.graph();
        let king_graph = king.graph();
        assert_ne!(tk(&c4, &c4_graph), tk(&king, &king_graph));
        // Same problem + same hardware bytes, different claimed family →
        // different key (the collision the satellite guards against).
        assert_ne!(tk(&c4, &c4_graph), tk(&king, &c4_graph));
        assert_ne!(
            tk(&Pegasus::new(4), &c4_graph),
            tk(&Zephyr::new(4), &c4_graph)
        );
        // And the topology-aware key still separates everything the
        // plain key separates.
        assert_ne!(tk(&c4, &c4_graph), tk(&Chimera::new(3), &c4_graph));
    }

    #[test]
    fn failures_are_not_cached() {
        let hw = Chimera::new(1).graph();
        let cache = EmbeddingCache::new();
        let options = EmbedOptions {
            tries: 1,
            rounds: 4,
            ..Default::default()
        };
        // K9 in one unit cell: impossible.
        let edges: Vec<(usize, usize)> = (0..9)
            .flat_map(|i| ((i + 1)..9).map(move |j| (i, j)))
            .collect();
        let attempt = |cache: &EmbeddingCache| {
            cache.get_or_embed(&edges, 9, &options, &hw, || {
                find_embedding_with_stats(&edges, 9, &hw, &options)
            })
        };
        assert!(attempt(&cache).is_err());
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        // Still a miss (not a poisoned hit) the second time.
        assert!(attempt(&cache).is_err());
    }

    #[test]
    fn stats_snapshot_matches_individual_accessors_at_quiescence() {
        let hw = Chimera::new(2).graph();
        let options = EmbedOptions::default();
        let cache = EmbeddingCache::new();
        embed_triangle(&cache, &hw, &options);
        embed_triangle(&cache, &hw, &options);
        let stats = cache.stats();
        assert_eq!(
            stats,
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
        assert_eq!(stats.lookups(), 2);
        assert_eq!(
            (stats.hits, stats.misses, stats.entries),
            (cache.hits(), cache.misses(), cache.len())
        );
    }

    #[test]
    fn concurrent_hammer_loses_no_counter_updates() {
        // The engine fans workers out over one shared cache; this is the
        // lost-update regression test. 8 threads × 24 lookups over 4
        // distinct keys: every lookup must be accounted as exactly one
        // hit or miss, every key must end up cached, and mid-flight
        // stats() snapshots must never observe entries the miss counter
        // cannot explain.
        let hw = Chimera::new(2).graph();
        let cache = EmbeddingCache::new();
        let threads = 8usize;
        let iterations = 24usize;
        let keys = 4u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                let hw = &hw;
                scope.spawn(move || {
                    for i in 0..iterations {
                        // Distinct EmbedOptions seeds are distinct cache
                        // keys; rotate so every thread touches every key.
                        let options = EmbedOptions {
                            seed: (t + i) as u64 % keys,
                            ..Default::default()
                        };
                        let (embedding, _) = cache
                            .get_or_embed(&triangle(), 3, &options, hw, || {
                                find_embedding_with_stats(&triangle(), 3, hw, &options)
                            })
                            .expect("triangle embeds");
                        assert!(embedding.validate(&triangle(), hw));
                        let stats = cache.stats();
                        assert!(
                            stats.entries <= stats.misses,
                            "entry without a recorded miss: {stats:?}"
                        );
                        assert!(
                            stats.lookups() <= threads * iterations,
                            "over-counted lookups: {stats:?}"
                        );
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            stats.lookups(),
            threads * iterations,
            "lost a counter update: {stats:?}"
        );
        assert_eq!(stats.entries, keys as usize, "every key cached once");
        // Duplicated work on racing first lookups is allowed (misses may
        // exceed entries) but each key misses at least once.
        assert!(stats.misses >= keys as usize);
        assert_eq!(stats.hits, threads * iterations - stats.misses);
    }

    #[test]
    fn concurrent_hammer_across_mixed_topologies() {
        // Same shape as the single-topology hammer, but the 8 threads
        // rotate over *topologies* instead of seeds: one triangle, one
        // option set, four families of similar scale. Every
        // (topology, hardware) pair must get exactly one entry and the
        // counters must balance — a cross-family key collision would
        // surface as a missing entry (two families sharing one) or as a
        // validate() failure (a chain of foreign qubit indices).
        let topologies: Vec<(Box<dyn Topology + Sync>, HardwareGraph)> = vec![
            (Box::new(Chimera::new(2)), Chimera::new(2).graph()),
            (Box::new(Pegasus::new(2)), Pegasus::new(2).graph()),
            (Box::new(Zephyr::new(2)), Zephyr::new(2).graph()),
            (Box::new(KingGraph::new(4)), KingGraph::new(4).graph()),
        ];
        let cache = EmbeddingCache::new();
        let threads = 8usize;
        let iterations = 24usize;
        let options = EmbedOptions::default();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                let topologies = &topologies;
                let options = &options;
                scope.spawn(move || {
                    for i in 0..iterations {
                        let (topology, hw) = &topologies[(t + i) % topologies.len()];
                        let (embedding, _) = cache
                            .get_or_embed_on(topology.as_ref(), &triangle(), 3, options, hw, || {
                                find_embedding_with_stats(&triangle(), 3, hw, options)
                            })
                            .expect("triangle embeds on every family");
                        assert!(
                            embedding.validate(&triangle(), hw),
                            "cached chain must be valid on its own topology"
                        );
                        let stats = cache.stats();
                        assert!(stats.entries <= stats.misses, "{stats:?}");
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.lookups(), threads * iterations);
        assert_eq!(
            stats.entries,
            topologies.len(),
            "one entry per topology — no cross-family collisions: {stats:?}"
        );
        assert!(stats.misses >= topologies.len());
        assert_eq!(stats.hits, threads * iterations - stats.misses);
    }

    #[test]
    fn lookups_emit_generic_counters_and_flight_events() {
        // The PR 7 satellite: alongside the qac_embed_* names, every
        // lookup bumps the generic qac_cache_hit/miss_total counters
        // (labeled by topology family + unlabeled aggregate) and leaves
        // a CacheHit/CacheMiss flight event under the active trace.
        use qac_telemetry::{FlightKind, TraceId, TraceScope};
        let telemetry = qac_telemetry::global();
        telemetry.enable();
        let labeled_hit =
            qac_telemetry::metrics::labeled("qac_cache_hit_total", &[("topology", "king")]);
        let counters = || {
            let m = telemetry.metrics();
            (
                m.counter("qac_cache_hit_total"),
                m.counter("qac_cache_miss_total"),
                m.counter(&labeled_hit),
            )
        };
        let before = counters();

        let king = KingGraph::new(4);
        let hw = king.graph();
        let options = EmbedOptions::default();
        let cache = EmbeddingCache::new();
        let trace = TraceId::fresh();
        {
            let _scope = TraceScope::enter(trace);
            for _ in 0..2 {
                cache
                    .get_or_embed_on(&king, &triangle(), 3, &options, &hw, || {
                        find_embedding_with_stats(&triangle(), 3, &hw, &options)
                    })
                    .expect("triangle embeds on a king graph");
            }
        }

        let after = counters();
        assert_eq!(after.0, before.0 + 1, "one generic hit");
        assert_eq!(after.1, before.1 + 1, "one generic miss");
        assert_eq!(after.2, before.2 + 1, "one king-labeled hit");

        let kinds: Vec<FlightKind> = qac_telemetry::global_flight()
            .events_for(trace)
            .iter()
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            kinds,
            [FlightKind::CacheMiss, FlightKind::CacheHit],
            "miss then hit, both under the job's trace id"
        );
        for event in qac_telemetry::global_flight().events_for(trace) {
            assert_eq!(event.name, "king");
        }
    }

    #[test]
    fn incremental_lookup_hits_then_repairs_then_hits() {
        let hw = Chimera::new(2).graph();
        let options = EmbedOptions::default();
        let cache = EmbeddingCache::new();
        let old_edges = triangle();
        let (prev, _) = embed_triangle(&cache, &hw, &options);

        // Same problem again, routed incrementally: the key matches, so
        // this is a pure hit — no repair runs.
        let (hit, stats) = cache
            .get_or_embed_incremental(&old_edges, 3, &options, &hw, &prev, &[false; 3])
            .unwrap();
        assert!(stats.cache_hit);
        assert_eq!(hit, prev);

        // An edited problem misses and repairs the seed: variable 3 is
        // new, variable 2's adjacency changed, 0 and 1 are clean.
        let new_edges = vec![(0, 1), (1, 2), (0, 2), (2, 3)];
        // A comparable 4-var seed (from a real route) so the repair
        // path, not the incomparable-seed fallback, is exercised.
        let (seed4, _) = find_embedding_with_stats(&new_edges, 4, &hw, &options).unwrap();
        let dirty = [false, false, true, true];
        let (warm, warm_stats) = cache
            .get_or_embed_incremental(&new_edges, 4, &options, &hw, &seed4, &dirty)
            .unwrap();
        assert!(!warm_stats.cache_hit);
        assert!(warm.validate(&new_edges, &hw));
        assert_eq!(warm.chain(0), seed4.chain(0), "clean chain reused");
        assert_eq!(warm.chain(1), seed4.chain(1), "clean chain reused");

        // The repaired embedding was stored under the new key.
        let (again, again_stats) = cache
            .get_or_embed_incremental(&new_edges, 4, &options, &hw, &seed4, &dirty)
            .unwrap();
        assert!(again_stats.cache_hit);
        assert_eq!(again, warm);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn snapshot_roundtrip_restores_every_entry() {
        let dir = std::env::temp_dir().join("qac-cache-snapshot-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.qacsnap");
        let chimera = Chimera::new(2);
        let hw = chimera.graph();
        let cache = EmbeddingCache::new();
        // Two entries: different seeds, different keys.
        for seed in [0u64, 1] {
            let options = EmbedOptions {
                seed,
                ..Default::default()
            };
            embed_triangle(&cache, &hw, &options);
        }
        cache.save(&chimera, &path).unwrap();

        let loaded = EmbeddingCache::load(&chimera, &path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.stats().lookups(), 0, "counters start fresh");
        // Every restored entry answers as a hit with the original chains.
        for seed in [0u64, 1] {
            let options = EmbedOptions {
                seed,
                ..Default::default()
            };
            let (original, _) = embed_triangle(&cache, &hw, &options);
            let (restored, stats) = embed_triangle(&loaded, &hw, &options);
            assert!(stats.cache_hit, "seed {seed} must be pre-warmed");
            assert_eq!(restored, original);
            assert!(restored.validate(&triangle(), &hw));
        }
        // Saving the loaded cache reproduces the file byte-for-byte.
        let copy = dir.join("cache2.qacsnap");
        loaded.save(&chimera, &copy).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&copy).unwrap(),
            "snapshots are canonical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_rejects_corruption_version_and_topology_mismatch() {
        let dir = std::env::temp_dir().join("qac-cache-snapshot-reject");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.qacsnap");
        let chimera = Chimera::new(2);
        let hw = chimera.graph();
        let cache = EmbeddingCache::new();
        embed_triangle(&cache, &hw, &EmbedOptions::default());
        cache.save(&chimera, &path).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();

        let reject = |contents: &str| {
            let bad = dir.join("bad.qacsnap");
            std::fs::write(&bad, contents).unwrap();
            EmbeddingCache::load(&chimera, &bad)
        };

        // Any body edit breaks the checksum.
        assert!(matches!(
            reject(&good.replace("entries 1", "entries 2")),
            Err(SnapshotError::Corrupt(_))
        ));
        // Truncation loses the checksum line's coverage.
        let truncated = &good[..good.len() / 2];
        assert!(matches!(reject(truncated), Err(SnapshotError::Corrupt(_))));
        // Garbage is not a snapshot at all.
        assert!(matches!(
            reject("not a snapshot\n"),
            Err(SnapshotError::Corrupt(_))
        ));
        // A future version is rejected even with a valid checksum.
        let mut future = good.replace(" v1\n", " v2\n");
        let body_end = future.trim_end_matches('\n').rfind('\n').unwrap() + 1;
        future.truncate(body_end);
        let mut h = Fnv::new();
        h.write_bytes(future.as_bytes());
        future.push_str(&format!("checksum {:016x}\n", h.finish()));
        assert!(matches!(
            reject(&future),
            Err(SnapshotError::VersionMismatch { found }) if found == "v2"
        ));
        // A snapshot saved for one topology never loads on another.
        assert!(matches!(
            EmbeddingCache::load(&Chimera::new(3), &path),
            Err(SnapshotError::TopologyMismatch { .. })
        ));
        assert!(matches!(
            EmbeddingCache::load(&KingGraph::new(4), &path),
            Err(SnapshotError::TopologyMismatch { .. })
        ));
        // A missing file surfaces the I/O error.
        assert!(matches!(
            EmbeddingCache::load(&chimera, &dir.join("absent.qacsnap")),
            Err(SnapshotError::Io(_))
        ));
        // And the untouched file still loads.
        assert!(EmbeddingCache::load(&chimera, &path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clear_forces_recomputation() {
        let hw = Chimera::new(2).graph();
        let options = EmbedOptions::default();
        let cache = EmbeddingCache::new();
        embed_triangle(&cache, &hw, &options);
        cache.clear();
        let (_, stats) = embed_triangle(&cache, &hw, &options);
        assert!(!stats.cache_hit);
        assert_eq!(cache.misses(), 2);
    }
}
