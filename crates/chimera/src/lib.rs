//! The D-Wave Chimera hardware topology and minor embedding.
//!
//! "The most severe hardware limitation in practice is that the on-chip
//! network lacks all-to-all connectivity" (paper §2). This crate models
//! that limitation and the compiler's answer to it:
//!
//! * [`Chimera`] — the Chimera graph `C_m`: an m×m mesh of 8-qubit
//!   bipartite unit cells (Figure 1), with optional qubit drop-out;
//! * [`Topology`] — the pluggable hardware-family trait [`Chimera`]
//!   implements, alongside [`Pegasus`], [`Zephyr`], and [`KingGraph`]
//!   (with [`TopologySpec`] as the value-level choice options carry);
//! * [`find_embedding`] — a randomized minor-embedding heuristic in the
//!   style of Cai–Macready–Roy (the SAPI algorithm the paper uses, §4.4),
//!   mapping each logical variable to a connected *chain* of physical
//!   qubits;
//! * [`embed_ising`] / [`unembed`] — applying an embedding to a logical
//!   Ising model (distributing `h` over chains, placing `J` on physical
//!   couplers, adding ferromagnetic intra-chain couplings) and decoding
//!   physical samples back through majority vote.
//!
//! # Example
//!
//! ```
//! use qac_chimera::{Chimera, find_embedding, EmbedOptions};
//!
//! // Embed a triangle (which needs a chain: Chimera has no odd cycles).
//! let hw = Chimera::new(2).graph();
//! let edges = [(0, 1), (1, 2), (0, 2)];
//! let embedding = find_embedding(&edges, 3, &hw, &EmbedOptions::default()).unwrap();
//! assert!(embedding.num_physical_qubits() >= 4); // ≥ one chain of 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod cache;
mod chimera;
mod embed;
mod graph;
mod topology;
mod witness;

pub use apply::{
    choose_chain_strength, embed_ising, neighborhood_weights, unembed, ChainBreakStats,
    EmbeddedIsing,
};
pub use cache::{embedding_key, topology_embedding_key, CacheStats, EmbeddingCache, SnapshotError};
pub use chimera::Chimera;
pub use embed::{
    find_embedding, find_embedding_incremental, find_embedding_or_clique,
    find_embedding_or_clique_with_stats, find_embedding_portfolio, find_embedding_with_stats,
    restart_seed, EmbedError, EmbedOptions, EmbedStats, Embedding,
};
pub use graph::{CsrNeighbors, HardwareGraph};
pub use witness::{chain_strength_bound, contraction_witness, ChainWitness};

pub use topology::{
    topology_parameter_hash, KingGraph, Pegasus, Topology, TopologySpec, Zephyr, ADVANTAGE_RANGE,
};
