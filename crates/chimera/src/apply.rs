//! Applying a minor embedding to an Ising model, and decoding physical
//! samples back to logical variables.
//!
//! This is the paper's §4.4 transformation: logical `H_log` becomes
//! physical `H_phys` by splitting each variable across its chain,
//! distributing linear coefficients over chain members, placing each
//! logical coupling on the physical couplers that connect the two chains,
//! and adding strong ferromagnetic intra-chain couplings so the chain
//! acts as one variable.

use qac_pbf::{Ising, Spin};

use crate::{Embedding, HardwareGraph};

/// The chain strength the embedding path uses when none is given
/// explicitly: twice the largest scaled |J| (at least 1), clamped so the
/// intra-chain coupling `−strength` still fits the hardware's J range
/// (`j_min` is the most negative allowed coupling, e.g. −2 on a 2000Q).
///
/// This is the single source of truth shared by the D-Wave simulator's
/// run path and the static chain-strength analysis pass, so the
/// analyzer checks exactly the strength the embedder will apply.
pub fn choose_chain_strength(explicit: Option<f64>, scaled_max_abs_j: f64, j_min: f64) -> f64 {
    explicit
        .unwrap_or_else(|| (2.0 * scaled_max_abs_j).max(1.0))
        .min(-j_min)
}

/// Per-variable neighborhood weight `W_v = |h_v| + Σ_u |J_vu|` — the
/// most energy flipping `v` alone can ever recover. A chain coupling of
/// strength `S ≥ W_v` therefore guarantees no broken chain of `v`
/// undercuts an intact ground state, which is the static sufficiency
/// bound the analyzer checks.
pub fn neighborhood_weights(model: &Ising) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..model.num_vars()).map(|v| model.h(v).abs()).collect();
    for t in model.j_iter() {
        weights[t.i] += t.value.abs();
        weights[t.j] += t.value.abs();
    }
    weights
}

/// A physical (embedded) Ising model together with its provenance.
#[derive(Debug, Clone)]
pub struct EmbeddedIsing {
    /// The physical Hamiltonian over hardware qubit indices.
    pub physical: Ising,
    /// The embedding used.
    pub embedding: Embedding,
    /// The chain coupling strength that was applied.
    pub chain_strength: f64,
    /// Number of logical variables.
    pub num_logical: usize,
}

/// Chain-break statistics for one decoded sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainBreakStats {
    /// Chains whose qubits disagreed (resolved by majority vote).
    pub broken: usize,
    /// Total chains.
    pub total: usize,
}

impl ChainBreakStats {
    /// Fraction of chains broken (0 for an empty embedding).
    pub fn break_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.broken as f64 / self.total as f64
        }
    }
}

/// Embeds `logical` through `embedding` onto `hardware`.
///
/// * Each `hᵥ` is split evenly over the chain of `v`.
/// * Each `J_{u,v}` is split evenly over all physical couplers joining the
///   two chains.
/// * Every intra-chain coupler receives `−chain_strength`.
///
/// # Panics
/// Panics if the embedding does not cover all model variables or a
/// logical coupling has no physical coupler between its chains (i.e. the
/// embedding is invalid for this model).
pub fn embed_ising(
    logical: &Ising,
    embedding: &Embedding,
    hardware: &HardwareGraph,
    chain_strength: f64,
) -> EmbeddedIsing {
    assert!(
        embedding.num_vars() >= logical.num_vars(),
        "embedding covers {} of {} variables",
        embedding.num_vars(),
        logical.num_vars()
    );
    let mut physical = Ising::new(hardware.num_nodes());
    physical.add_offset(logical.offset());

    // Chains are pairwise disjoint in a valid embedding, so one flat
    // qubit → owning-variable array answers "which chain is this
    // neighbor in?" with a single load. That replaces the pairwise
    // `has_edge` scans — O(|chain_a|·|chain_b|) ordered-set probes per
    // logical coupling, quadratic in chain length — with one walk of
    // each chain member's hardware neighbor list.
    const NO_OWNER: u32 = u32::MAX;
    let mut owner = vec![NO_OWNER; hardware.num_nodes()];
    for (v, chain) in embedding.chains().iter().enumerate() {
        for &q in chain {
            debug_assert_eq!(owner[q], NO_OWNER, "chains must be disjoint");
            owner[q] = v as u32;
        }
    }

    // Linear terms: split over the chain.
    for (v, h) in logical.h_iter() {
        if h == 0.0 {
            continue;
        }
        let chain = embedding.chain(v);
        assert!(!chain.is_empty(), "variable {v} has an empty chain");
        let share = h / chain.len() as f64;
        for &q in chain {
            physical.add_h(q, share);
        }
    }

    // Quadratic terms: split over the connecting couplers.
    for t in logical.j_iter() {
        if t.value == 0.0 {
            continue;
        }
        let chain_a = embedding.chain(t.i);
        let want = t.j as u32;
        let mut couplers = Vec::new();
        for &a in chain_a {
            for &b in hardware.neighbors(a) {
                if owner[b] == want {
                    couplers.push((a, b));
                }
            }
        }
        assert!(
            !couplers.is_empty(),
            "no physical coupler between chains of {} and {}",
            t.i,
            t.j
        );
        let share = t.value / couplers.len() as f64;
        for (a, b) in couplers {
            physical.add_j(a, b, share);
        }
    }

    // Intra-chain ferromagnetic couplings on every available coupler.
    // `b > a` visits each undirected intra-chain edge exactly once.
    for (v, chain) in embedding.chains().iter().enumerate() {
        for &a in chain {
            for &b in hardware.neighbors(a) {
                if b > a && owner[b] == v as u32 {
                    physical.add_j(a, b, -chain_strength);
                }
            }
        }
    }

    EmbeddedIsing {
        physical,
        embedding: embedding.clone(),
        chain_strength,
        num_logical: logical.num_vars(),
    }
}

impl EmbeddedIsing {
    /// Decodes a physical sample to logical spins by majority vote over
    /// each chain (ties resolve down).
    pub fn unembed(&self, physical_spins: &[Spin]) -> (Vec<Spin>, ChainBreakStats) {
        unembed_with(&self.embedding, self.num_logical, physical_spins)
    }
}

/// Majority-vote decoding of a physical sample through `embedding`,
/// producing `num_logical` logical spins.
///
/// # Panics
/// Panics if a chain references a qubit outside `physical_spins`.
pub fn unembed(
    embedding: &Embedding,
    num_logical: usize,
    physical_spins: &[Spin],
) -> (Vec<Spin>, ChainBreakStats) {
    unembed_with(embedding, num_logical, physical_spins)
}

fn unembed_with(
    embedding: &Embedding,
    num_logical: usize,
    physical_spins: &[Spin],
) -> (Vec<Spin>, ChainBreakStats) {
    let mut logical = Vec::with_capacity(num_logical);
    let mut stats = ChainBreakStats {
        broken: 0,
        total: num_logical,
    };
    for v in 0..num_logical {
        let chain = embedding.chain(v);
        let ups = chain
            .iter()
            .filter(|&&q| physical_spins[q] == Spin::Up)
            .count();
        let downs = chain.len() - ups;
        if ups > 0 && downs > 0 {
            stats.broken += 1;
        }
        logical.push(if ups > downs { Spin::Up } else { Spin::Down });
    }
    (logical, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{find_embedding, Chimera, EmbedOptions};
    use qac_pbf::bits_to_spins;

    /// Exhaustively minimizes a (small) Ising model.
    fn ground_states(model: &Ising, over: &[usize]) -> (f64, Vec<Vec<Spin>>) {
        // `over` lists the variable indices that actually matter; others
        // are fixed Down.
        let mut best = f64::INFINITY;
        let mut minima = Vec::new();
        let k = over.len();
        for idx in 0..(1u64 << k) {
            let bits = bits_to_spins(idx, k);
            let mut spins = vec![Spin::Down; model.num_vars()];
            for (pos, &var) in over.iter().enumerate() {
                spins[var] = bits[pos];
            }
            let e = model.energy(&spins);
            if e < best - 1e-9 {
                best = e;
                minima = vec![spins];
            } else if (e - best).abs() <= 1e-9 {
                minima.push(spins);
            }
        }
        (best, minima)
    }

    #[test]
    fn embedded_triangle_preserves_ground_states() {
        // Frustration-free triangle: h biases everything up.
        let mut logical = Ising::new(3);
        logical.add_h(0, -1.0);
        logical.add_j(0, 1, -1.0);
        logical.add_j(1, 2, -1.0);
        logical.add_j(0, 2, -1.0);
        let hw = Chimera::new(2).graph();
        let edges = [(0, 1), (1, 2), (0, 2)];
        let embedding = find_embedding(&edges, 3, &hw, &EmbedOptions::default()).unwrap();
        let embedded = embed_ising(&logical, &embedding, &hw, 4.0);

        // Enumerate over used qubits only.
        let used: Vec<usize> = embedding.chains().iter().flatten().copied().collect();
        let (_, minima) = ground_states(&embedded.physical, &used);
        assert!(!minima.is_empty());
        for phys in &minima {
            let (logical_spins, stats) = embedded.unembed(phys);
            assert_eq!(stats.broken, 0, "ground states should have intact chains");
            assert_eq!(logical_spins, vec![Spin::Up; 3]);
        }
    }

    #[test]
    fn chain_break_detection() {
        let hw = Chimera::new(1).graph();
        let edges = [(0, 1), (1, 2), (0, 2)];
        let embedding = find_embedding(&edges, 3, &hw, &EmbedOptions::default()).unwrap();
        // Find a chained variable and flip half its qubits.
        let chained = (0..3).find(|&v| embedding.chain(v).len() >= 2).unwrap();
        let mut phys = vec![Spin::Down; hw.num_nodes()];
        phys[embedding.chain(chained)[0]] = Spin::Up;
        let (_, stats) = unembed(&embedding, 3, &phys);
        assert_eq!(stats.broken, 1);
        assert!(stats.break_fraction() > 0.0);
    }

    #[test]
    fn h_distribution_preserves_total() {
        let mut logical = Ising::new(2);
        logical.add_h(0, 1.5);
        logical.add_j(0, 1, -0.5);
        let hw = Chimera::new(2).graph();
        let embedding = find_embedding(&[(0, 1)], 2, &hw, &EmbedOptions::default()).unwrap();
        let embedded = embed_ising(&logical, &embedding, &hw, 2.0);
        let total_h: f64 = embedded.physical.h_iter().map(|(_, h)| h).sum();
        assert!((total_h - 1.5).abs() < 1e-12);
        // Total inter-chain J preserved.
        let chain0 = embedding.chain(0);
        let inter: f64 = embedded
            .physical
            .j_iter()
            .filter(|t| chain0.contains(&t.i) != chain0.contains(&t.j))
            .map(|t| t.value)
            .sum();
        assert!((inter - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn owner_array_matches_pairwise_has_edge_reference() {
        // The owner-array fast path must place exactly the couplers the
        // original pairwise `has_edge` scans found, with the same
        // shares. Compare against a direct reference on a workload
        // whose chains are long enough to have internal couplers.
        let mut logical = Ising::new(5);
        for v in 0..5 {
            logical.add_h(v, 0.3 * (v as f64 + 1.0));
            for u in (v + 1)..5 {
                logical.add_j(v, u, if (v + u) % 2 == 0 { -0.8 } else { 0.6 });
            }
        }
        let hw = Chimera::new(3).graph();
        let edges: Vec<(usize, usize)> = logical.j_iter().map(|t| (t.i, t.j)).collect();
        let embedding = find_embedding(&edges, 5, &hw, &EmbedOptions::default()).unwrap();
        assert!(
            embedding.chains().iter().any(|c| c.len() >= 2),
            "K5 on Chimera needs at least one multi-qubit chain"
        );
        let embedded = embed_ising(&logical, &embedding, &hw, 3.0);

        let mut reference = Ising::new(hw.num_nodes());
        reference.add_offset(logical.offset());
        for (v, h) in logical.h_iter() {
            let chain = embedding.chain(v);
            for &q in chain {
                reference.add_h(q, h / chain.len() as f64);
            }
        }
        for t in logical.j_iter() {
            let mut couplers = Vec::new();
            for &a in embedding.chain(t.i) {
                for &b in embedding.chain(t.j) {
                    if hw.has_edge(a, b) {
                        couplers.push((a, b));
                    }
                }
            }
            for &(a, b) in &couplers {
                reference.add_j(a, b, t.value / couplers.len() as f64);
            }
        }
        for chain in embedding.chains() {
            for (idx, &a) in chain.iter().enumerate() {
                for &b in &chain[idx + 1..] {
                    if hw.has_edge(a, b) {
                        reference.add_j(a, b, -3.0);
                    }
                }
            }
        }
        assert_eq!(embedded.physical, reference);
    }

    #[test]
    fn chain_strength_formula() {
        // Explicit values pass through but still clamp to the J range.
        assert_eq!(choose_chain_strength(Some(1.5), 9.0, -2.0), 1.5);
        assert_eq!(choose_chain_strength(Some(5.0), 9.0, -2.0), 2.0);
        // Derived: 2·max|J| with a floor of 1, clamped at −j_min.
        assert_eq!(choose_chain_strength(None, 0.75, -2.0), 1.5);
        assert_eq!(choose_chain_strength(None, 0.1, -2.0), 1.0);
        assert_eq!(choose_chain_strength(None, 3.0, -2.0), 2.0);
    }

    #[test]
    fn neighborhood_weights_sum_h_and_j_magnitudes() {
        let mut m = Ising::new(4);
        m.add_h(0, -0.5);
        m.add_j(0, 1, 1.0);
        m.add_j(0, 2, -0.25);
        m.add_j(1, 2, 0.5);
        let w = neighborhood_weights(&m);
        assert_eq!(w, vec![0.5 + 1.0 + 0.25, 1.0 + 0.5, 0.25 + 0.5, 0.0]);
    }

    #[test]
    fn offset_carried_through() {
        let mut logical = Ising::new(1);
        logical.add_h(0, 1.0);
        logical.add_offset(2.5);
        let hw = Chimera::new(1).graph();
        let embedding = find_embedding(&[], 1, &hw, &EmbedOptions::default()).unwrap();
        let embedded = embed_ising(&logical, &embedding, &hw, 1.0);
        assert_eq!(embedded.physical.offset(), 2.5);
    }
}
