//! Pluggable hardware topologies.
//!
//! The paper targets one machine — a D-Wave 2000Q, whose working graph is
//! a Chimera C16 — but nothing in the compile/embed/sample pipeline is
//! specific to that family: the router works on any [`HardwareGraph`],
//! chain strengths depend only on the coupler range, and the cache keys
//! on the (problem, options, hardware) triple. [`Topology`] captures the
//! family-specific parts behind one trait so the pipeline can run on
//! Chimera, Pegasus (D-Wave Advantage), Zephyr (Advantage2), or a
//! king's-graph lattice (CMOS-annealer style) without naming any of them
//! concretely.
//!
//! What a family provides:
//!
//! * identity — [`Topology::family`] and [`Topology::parameter_hash`],
//!   the canonical hash that keeps cache keys from colliding across
//!   families even when qubit counts (or whole graphs) coincide;
//! * shape — [`Topology::num_qubits`], [`Topology::graph`], and a
//!   human-readable coordinate scheme for diagnostics;
//! * embedding hooks — an optional native clique template
//!   ([`Topology::clique_embedding`], default `None`: families without a
//!   deterministic template fall back to the CSR router rather than
//!   silently borrowing Chimera's);
//! * physics — the coefficient range the hardware accepts
//!   ([`Topology::coefficient_range`]) and the default chain-strength
//!   rule derived from it ([`Topology::chain_strength`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qac_pbf::scale::CoefficientRange;

use crate::cache::Fnv;
use crate::{Chimera, Embedding, HardwareGraph};

/// A hardware graph family the pipeline can target.
///
/// Implementations must be deterministic: two instances with equal
/// parameters must produce byte-identical graphs and equal
/// [`parameter_hash`](Topology::parameter_hash) values across runs and
/// platforms (the hash feeds persistent cache keys).
pub trait Topology {
    /// The family name, lowercase and stable (`"chimera"`, `"pegasus"`,
    /// `"zephyr"`, `"king"`). Used as the `topology` label on metrics.
    fn family(&self) -> &'static str;

    /// Canonical FNV-1a hash over the family name and every size
    /// parameter. Distinct families hash differently even when their
    /// graphs coincide, so cache keys never collide across topologies.
    fn parameter_hash(&self) -> u64;

    /// Total number of qubits (nodes of [`graph`](Topology::graph)).
    fn num_qubits(&self) -> usize;

    /// A one-line description of the coordinate scheme, e.g.
    /// `"(row, col, partition, k)"`.
    fn coordinate_scheme(&self) -> &'static str;

    /// The coordinates of a linear qubit index, rendered in the scheme of
    /// [`coordinate_scheme`](Topology::coordinate_scheme).
    fn coordinate_label(&self, qubit: usize) -> String;

    /// Builds the full hardware graph (every qubit active).
    fn graph(&self) -> HardwareGraph;

    /// A deterministic native clique-embedding template for `K_n`, when
    /// the family has one (Chimera's triangle template). The default is
    /// `None`: the caller falls back to the randomized CSR router, never
    /// to another family's template.
    fn clique_embedding(&self, _n: usize) -> Option<Embedding> {
        None
    }

    /// The coefficient range the hardware accepts.
    fn coefficient_range(&self) -> CoefficientRange {
        CoefficientRange::DWAVE_2000Q
    }

    /// The chain strength the embedding path applies: the shared
    /// [`choose_chain_strength`](crate::choose_chain_strength) rule fed
    /// with this family's `j_min`, so the intra-chain coupling always
    /// fits the hardware range.
    fn chain_strength(&self, explicit: Option<f64>, scaled_max_abs_j: f64) -> f64 {
        crate::choose_chain_strength(explicit, scaled_max_abs_j, self.coefficient_range().j_min)
    }

    /// The hardware graph with a random `fraction` of qubits deactivated
    /// (deterministic under `seed`), modeling fabrication drop-out. Same
    /// per-qubit Bernoulli stream for every family.
    ///
    /// # Panics
    /// Panics if `fraction` is not within `[0, 1)`.
    fn graph_with_dropout(&self, fraction: f64, seed: u64) -> HardwareGraph {
        assert!((0.0..1.0).contains(&fraction), "fraction in [0,1)");
        let mut g = self.graph();
        let mut rng = StdRng::seed_from_u64(seed);
        for q in 0..self.num_qubits() {
            if rng.gen::<f64>() < fraction {
                g.deactivate(q);
            }
        }
        g
    }
}

/// Canonical FNV-1a hash of a family name plus its size parameters — the
/// standard way to implement [`Topology::parameter_hash`].
pub fn topology_parameter_hash(family: &str, params: &[u64]) -> u64 {
    let mut h = Fnv::new();
    h.write_bytes(family.as_bytes());
    h.write_usize(params.len());
    for &p in params {
        h.write_u64(p);
    }
    h.finish()
}

/// The coefficient range of a D-Wave Advantage-generation machine:
/// `h ∈ [−4, 4]`, `J ∈ [−2, 1]` (Pegasus and Zephyr fabrics widen the
/// linear range; the coupler asymmetry persists).
pub const ADVANTAGE_RANGE: CoefficientRange = CoefficientRange {
    h_min: -4.0,
    h_max: 4.0,
    j_min: -2.0,
    j_max: 1.0,
};

impl Topology for Chimera {
    fn family(&self) -> &'static str {
        "chimera"
    }

    fn parameter_hash(&self) -> u64 {
        topology_parameter_hash("chimera", &[self.size() as u64])
    }

    fn num_qubits(&self) -> usize {
        Chimera::num_qubits(self)
    }

    fn coordinate_scheme(&self) -> &'static str {
        "(row, col, partition, k)"
    }

    fn coordinate_label(&self, qubit: usize) -> String {
        let (row, col, partition, k) = self.coordinates(qubit);
        format!("({row}, {col}, {partition}, {k})")
    }

    fn graph(&self) -> HardwareGraph {
        Chimera::graph(self)
    }

    fn clique_embedding(&self, n: usize) -> Option<Embedding> {
        Chimera::clique_embedding(self, n)
    }

    // coefficient_range: the default DWAVE_2000Q is exactly the 2000Q's
    // range, and graph_with_dropout's provided body reproduces the
    // inherent method bit-for-bit (same per-qubit StdRng stream).
}

/// Per-cell coupler offsets of the Pegasus fabric (the `k → shifted
/// crossing` map D-Wave publishes for P_m; both orientations share it).
const PEGASUS_OFFSETS: [usize; 12] = [2, 2, 2, 2, 6, 6, 6, 6, 10, 10, 10, 10];

/// A `P_m` Pegasus topology (D-Wave Advantage fabric): `24m(m−1)` qubits
/// of degree ≤ 15.
///
/// Coordinates `(u, w, k, z)`: `u ∈ {0, 1}` the orientation (vertical /
/// horizontal), `w ∈ [0, m)` the perpendicular offset, `k ∈ [0, 12)` the
/// track, `z ∈ [0, m−1)` the position along the wire. Linear index
/// `((u·m + w)·12 + k)·(m−1) + z`.
///
/// Couplers: *external* `z ~ z+1` along a wire, *odd* `2j ~ 2j+1` between
/// track pairs, and twelve *internal* crossings per qubit determined by
/// [`PEGASUS_OFFSETS`]. A P16 has 5760 nominal qubits (the Advantage
/// fabric); the `8(m−1)` boundary wires whose crossings all fall off the
/// fabric (tracks 0–1 at `w = 0`, tracks 10–11 at `w = m−1`) carry no
/// internal couplers and are deactivated in [`Pegasus::graph`], exactly
/// as D-Wave trims them (P16: 5640 working qubits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pegasus {
    m: usize,
}

impl Pegasus {
    /// A `P_m` topology.
    ///
    /// # Panics
    /// Panics if `m < 2` (a P1 has no z positions).
    pub fn new(m: usize) -> Pegasus {
        assert!(m >= 2, "Pegasus size must be at least 2");
        Pegasus { m }
    }

    /// The D-Wave Advantage fabric: P16, nominally 5760 qubits.
    pub fn advantage() -> Pegasus {
        Pegasus::new(16)
    }

    /// Fabric size m.
    pub fn size(&self) -> usize {
        self.m
    }

    /// Total qubits, `24m(m−1)`.
    pub fn num_qubits(&self) -> usize {
        24 * self.m * (self.m - 1)
    }

    /// The linear index of a qubit.
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn qubit(&self, u: usize, w: usize, k: usize, z: usize) -> usize {
        assert!(u < 2 && w < self.m && k < 12 && z < self.m - 1);
        ((u * self.m + w) * 12 + k) * (self.m - 1) + z
    }

    /// The `(u, w, k, z)` coordinates of a linear index.
    pub fn coordinates(&self, qubit: usize) -> (usize, usize, usize, usize) {
        let z = qubit % (self.m - 1);
        let rest = qubit / (self.m - 1);
        let k = rest % 12;
        let rest = rest / 12;
        (rest / self.m, rest % self.m, k, z)
    }

    /// Builds the full hardware graph.
    pub fn graph(&self) -> HardwareGraph {
        let m = self.m;
        let mut g = HardwareGraph::new(self.num_qubits());
        for u in 0..2 {
            for w in 0..m {
                for k in 0..12 {
                    for z in 0..m - 1 {
                        // External couplers along the wire.
                        if z + 1 < m - 1 {
                            g.add_edge(self.qubit(u, w, k, z), self.qubit(u, w, k, z + 1));
                        }
                        // Odd couplers between paired tracks.
                        if k % 2 == 0 {
                            g.add_edge(self.qubit(u, w, k, z), self.qubit(u, w, k + 1, z));
                        }
                    }
                }
            }
        }
        // Internal couplers, enumerated once from the vertical (u = 0)
        // side: (0,w,k,z) crosses (1, z + [k′ < off(k)], k′, w − [k < off(k′)])
        // for every horizontal track k′, endpoints kept in range.
        // k/k2 are qubit coordinates first and offset-table indices
        // second, so the range loop reads better than enumerate().
        #[allow(clippy::needless_range_loop)]
        for w in 0..m {
            for k in 0..12 {
                for z in 0..m - 1 {
                    for k2 in 0..12 {
                        let w2 = z + usize::from(k2 < PEGASUS_OFFSETS[k]);
                        let z2 = w as isize - isize::from(k < PEGASUS_OFFSETS[k2]);
                        if z2 >= 0 && (z2 as usize) < m - 1 {
                            g.add_edge(self.qubit(0, w, k, z), self.qubit(1, w2, k2, z2 as usize));
                        }
                    }
                }
            }
        }
        // Trim the dangling boundary wires (every internal crossing off
        // the fabric): D-Wave ships these 8(m−1) qubits disabled, and
        // leaving them active would hand the router a disconnected
        // component.
        for u in 0..2 {
            for z in 0..m - 1 {
                for k in [0, 1] {
                    g.deactivate(self.qubit(u, 0, k, z));
                }
                for k in [10, 11] {
                    g.deactivate(self.qubit(u, m - 1, k, z));
                }
            }
        }
        g
    }

    /// Working (active) qubits after the boundary trim:
    /// `24m(m−1) − 8(m−1)`.
    pub fn num_working_qubits(&self) -> usize {
        self.num_qubits() - 8 * (self.m - 1)
    }
}

impl Topology for Pegasus {
    fn family(&self) -> &'static str {
        "pegasus"
    }

    fn parameter_hash(&self) -> u64 {
        topology_parameter_hash("pegasus", &[self.m as u64])
    }

    fn num_qubits(&self) -> usize {
        Pegasus::num_qubits(self)
    }

    fn coordinate_scheme(&self) -> &'static str {
        "(u, w, k, z)"
    }

    fn coordinate_label(&self, qubit: usize) -> String {
        let (u, w, k, z) = self.coordinates(qubit);
        format!("({u}, {w}, {k}, {z})")
    }

    fn graph(&self) -> HardwareGraph {
        Pegasus::graph(self)
    }

    fn coefficient_range(&self) -> CoefficientRange {
        ADVANTAGE_RANGE
    }
}

/// A `Z_m` Zephyr topology (D-Wave Advantage2 fabric, tile parameter
/// t = 4): `16m(2m+1)` qubits of degree ≤ 20.
///
/// Coordinates `(u, w, k, j, z)`: `u ∈ {0, 1}` the orientation,
/// `w ∈ [0, 2m]` the perpendicular offset, `k ∈ [0, 4)` the track,
/// `j ∈ {0, 1}` the wire half, `z ∈ [0, m)` the position. Linear index
/// `(((u·(2m+1) + w)·4 + k)·2 + j)·m + z`.
///
/// Couplers: *external* `z ~ z+1`, *odd* `(k,0,z) ~ (k,1,z)` and
/// `(k,0,z) ~ (k,1,z−1)`, and sixteen *internal* crossings per interior
/// qubit (`w′ − (2z+j) ∈ {0,1}` and `w − (2z′+j′) ∈ {0,1}`). A Z15 has
/// 7440 qubits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zephyr {
    m: usize,
}

impl Zephyr {
    /// A `Z_m` topology.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Zephyr {
        assert!(m > 0, "Zephyr size must be positive");
        Zephyr { m }
    }

    /// Fabric size m.
    pub fn size(&self) -> usize {
        self.m
    }

    /// Total qubits, `16m(2m+1)`.
    pub fn num_qubits(&self) -> usize {
        16 * self.m * (2 * self.m + 1)
    }

    /// The linear index of a qubit.
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn qubit(&self, u: usize, w: usize, k: usize, j: usize, z: usize) -> usize {
        assert!(u < 2 && w <= 2 * self.m && k < 4 && j < 2 && z < self.m);
        (((u * (2 * self.m + 1) + w) * 4 + k) * 2 + j) * self.m + z
    }

    /// The `(u, w, k, j, z)` coordinates of a linear index.
    pub fn coordinates(&self, qubit: usize) -> (usize, usize, usize, usize, usize) {
        let z = qubit % self.m;
        let rest = qubit / self.m;
        let j = rest % 2;
        let rest = rest / 2;
        let k = rest % 4;
        let rest = rest / 4;
        (rest / (2 * self.m + 1), rest % (2 * self.m + 1), k, j, z)
    }

    /// Builds the full hardware graph.
    pub fn graph(&self) -> HardwareGraph {
        let m = self.m;
        let mut g = HardwareGraph::new(self.num_qubits());
        for u in 0..2 {
            for w in 0..=2 * m {
                for k in 0..4 {
                    for z in 0..m {
                        for j in 0..2 {
                            // External couplers along the wire half.
                            if z + 1 < m {
                                g.add_edge(
                                    self.qubit(u, w, k, j, z),
                                    self.qubit(u, w, k, j, z + 1),
                                );
                            }
                        }
                        // Odd couplers joining the two halves.
                        g.add_edge(self.qubit(u, w, k, 0, z), self.qubit(u, w, k, 1, z));
                        if z > 0 {
                            g.add_edge(self.qubit(u, w, k, 0, z), self.qubit(u, w, k, 1, z - 1));
                        }
                    }
                }
            }
        }
        // Internal couplers, enumerated once from the vertical (u = 0)
        // side: (0,w,k,j,z) crosses (1,w′,k′,j′,z′) iff w′ − (2z+j) ∈ {0,1}
        // and w − (2z′+j′) ∈ {0,1}.
        for w in 0..=2 * m {
            for k in 0..4 {
                for j in 0..2 {
                    for z in 0..m {
                        let a = 2 * z + j;
                        for w2 in [a, a + 1] {
                            if w2 > 2 * m {
                                continue;
                            }
                            for k2 in 0..4 {
                                for v in [w as isize - 1, w as isize] {
                                    if v < 0 || v >= 2 * m as isize {
                                        continue;
                                    }
                                    let (j2, z2) = (v as usize % 2, v as usize / 2);
                                    g.add_edge(
                                        self.qubit(0, w, k, j, z),
                                        self.qubit(1, w2, k2, j2, z2),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        g
    }
}

impl Topology for Zephyr {
    fn family(&self) -> &'static str {
        "zephyr"
    }

    fn parameter_hash(&self) -> u64 {
        topology_parameter_hash("zephyr", &[self.m as u64])
    }

    fn num_qubits(&self) -> usize {
        Zephyr::num_qubits(self)
    }

    fn coordinate_scheme(&self) -> &'static str {
        "(u, w, k, j, z)"
    }

    fn coordinate_label(&self, qubit: usize) -> String {
        let (u, w, k, j, z) = self.coordinates(qubit);
        format!("({u}, {w}, {k}, {j}, {z})")
    }

    fn graph(&self) -> HardwareGraph {
        Zephyr::graph(self)
    }

    fn coefficient_range(&self) -> CoefficientRange {
        ADVANTAGE_RANGE
    }
}

/// An m×m king's-graph lattice: every site couples to its 8 chessboard
/// neighbors (the fabric of CMOS/FPGA annealers such as Hitachi's, and
/// the natural grid for the unit-Ising gate encodings of Tsukiyama et
/// al., arXiv:2406.18130).
///
/// Coordinates `(row, col)`, linear index `row·m + col`, `m²` qubits of
/// degree ≤ 8. Symmetric unit coefficient range; no native clique
/// template (dense graphs go through the CSR router).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KingGraph {
    m: usize,
}

impl KingGraph {
    /// An m×m king's graph.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> KingGraph {
        assert!(m > 0, "king's graph size must be positive");
        KingGraph { m }
    }

    /// Lattice side m.
    pub fn size(&self) -> usize {
        self.m
    }

    /// Total qubits, m².
    pub fn num_qubits(&self) -> usize {
        self.m * self.m
    }

    /// The linear index of a site.
    ///
    /// # Panics
    /// Panics if a coordinate is out of range.
    pub fn qubit(&self, row: usize, col: usize) -> usize {
        assert!(row < self.m && col < self.m);
        row * self.m + col
    }

    /// The `(row, col)` coordinates of a linear index.
    pub fn coordinates(&self, qubit: usize) -> (usize, usize) {
        (qubit / self.m, qubit % self.m)
    }

    /// Builds the full hardware graph.
    pub fn graph(&self) -> HardwareGraph {
        let m = self.m;
        let mut g = HardwareGraph::new(self.num_qubits());
        for row in 0..m {
            for col in 0..m {
                let q = self.qubit(row, col);
                if col + 1 < m {
                    g.add_edge(q, self.qubit(row, col + 1));
                }
                if row + 1 < m {
                    g.add_edge(q, self.qubit(row + 1, col));
                    if col + 1 < m {
                        g.add_edge(q, self.qubit(row + 1, col + 1));
                    }
                    if col > 0 {
                        g.add_edge(q, self.qubit(row + 1, col - 1));
                    }
                }
            }
        }
        g
    }
}

impl Topology for KingGraph {
    fn family(&self) -> &'static str {
        "king"
    }

    fn parameter_hash(&self) -> u64 {
        topology_parameter_hash("king", &[self.m as u64])
    }

    fn num_qubits(&self) -> usize {
        KingGraph::num_qubits(self)
    }

    fn coordinate_scheme(&self) -> &'static str {
        "(row, col)"
    }

    fn coordinate_label(&self, qubit: usize) -> String {
        let (row, col) = self.coordinates(qubit);
        format!("({row}, {col})")
    }

    fn graph(&self) -> HardwareGraph {
        KingGraph::graph(self)
    }

    fn coefficient_range(&self) -> CoefficientRange {
        CoefficientRange::UNIT
    }
}

/// A value-level topology choice: the plain-data form options structs
/// carry (`Copy`, comparable, defaultable) that dispatches to the
/// concrete families. `TopologySpec` itself implements [`Topology`], so
/// anything generic over the trait accepts it directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// Chimera `C_m` (D-Wave 2000Q at m = 16).
    Chimera {
        /// Mesh size m.
        m: usize,
    },
    /// Pegasus `P_m` (D-Wave Advantage at m = 16).
    Pegasus {
        /// Fabric size m.
        m: usize,
    },
    /// Zephyr `Z_m` at t = 4 (D-Wave Advantage2 at m = 15).
    Zephyr {
        /// Fabric size m.
        m: usize,
    },
    /// An m×m king's-graph lattice.
    King {
        /// Lattice side m.
        m: usize,
    },
}

impl Default for TopologySpec {
    /// The paper's machine: a Chimera C16.
    fn default() -> TopologySpec {
        TopologySpec::Chimera { m: 16 }
    }
}

impl TopologySpec {
    /// Runs `f` against the concrete family this spec names.
    fn with<R>(&self, f: impl FnOnce(&dyn Topology) -> R) -> R {
        match *self {
            TopologySpec::Chimera { m } => f(&Chimera::new(m)),
            TopologySpec::Pegasus { m } => f(&Pegasus::new(m)),
            TopologySpec::Zephyr { m } => f(&Zephyr::new(m)),
            TopologySpec::King { m } => f(&KingGraph::new(m)),
        }
    }
}

impl Topology for TopologySpec {
    fn family(&self) -> &'static str {
        self.with(|t| t.family())
    }

    fn parameter_hash(&self) -> u64 {
        self.with(|t| t.parameter_hash())
    }

    fn num_qubits(&self) -> usize {
        self.with(|t| t.num_qubits())
    }

    fn coordinate_scheme(&self) -> &'static str {
        self.with(|t| t.coordinate_scheme())
    }

    fn coordinate_label(&self, qubit: usize) -> String {
        self.with(|t| t.coordinate_label(qubit))
    }

    fn graph(&self) -> HardwareGraph {
        self.with(|t| t.graph())
    }

    fn clique_embedding(&self, n: usize) -> Option<Embedding> {
        self.with(|t| t.clique_embedding(n))
    }

    fn coefficient_range(&self) -> CoefficientRange {
        self.with(|t| t.coefficient_range())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_degree(g: &HardwareGraph) -> usize {
        (0..g.num_nodes())
            .map(|q| g.neighbors(q).len())
            .max()
            .unwrap_or(0)
    }

    fn assert_connected(g: &HardwareGraph) {
        let active: Vec<usize> = (0..g.num_nodes()).filter(|&q| g.is_active(q)).collect();
        assert!(
            g.is_connected_subset(&active),
            "active qubits must be connected"
        );
    }

    #[test]
    fn chimera_trait_matches_inherent_behavior_exactly() {
        let c = Chimera::new(4);
        let t: &dyn Topology = &c;
        assert_eq!(t.family(), "chimera");
        assert_eq!(t.num_qubits(), Chimera::num_qubits(&c));
        assert_eq!(t.graph(), Chimera::graph(&c));
        assert_eq!(
            t.graph_with_dropout(0.05, 42),
            Chimera::graph_with_dropout(&c, 0.05, 42),
            "trait dropout must reproduce the inherent method bit-for-bit"
        );
        assert_eq!(
            t.clique_embedding(8).map(|e| e.chains().to_vec()),
            Chimera::clique_embedding(&c, 8).map(|e| e.chains().to_vec())
        );
        assert_eq!(t.coefficient_range(), CoefficientRange::DWAVE_2000Q);
        // The default chain-strength rule matches the shared helper.
        assert_eq!(
            t.chain_strength(None, 0.75),
            crate::choose_chain_strength(None, 0.75, -2.0)
        );
        assert_eq!(t.chain_strength(Some(5.0), 0.75), 2.0, "clamped to −j_min");
    }

    #[test]
    fn pegasus_counts_degrees_and_coordinates() {
        // The Advantage fabric: P16 = 5760 nominal / 5640 working qubits.
        assert_eq!(Pegasus::advantage().num_qubits(), 5760);
        assert_eq!(Pegasus::advantage().num_working_qubits(), 5640);
        let p = Pegasus::new(4);
        assert_eq!(p.num_qubits(), 24 * 4 * 3);
        assert_eq!(p.graph().num_active(), p.num_working_qubits());
        for q in 0..p.num_qubits() {
            let (u, w, k, z) = p.coordinates(q);
            assert_eq!(p.qubit(u, w, k, z), q);
        }
        let g = p.graph();
        assert_eq!(max_degree(&g), 15, "interior Pegasus degree is 15");
        assert_connected(&g);
        // Spot-check the coupler classes on an interior qubit.
        let q = p.qubit(0, 1, 4, 1);
        assert!(g.has_edge(q, p.qubit(0, 1, 4, 2)), "external");
        assert!(g.has_edge(q, p.qubit(0, 1, 5, 1)), "odd");
        let internal = g
            .neighbors(q)
            .iter()
            .filter(|&&n| p.coordinates(n).0 == 1)
            .count();
        assert_eq!(internal, 12, "interior qubit crosses all 12 tracks");
    }

    #[test]
    fn zephyr_counts_degrees_and_coordinates() {
        // The Advantage2 fabric: Z15 = 7440 qubits.
        assert_eq!(Zephyr::new(15).num_qubits(), 7440);
        let z = Zephyr::new(3);
        assert_eq!(z.num_qubits(), 16 * 3 * 7);
        for q in 0..z.num_qubits() {
            let (u, w, k, j, zz) = z.coordinates(q);
            assert_eq!(z.qubit(u, w, k, j, zz), q);
        }
        let g = z.graph();
        assert_eq!(max_degree(&g), 20, "interior Zephyr degree is 20 at t=4");
        assert_connected(&g);
    }

    #[test]
    fn king_graph_is_an_eight_neighbor_lattice() {
        let k = KingGraph::new(5);
        assert_eq!(k.num_qubits(), 25);
        let g = k.graph();
        assert_eq!(max_degree(&g), 8);
        assert_connected(&g);
        // Interior site: all 8 chessboard moves, nothing else.
        let q = k.qubit(2, 2);
        assert_eq!(g.neighbors(q).len(), 8);
        for (dr, dc) in [(0, 1), (1, 0), (1, 1), (1, -1i32)] {
            let r = (2 + dr) as usize;
            let c = (2i32 + dc) as usize;
            assert!(g.has_edge(q, k.qubit(r, c)));
        }
        assert!(!g.has_edge(q, k.qubit(2, 4)), "no distance-2 couplers");
        // Corner has exactly 3 neighbors.
        assert_eq!(g.neighbors(k.qubit(0, 0)).len(), 3);
        // Edge count: 2m(m−1) orthogonal + 2(m−1)² diagonal.
        assert_eq!(g.num_edges(), 2 * 5 * 4 + 2 * 4 * 4);
    }

    #[test]
    fn parameter_hashes_separate_families_and_sizes() {
        let hashes = [
            Chimera::new(4).parameter_hash(),
            Chimera::new(5).parameter_hash(),
            Pegasus::new(4).parameter_hash(),
            Zephyr::new(4).parameter_hash(),
            KingGraph::new(4).parameter_hash(),
            // Same qubit count as C4 (8·16 = 128 ≠ 121 — use the king size
            // whose square ties a Chimera count: 16² = 256 = C?, no; the
            // point is same-parameter different-family never collides).
            KingGraph::new(32).parameter_hash(),
        ];
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b, "parameter hashes must be pairwise distinct");
            }
        }
        // Stable across instances.
        assert_eq!(
            Pegasus::new(6).parameter_hash(),
            Pegasus::new(6).parameter_hash()
        );
    }

    #[test]
    fn only_chimera_has_a_native_clique_template() {
        assert!(Topology::clique_embedding(&Chimera::new(4), 8).is_some());
        assert!(Pegasus::new(4).clique_embedding(4).is_none());
        assert!(Zephyr::new(2).clique_embedding(4).is_none());
        assert!(KingGraph::new(8).clique_embedding(4).is_none());
    }

    #[test]
    fn spec_dispatches_to_the_concrete_family() {
        let specs = [
            TopologySpec::Chimera { m: 3 },
            TopologySpec::Pegasus { m: 3 },
            TopologySpec::Zephyr { m: 2 },
            TopologySpec::King { m: 9 },
        ];
        let expected_qubits = [
            Chimera::new(3).num_qubits(),
            Pegasus::new(3).num_qubits(),
            Zephyr::new(2).num_qubits(),
            KingGraph::new(9).num_qubits(),
        ];
        let expected_families = ["chimera", "pegasus", "zephyr", "king"];
        for ((spec, qubits), family) in specs.iter().zip(expected_qubits).zip(expected_families) {
            assert_eq!(spec.num_qubits(), qubits);
            assert_eq!(spec.family(), family);
            assert_eq!(spec.graph().num_nodes(), qubits);
        }
        assert_eq!(TopologySpec::default(), TopologySpec::Chimera { m: 16 });
        assert_eq!(
            TopologySpec::Chimera { m: 3 }.parameter_hash(),
            Chimera::new(3).parameter_hash()
        );
        assert!(TopologySpec::Pegasus { m: 3 }.clique_embedding(3).is_none());
        assert_eq!(
            TopologySpec::King { m: 9 }.coefficient_range(),
            CoefficientRange::UNIT
        );
    }
}
