use std::collections::BTreeSet;

/// An undirected hardware connectivity graph with optional inactive
/// ("dropped-out") nodes — real annealers always lose a few qubits to
/// calibration (§2: "there is inevitably some drop-out").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardwareGraph {
    adj: Vec<Vec<usize>>,
    edges: BTreeSet<(usize, usize)>,
    active: Vec<bool>,
}

impl HardwareGraph {
    /// Creates a graph with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> HardwareGraph {
        HardwareGraph {
            adj: vec![Vec::new(); num_nodes],
            edges: BTreeSet::new(),
            active: vec![true; num_nodes],
        }
    }

    /// Number of nodes (including inactive ones).
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of active nodes.
    pub fn num_active(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    /// Panics on out-of-range nodes or self-loops.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a != b, "no self-loops");
        assert!(a < self.adj.len() && b < self.adj.len(), "node in range");
        let key = (a.min(b), a.max(b));
        if self.edges.insert(key) {
            self.adj[a].push(b);
            self.adj[b].push(a);
        }
    }

    /// Whether nodes `a` and `b` are directly coupled.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// The neighbors of `node` (including inactive ones; callers filter).
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adj[node]
    }

    /// All edges as ordered pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Marks a node inactive (unusable by embeddings).
    pub fn deactivate(&mut self, node: usize) {
        self.active[node] = false;
    }

    /// Whether a node is active.
    pub fn is_active(&self, node: usize) -> bool {
        self.active[node]
    }

    /// Flattens the adjacency into a [`CsrNeighbors`] view. Per-node
    /// neighbor order is preserved exactly (insertion order), so
    /// algorithms that are sensitive to iteration order — the embedding
    /// router's heap tie-breaking, for one — behave identically on
    /// either representation.
    ///
    /// # Panics
    /// Panics if the graph has `u32::MAX` or more nodes (Chimera
    /// hardware tops out around 10⁴ qubits).
    pub fn csr(&self) -> CsrNeighbors {
        assert!(
            self.adj.len() < u32::MAX as usize,
            "hardware graph too large for a u32 CSR"
        );
        let mut offsets = Vec::with_capacity(self.adj.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for row in &self.adj {
            total += row.len() as u32;
            offsets.push(total);
        }
        let mut targets = Vec::with_capacity(total as usize);
        for row in &self.adj {
            targets.extend(row.iter().map(|&t| t as u32));
        }
        CsrNeighbors { offsets, targets }
    }

    /// Whether the active subgraph induced by `nodes` is connected.
    pub fn is_connected_subset(&self, nodes: &[usize]) -> bool {
        if nodes.is_empty() {
            return false;
        }
        let set: BTreeSet<usize> = nodes.iter().copied().collect();
        let mut seen = BTreeSet::new();
        let mut stack = vec![nodes[0]];
        seen.insert(nodes[0]);
        while let Some(v) = stack.pop() {
            for &u in self.neighbors(v) {
                if set.contains(&u) && seen.insert(u) {
                    stack.push(u);
                }
            }
        }
        seen.len() == set.len()
    }
}

/// A compressed-sparse-row copy of a [`HardwareGraph`]'s adjacency:
/// one flat `u32` neighbor array plus per-node offsets. Built once by
/// [`HardwareGraph::csr`] and then read lock-free and allocation-free —
/// the representation the embedding router's inner loop runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrNeighbors {
    /// `offsets[n]..offsets[n + 1]` bounds node n's slice of `targets`.
    offsets: Vec<u32>,
    /// All neighbor lists, concatenated in node order.
    targets: Vec<u32>,
}

impl CsrNeighbors {
    /// Assembles a CSR view from raw offset/target arrays (crate-internal;
    /// the embedding router builds a variant with inactive targets
    /// pruned).
    pub(crate) fn from_parts(offsets: Vec<u32>, targets: Vec<u32>) -> CsrNeighbors {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        CsrNeighbors { offsets, targets }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The neighbors of `node`, in the same order
    /// [`HardwareGraph::neighbors`] reports them.
    #[inline]
    pub fn neighbors(&self, node: usize) -> &[u32] {
        &self.targets[self.offsets[node] as usize..self.offsets[node + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_deduplicate() {
        let mut g = HardwareGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn connectivity_check() {
        let mut g = HardwareGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.is_connected_subset(&[0, 1, 2]));
        assert!(!g.is_connected_subset(&[0, 2]));
        assert!(!g.is_connected_subset(&[0, 3]));
        assert!(g.is_connected_subset(&[3]));
        assert!(!g.is_connected_subset(&[]));
    }

    #[test]
    fn csr_matches_vec_adjacency_in_order() {
        let mut g = HardwareGraph::new(5);
        g.add_edge(0, 3);
        g.add_edge(0, 1);
        g.add_edge(3, 1);
        g.add_edge(2, 4);
        let csr = g.csr();
        assert_eq!(csr.num_nodes(), g.num_nodes());
        for node in 0..g.num_nodes() {
            let flat: Vec<usize> = csr.neighbors(node).iter().map(|&t| t as usize).collect();
            assert_eq!(flat, g.neighbors(node), "node {node} order must match");
        }
    }

    #[test]
    fn deactivation_tracked() {
        let mut g = HardwareGraph::new(2);
        assert_eq!(g.num_active(), 2);
        g.deactivate(1);
        assert_eq!(g.num_active(), 1);
        assert!(!g.is_active(1));
    }
}
