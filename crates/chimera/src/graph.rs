use std::collections::BTreeSet;

/// An undirected hardware connectivity graph with optional inactive
/// ("dropped-out") nodes — real annealers always lose a few qubits to
/// calibration (§2: "there is inevitably some drop-out").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardwareGraph {
    adj: Vec<Vec<usize>>,
    edges: BTreeSet<(usize, usize)>,
    active: Vec<bool>,
}

impl HardwareGraph {
    /// Creates a graph with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> HardwareGraph {
        HardwareGraph {
            adj: vec![Vec::new(); num_nodes],
            edges: BTreeSet::new(),
            active: vec![true; num_nodes],
        }
    }

    /// Number of nodes (including inactive ones).
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of active nodes.
    pub fn num_active(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    /// Panics on out-of-range nodes or self-loops.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a != b, "no self-loops");
        assert!(a < self.adj.len() && b < self.adj.len(), "node in range");
        let key = (a.min(b), a.max(b));
        if self.edges.insert(key) {
            self.adj[a].push(b);
            self.adj[b].push(a);
        }
    }

    /// Whether nodes `a` and `b` are directly coupled.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// The neighbors of `node` (including inactive ones; callers filter).
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adj[node]
    }

    /// All edges as ordered pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Marks a node inactive (unusable by embeddings).
    pub fn deactivate(&mut self, node: usize) {
        self.active[node] = false;
    }

    /// Whether a node is active.
    pub fn is_active(&self, node: usize) -> bool {
        self.active[node]
    }

    /// Whether the active subgraph induced by `nodes` is connected.
    pub fn is_connected_subset(&self, nodes: &[usize]) -> bool {
        if nodes.is_empty() {
            return false;
        }
        let set: BTreeSet<usize> = nodes.iter().copied().collect();
        let mut seen = BTreeSet::new();
        let mut stack = vec![nodes[0]];
        seen.insert(nodes[0]);
        while let Some(v) = stack.pop() {
            for &u in self.neighbors(v) {
                if set.contains(&u) && seen.insert(u) {
                    stack.push(u);
                }
            }
        }
        seen.len() == set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_deduplicate() {
        let mut g = HardwareGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn connectivity_check() {
        let mut g = HardwareGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.is_connected_subset(&[0, 1, 2]));
        assert!(!g.is_connected_subset(&[0, 2]));
        assert!(!g.is_connected_subset(&[0, 3]));
        assert!(g.is_connected_subset(&[3]));
        assert!(!g.is_connected_subset(&[]));
    }

    #[test]
    fn deactivation_tracked() {
        let mut g = HardwareGraph::new(2);
        assert_eq!(g.num_active(), 2);
        g.deactivate(1);
        assert_eq!(g.num_active(), 1);
        assert!(!g.is_active(1));
    }
}
