//! Chain-contraction witnesses for translation validation
//! (DESIGN.md §15).
//!
//! After [`embed_ising`](crate::embed_ising) programs a logical model
//! onto hardware, the back-end proof obligation must show the physical
//! model chain-contracts back to the logical one. This module produces
//! the witness data the certificate records: per logical variable, the
//! chain's qubits and the intra-chain couplers the embedding actually
//! programmed. The independent checker re-derives connectivity and the
//! term-by-term contraction from this record alone.

use crate::apply::EmbeddedIsing;
use qac_pbf::Ising;

/// One logical variable's chain witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainWitness {
    /// The logical variable.
    pub var: usize,
    /// The chain's physical qubits, sorted.
    pub qubits: Vec<usize>,
    /// Intra-chain couplers `(a, b)` with `a < b`, sorted — exactly the
    /// physical couplings whose endpoints both belong to this chain.
    pub edges: Vec<(usize, usize)>,
}

/// Extracts the chain witness of every logical variable from an
/// embedded model. Intra-chain couplers are read off the *physical*
/// Hamiltonian, so a coupler the embedding failed to program is absent
/// from the witness and the checker's connectivity pass will reject the
/// chain.
pub fn contraction_witness(embedded: &EmbeddedIsing) -> Vec<ChainWitness> {
    let mut owner = vec![usize::MAX; embedded.physical.num_vars()];
    let mut witnesses: Vec<ChainWitness> = (0..embedded.num_logical)
        .map(|var| {
            let mut qubits = embedded.embedding.chain(var).to_vec();
            qubits.sort_unstable();
            for &q in &qubits {
                owner[q] = var;
            }
            ChainWitness {
                var,
                qubits,
                edges: Vec::new(),
            }
        })
        .collect();
    for term in embedded.physical.j_iter() {
        let (a, b) = (term.i.min(term.j), term.i.max(term.j));
        if owner[a] != usize::MAX && owner[a] == owner[b] {
            witnesses[owner[a]].edges.push((a, b));
        }
    }
    for witness in &mut witnesses {
        witness.edges.sort_unstable();
    }
    witnesses
}

/// The QAC03x chain-strength sufficiency bound: the largest neighborhood
/// weight `W_v = |h_v| + Σ|J_vu|` over the coupled variables of
/// `logical`. A chain strength at or above this bound guarantees no
/// broken-chain state undercuts an intact ground state.
pub fn chain_strength_bound(logical: &Ising) -> f64 {
    let weights = crate::apply::neighborhood_weights(logical);
    let mut degree = vec![0usize; logical.num_vars()];
    for term in logical.j_iter() {
        degree[term.i] += 1;
        degree[term.j] += 1;
    }
    weights
        .iter()
        .zip(&degree)
        .filter(|&(_, &d)| d > 0)
        .map(|(&w, _)| w)
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{embed_ising, Chimera, Embedding, HardwareGraph};

    fn two_var_embedding(hardware: &HardwareGraph) -> (Ising, Embedding) {
        let mut logical = Ising::new(2);
        logical.add_h(0, 0.5);
        logical.add_j(0, 1, -1.0);
        // Chain variable 0 over an edge-connected qubit pair; variable 1
        // on a single neighboring qubit.
        let chain0 = vec![0usize, 4];
        assert!(hardware.has_edge(0, 4), "unit-cell edge expected");
        let neighbor = (0..hardware.num_nodes())
            .find(|&q| q != 0 && q != 4 && (hardware.has_edge(q, 0) || hardware.has_edge(q, 4)))
            .expect("a third qubit touching the chain");
        (
            logical,
            Embedding::from_chains(vec![chain0, vec![neighbor]]),
        )
    }

    #[test]
    fn witness_lists_the_programmed_intra_chain_couplers() {
        let hardware = Chimera::new(2).graph();
        let (logical, embedding) = two_var_embedding(&hardware);
        let embedded = embed_ising(&logical, &embedding, &hardware, 2.0);
        let witnesses = contraction_witness(&embedded);
        assert_eq!(witnesses.len(), 2);
        assert_eq!(witnesses[0].qubits, vec![0, 4]);
        assert_eq!(witnesses[0].edges, vec![(0, 4)]);
        assert!(witnesses[1].edges.is_empty());
    }

    #[test]
    fn bound_ignores_uncoupled_variables() {
        let mut m = Ising::new(3);
        m.add_j(0, 1, -1.0);
        m.add_h(0, 0.5);
        m.add_h(2, 100.0); // Uncoupled: never chained across couplers.
        assert!((chain_strength_bound(&m) - 1.5).abs() < 1e-12);
    }
}
