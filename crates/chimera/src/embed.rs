//! Randomized minor-embedding heuristic in the style of Cai, Macready,
//! and Roy ("A practical heuristic for finding graph minors", 2014) — the
//! algorithm D-Wave's SAPI library uses, which the paper invokes for its
//! place-and-route step (§4.4).
//!
//! Each logical variable is mapped to a *chain* of physical qubits. The
//! heuristic grows chains along cheapest paths under an exponential
//! penalty for qubit reuse, then iteratively rips up and re-routes chains
//! until no qubit is claimed twice.

use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::HardwareGraph;

/// Options for [`find_embedding`].
#[derive(Debug, Clone)]
pub struct EmbedOptions {
    /// RNG seed (the heuristic is randomized; the paper reports qubit
    /// counts "over 25 compilations" for this reason, §6.1).
    pub seed: u64,
    /// Independent restarts before giving up.
    pub tries: usize,
    /// Rip-up-and-reroute improvement rounds per try.
    pub rounds: usize,
    /// Base of the exponential reuse penalty.
    pub penalty_base: f64,
}

impl Default for EmbedOptions {
    fn default() -> EmbedOptions {
        EmbedOptions {
            seed: 0xe4bed,
            tries: 16,
            rounds: 40,
            penalty_base: 8.0,
        }
    }
}

/// Work counters for one embedding call — how much routing effort the
/// heuristic spent. A cache hit reports zero route iterations, which is
/// how tests distinguish warm from cold embeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EmbedStats {
    /// Rip-up-and-reroute rounds executed, summed over all restarts (and
    /// over all portfolio arms for [`find_embedding_portfolio`]).
    pub route_iterations: usize,
    /// Randomized restarts begun (1 = the first try succeeded).
    pub restarts: usize,
    /// Whether the embedding came out of an [`crate::EmbeddingCache`]
    /// without any routing work.
    pub cache_hit: bool,
}

impl EmbedStats {
    /// Accumulates another call's counters into this one.
    pub fn absorb(&mut self, other: &EmbedStats) {
        self.route_iterations += other.route_iterations;
        self.restarts += other.restarts;
    }
}

/// Why embedding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbedError {
    /// No valid embedding was found within the configured tries.
    NoEmbeddingFound {
        /// How many restarts were attempted.
        tries: usize,
    },
    /// The hardware graph has no active qubits.
    EmptyHardware,
}

impl std::fmt::Display for EmbedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbedError::NoEmbeddingFound { tries } => {
                write!(f, "no minor embedding found after {tries} tries")
            }
            EmbedError::EmptyHardware => write!(f, "hardware graph has no active qubits"),
        }
    }
}

impl std::error::Error for EmbedError {}

/// A minor embedding: one chain of physical qubits per logical variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Embedding {
    chains: Vec<Vec<usize>>,
}

impl Embedding {
    /// Wraps pre-computed chains as an embedding (used by template
    /// constructions; validity is the caller's responsibility until
    /// [`Embedding::validate`] is run).
    pub fn from_chains(chains: Vec<Vec<usize>>) -> Embedding {
        Embedding { chains }
    }

    /// The chain for logical variable `v`.
    pub fn chain(&self, v: usize) -> &[usize] {
        &self.chains[v]
    }

    /// All chains, indexed by logical variable.
    pub fn chains(&self) -> &[Vec<usize>] {
        &self.chains
    }

    /// Number of logical variables.
    pub fn num_vars(&self) -> usize {
        self.chains.len()
    }

    /// Total physical qubits used (the §6.1 metric).
    pub fn num_physical_qubits(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Length of the longest chain.
    pub fn max_chain_length(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks that the embedding is a valid minor embedding of the given
    /// logical edges: chains are non-empty, disjoint, connected, and every
    /// logical edge is backed by at least one physical coupler.
    pub fn validate(&self, edges: &[(usize, usize)], hardware: &HardwareGraph) -> bool {
        let mut owner = vec![usize::MAX; hardware.num_nodes()];
        for (v, chain) in self.chains.iter().enumerate() {
            if chain.is_empty() {
                return false;
            }
            for &q in chain {
                if !hardware.is_active(q) || owner[q] != usize::MAX {
                    return false;
                }
                owner[q] = v;
            }
            if !hardware.is_connected_subset(chain) {
                return false;
            }
        }
        edges.iter().all(|&(u, v)| {
            self.chains[u].iter().any(|&a| {
                hardware
                    .neighbors(a)
                    .iter()
                    .any(|&b| owner.get(b) == Some(&v))
            })
        })
    }
}

/// Finds a minor embedding of the logical graph given by `edges` over
/// `num_vars` variables into `hardware`.
///
/// Isolated logical variables (no incident edge) still receive a
/// single-qubit chain.
///
/// # Errors
/// [`EmbedError::NoEmbeddingFound`] after the configured restarts, or
/// [`EmbedError::EmptyHardware`].
pub fn find_embedding(
    edges: &[(usize, usize)],
    num_vars: usize,
    hardware: &HardwareGraph,
    options: &EmbedOptions,
) -> Result<Embedding, EmbedError> {
    find_embedding_with_stats(edges, num_vars, hardware, options).map(|(e, _)| e)
}

/// [`find_embedding`] that also reports how much routing work was done.
///
/// # Errors
/// Same as [`find_embedding`].
pub fn find_embedding_with_stats(
    edges: &[(usize, usize)],
    num_vars: usize,
    hardware: &HardwareGraph,
    options: &EmbedOptions,
) -> Result<(Embedding, EmbedStats), EmbedError> {
    if hardware.num_active() == 0 {
        return Err(EmbedError::EmptyHardware);
    }
    let mut rng = StdRng::seed_from_u64(options.seed);
    // Logical adjacency.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_vars];
    for &(u, v) in edges {
        assert!(u < num_vars && v < num_vars, "edge endpoint out of range");
        if u != v && !adj[u].contains(&v) {
            adj[u].push(v);
            adj[v].push(u);
        }
    }

    let mut stats = EmbedStats::default();
    for _try in 0..options.tries {
        stats.restarts += 1;
        if let Some(mut embedding) = attempt(
            &adj,
            hardware,
            options,
            &mut rng,
            &mut stats.route_iterations,
        ) {
            trim_chains(&mut embedding, &adj, hardware);
            debug_assert!(embedding.validate(edges, hardware));
            return Ok((embedding, stats));
        }
    }
    Err(EmbedError::NoEmbeddingFound {
        tries: options.tries,
    })
}

/// Runs `attempts` independently-seeded embedding searches in parallel
/// (one thread each) and keeps the cheapest result, comparing by
/// `(physical qubits, max chain length)`. Arm 0 uses `options.seed`
/// verbatim, so a one-arm portfolio reproduces [`find_embedding`]
/// exactly; the winner is chosen deterministically regardless of thread
/// scheduling.
///
/// The paper compiles each program 25 times precisely because the CMR
/// heuristic is randomized (§6.1, "369 ± 26 physical qubits"); a
/// portfolio harvests that variance instead of suffering it.
///
/// # Errors
/// The first arm's error when every arm fails.
pub fn find_embedding_portfolio(
    edges: &[(usize, usize)],
    num_vars: usize,
    hardware: &HardwareGraph,
    options: &EmbedOptions,
    attempts: usize,
) -> Result<(Embedding, EmbedStats), EmbedError> {
    let attempts = attempts.max(1);
    let mut results: Vec<Result<(Embedding, EmbedStats), EmbedError>> =
        Vec::with_capacity(attempts);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..attempts)
            .map(|arm| {
                let arm_options = EmbedOptions {
                    seed: options
                        .seed
                        .wrapping_add((arm as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    ..options.clone()
                };
                scope.spawn(move || {
                    find_embedding_with_stats(edges, num_vars, hardware, &arm_options)
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("embedding arm does not panic"));
        }
    });

    let mut stats = EmbedStats::default();
    let mut best: Option<Embedding> = None;
    let mut first_err: Option<EmbedError> = None;
    for result in results {
        match result {
            Ok((embedding, arm_stats)) => {
                stats.absorb(&arm_stats);
                let better = best.as_ref().is_none_or(|b| {
                    (
                        embedding.num_physical_qubits(),
                        embedding.max_chain_length(),
                    ) < (b.num_physical_qubits(), b.max_chain_length())
                });
                if better {
                    best = Some(embedding);
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match best {
        Some(embedding) => Ok((embedding, stats)),
        None => Err(first_err.expect("at least one arm ran")),
    }
}

/// Finds an embedding with the randomized heuristic, falling back to the
/// deterministic clique template of `chimera` when the heuristic fails
/// (dense logical graphs). The fallback requires all template qubits to be
/// active.
///
/// # Errors
/// [`EmbedError`] when both strategies fail.
pub fn find_embedding_or_clique(
    edges: &[(usize, usize)],
    num_vars: usize,
    chimera: &crate::Chimera,
    hardware: &HardwareGraph,
    options: &EmbedOptions,
) -> Result<Embedding, EmbedError> {
    find_embedding_or_clique_with_stats(edges, num_vars, chimera, hardware, options).map(|(e, _)| e)
}

/// [`find_embedding_or_clique`] that also reports routing-work counters.
/// A clique-template fallback reports the nominal work of the failed
/// heuristic attempts (`tries × rounds`).
///
/// # Errors
/// Same as [`find_embedding_or_clique`].
pub fn find_embedding_or_clique_with_stats(
    edges: &[(usize, usize)],
    num_vars: usize,
    chimera: &crate::Chimera,
    hardware: &HardwareGraph,
    options: &EmbedOptions,
) -> Result<(Embedding, EmbedStats), EmbedError> {
    match find_embedding_with_stats(edges, num_vars, hardware, options) {
        Ok(found) => Ok(found),
        Err(err) => {
            if let Some(embedding) = chimera.clique_embedding(num_vars) {
                if embedding.validate(edges, hardware) {
                    let stats = EmbedStats {
                        route_iterations: options.tries * options.rounds,
                        restarts: options.tries,
                        cache_hit: false,
                    };
                    return Ok((embedding, stats));
                }
            }
            Err(err)
        }
    }
}

/// One randomized embedding attempt. Every rip-up-and-reroute round begun
/// is counted into `route_iterations`.
fn attempt(
    adj: &[Vec<usize>],
    hardware: &HardwareGraph,
    options: &EmbedOptions,
    rng: &mut StdRng,
    route_iterations: &mut usize,
) -> Option<Embedding> {
    let n = adj.len();
    let hw_n = hardware.num_nodes();
    let mut chains: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut usage: Vec<u32> = vec![0; hw_n];

    // Randomized BFS order over the logical graph: each variable is
    // placed while its already-placed neighbors sit close together, which
    // keeps the initial placement compact (long chains mostly come from
    // scattered placement).
    let mut order: Vec<usize> = Vec::with_capacity(n);
    {
        let mut seen = vec![false; n];
        let mut starts: Vec<usize> = (0..n).collect();
        starts.sort_by_key(|&v| std::cmp::Reverse(adj[v].len()));
        for &start in &starts {
            if seen[start] {
                continue;
            }
            let mut queue = std::collections::VecDeque::from([start]);
            seen[start] = true;
            while let Some(v) = queue.pop_front() {
                order.push(v);
                let mut next: Vec<usize> = adj[v].iter().copied().filter(|&u| !seen[u]).collect();
                next.shuffle(rng);
                for u in next {
                    seen[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }

    /// Extra improvement rounds after the first valid embedding.
    const POLISH_ROUNDS: usize = 8;
    let mut best: Option<(usize, Vec<Vec<usize>>)> = None;
    let mut first_success: Option<usize> = None;

    for round in 0..options.rounds {
        *route_iterations += 1;
        let mut overfull = false;
        // Conflict-directed rip-up: a pair of chains sharing a qubit can
        // oscillate forever if rerouted one at a time (each re-choosing
        // the overlap as its cheapest option). Tearing out every
        // conflicted chain simultaneously breaks the deadlock.
        let mut conflicted: Vec<usize> = (0..n)
            .filter(|&v| chains[v].iter().any(|&q| usage[q] > 1))
            .collect();
        for &v in &conflicted {
            for &q in &chains[v] {
                usage[q] -= 1;
            }
            chains[v].clear();
        }
        conflicted.shuffle(rng);
        let sequence: Vec<usize> = conflicted
            .iter()
            .copied()
            .chain(order.iter().copied().filter(|v| !conflicted.contains(v)))
            .collect();
        for &v in &sequence {
            // Rip up v.
            for &q in &chains[v] {
                usage[q] -= 1;
            }
            chains[v].clear();
            // Re-route v (paths may donate qubits to neighbor chains).
            let (chain, donations) =
                route_one(v, adj, &chains, hardware, &usage, options, round, rng)?;
            for &q in &chain {
                usage[q] += 1;
            }
            chains[v] = chain;
            for (u, donated) in donations {
                for q in donated {
                    if !chains[u].contains(&q) {
                        usage[q] += 1;
                        chains[u].push(q);
                    }
                }
            }
        }
        for &u in usage.iter() {
            if u > 1 {
                overfull = true;
                break;
            }
        }
        if !overfull && chains.iter().all(|c| !c.is_empty()) {
            let total: usize = chains.iter().map(Vec::len).sum();
            let improved = best.as_ref().is_none_or(|(bt, _)| total < *bt);
            if improved {
                best = Some((total, chains.clone()));
            }
            if first_success.is_none() {
                first_success = Some(round);
            }
            // Polish budget: keep rerouting a while to shrink chains,
            // then stop (CMR's improvement phase).
            if round >= first_success.unwrap() + POLISH_ROUNDS {
                break;
            }
        }
        if std::env::var_os("QAC_EMBED_DEBUG").is_some() {
            let maxu = usage.iter().max().copied().unwrap_or(0);
            let total: usize = chains.iter().map(Vec::len).sum();
            let conflicts: Vec<(usize, Vec<usize>)> = (0..hw_n)
                .filter(|&q| usage[q] > 1)
                .map(|q| {
                    let owners: Vec<usize> = (0..n).filter(|&v| chains[v].contains(&q)).collect();
                    (q, owners)
                })
                .collect();
            eprintln!(
                "round {round}: max_usage={maxu} total_chain_qubits={total} conflicts={conflicts:?}"
            );
        }
        // Mild reshuffle between rounds helps escape ties.
        if round % 4 == 3 {
            order.shuffle(rng);
        }
    }
    best.map(|(_, chains)| Embedding { chains })
}

/// Computes a chain for `v` connecting to all currently-embedded
/// neighbors, using weighted Dijkstra from each neighbor chain.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn route_one(
    v: usize,
    adj: &[Vec<usize>],
    chains: &[Vec<usize>],
    hardware: &HardwareGraph,
    usage: &[u32],
    options: &EmbedOptions,
    round: usize,
    rng: &mut StdRng,
) -> Option<(Vec<usize>, Vec<(usize, Vec<usize>)>)> {
    let hw_n = hardware.num_nodes();
    // The reuse penalty escalates with the improvement round so that a
    // persistent overlap eventually becomes costlier than any detour
    // (capped so polish rounds can still contract the layout).
    let base = options.penalty_base * (1.0 + round.min(12) as f64);
    let weight = |q: usize| -> f64 {
        if !hardware.is_active(q) {
            return f64::INFINITY;
        }
        base.powi(usage[q].min(8) as i32)
    };

    let embedded_neighbors: Vec<usize> = adj[v]
        .iter()
        .copied()
        .filter(|&u| !chains[u].is_empty())
        .collect();

    if embedded_neighbors.is_empty() {
        // Fresh start: any cheapest active qubit.
        let mut best: Vec<usize> = Vec::new();
        let mut best_w = f64::INFINITY;
        for q in 0..hw_n {
            let w = weight(q);
            if w < best_w {
                best_w = w;
                best = vec![q];
            } else if w == best_w {
                best.push(q);
            }
        }
        if best.is_empty() || best_w.is_infinite() {
            return None;
        }
        return Some((vec![best[rng.gen_range(0..best.len())]], Vec::new()));
    }

    // Dijkstra from each neighbor chain.
    let mut dists: Vec<Vec<f64>> = Vec::with_capacity(embedded_neighbors.len());
    let mut parents: Vec<Vec<usize>> = Vec::with_capacity(embedded_neighbors.len());
    for &u in &embedded_neighbors {
        let (dist, parent) = dijkstra_from_chain(&chains[u], hardware, &weight);
        dists.push(dist);
        parents.push(parent);
    }

    // Pick the root g minimizing w(g) + Σ dist_u(g), where dist excludes
    // the endpoint's own weight (g is paid for exactly once).
    let mut best_g: Vec<usize> = Vec::new();
    let mut best_cost = f64::INFINITY;
    for g in 0..hw_n {
        let wg = weight(g);
        if wg.is_infinite() {
            continue;
        }
        let mut total = wg;
        let mut ok = true;
        for d in &dists {
            if d[g].is_finite() {
                total += d[g];
            } else {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        if total < best_cost - 1e-12 {
            best_cost = total;
            best_g = vec![g];
        } else if (total - best_cost).abs() <= 1e-12 {
            best_g.push(g);
        }
    }
    if best_g.is_empty() {
        return None;
    }
    let g = best_g[rng.gen_range(0..best_g.len())];

    // Collect the paths g → each neighbor chain. Following minorminer,
    // each path's interior is split: the half nearer g joins v's chain,
    // the half nearer u is donated to u's chain. This keeps hub
    // variables from accumulating enormous chains, which matters both
    // for qubit counts (§6.1) and for sampler mixing.
    let mut chain: Vec<usize> = vec![g];
    let mut donations: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, &u) in embedded_neighbors.iter().enumerate() {
        let mut interior: Vec<usize> = Vec::new();
        let mut cur = g;
        loop {
            let p = parents[i][cur];
            if p == usize::MAX {
                break; // cur is inside chain(u)
            }
            if p == cur {
                break;
            }
            cur = p;
            if chains[u].contains(&cur) {
                break;
            }
            interior.push(cur);
        }
        // interior[0] is adjacent to g, interior.last() adjacent to chain(u).
        let keep = interior.len().div_ceil(2);
        let mut donated: Vec<usize> = Vec::new();
        for (pos, q) in interior.into_iter().enumerate() {
            if pos < keep {
                if !chain.contains(&q) {
                    chain.push(q);
                }
            } else if !chain.contains(&q) && !donated.contains(&q) {
                donated.push(q);
            }
        }
        if !donated.is_empty() {
            donations.push((u, donated));
        }
    }
    Some((chain, donations))
}

/// Multi-source Dijkstra with node weights. Sources (the chain's nodes)
/// have distance 0 and parent `usize::MAX`. `dist[g]` is the total weight
/// of the *interior* nodes on the cheapest path from the chain to `g` —
/// the endpoint's own weight is excluded (the caller pays it once).
fn dijkstra_from_chain(
    chain: &[usize],
    hardware: &HardwareGraph,
    weight: &dyn Fn(usize) -> f64,
) -> (Vec<f64>, Vec<usize>) {
    let n = hardware.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![usize::MAX; n];
    let mut is_source = vec![false; n];
    for &q in chain {
        is_source[q] = true;
    }
    // Max-heap on reversed order.
    #[derive(PartialEq)]
    struct Entry(f64, usize);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Entry) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Entry) -> std::cmp::Ordering {
            other
                .0
                .partial_cmp(&self.0)
                .unwrap_or(std::cmp::Ordering::Equal)
        }
    }
    let mut heap = BinaryHeap::new();
    for &q in chain {
        dist[q] = 0.0;
        heap.push(Entry(0.0, q));
    }
    while let Some(Entry(d, q)) = heap.pop() {
        if d > dist[q] {
            continue;
        }
        // Stepping q → next adds q's own weight (q becomes interior),
        // except when q is a chain node (free) or next is unusable.
        let step = if is_source[q] { 0.0 } else { weight(q) };
        for &next in hardware.neighbors(q) {
            if weight(next).is_infinite() || is_source[next] {
                continue;
            }
            let nd = d + step;
            if nd < dist[next] {
                dist[next] = nd;
                parent[next] = q;
                heap.push(Entry(nd, next));
            }
        }
    }
    (dist, parent)
}

/// Removes chain qubits that are not needed for connectivity or for any
/// logical edge (cheap post-pass; reduces the §6.1 qubit counts).
fn trim_chains(embedding: &mut Embedding, adj: &[Vec<usize>], hardware: &HardwareGraph) {
    let n = embedding.chains.len();
    #[allow(clippy::needless_range_loop)] // chains[v] is mutated mid-loop
    for v in 0..n {
        loop {
            let chain = embedding.chains[v].clone();
            if chain.len() <= 1 {
                break;
            }
            let mut removed = false;
            for (idx, &q) in chain.iter().enumerate() {
                let rest: Vec<usize> = chain
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != idx)
                    .map(|(_, &x)| x)
                    .collect();
                if !hardware.is_connected_subset(&rest) {
                    continue;
                }
                // Every logical neighbor must stay physically adjacent.
                let still_ok = adj[v].iter().all(|&u| {
                    let other = &embedding.chains[u];
                    rest.iter()
                        .any(|&a| hardware.neighbors(a).iter().any(|&b| other.contains(&b)))
                });
                if still_ok {
                    embedding.chains[v] = rest;
                    removed = true;
                    let _ = q;
                    break;
                }
            }
            if !removed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Chimera;

    fn opts(seed: u64) -> EmbedOptions {
        EmbedOptions {
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn single_variable() {
        let hw = Chimera::new(1).graph();
        let e = find_embedding(&[], 1, &hw, &opts(1)).unwrap();
        assert_eq!(e.num_vars(), 1);
        assert_eq!(e.num_physical_qubits(), 1);
        assert!(e.validate(&[], &hw));
    }

    #[test]
    fn edge_embeds_directly() {
        let hw = Chimera::new(1).graph();
        let edges = [(0, 1)];
        let e = find_embedding(&edges, 2, &hw, &opts(2)).unwrap();
        assert!(e.validate(&edges, &hw));
        // An edge fits on adjacent qubits without chains.
        assert_eq!(e.num_physical_qubits(), 2);
    }

    #[test]
    fn triangle_needs_a_chain() {
        // Chimera is bipartite: K3 requires at least one 2-qubit chain.
        let hw = Chimera::new(1).graph();
        let edges = [(0, 1), (1, 2), (0, 2)];
        let e = find_embedding(&edges, 3, &hw, &opts(3)).unwrap();
        assert!(e.validate(&edges, &hw));
        assert!(e.num_physical_qubits() >= 4);
        assert!(e.max_chain_length() >= 2);
    }

    #[test]
    fn k5_embeds_in_one_cell_plus() {
        let hw = Chimera::new(2).graph();
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let e = find_embedding(&edges, 5, &hw, &opts(4)).unwrap();
        assert!(e.validate(&edges, &hw));
    }

    #[test]
    fn k8_embeds_in_c4_via_fallback() {
        let chimera = Chimera::new(4);
        let hw = chimera.graph();
        let mut edges = Vec::new();
        for i in 0..8 {
            for j in (i + 1)..8 {
                edges.push((i, j));
            }
        }
        let fast = EmbedOptions {
            tries: 2,
            rounds: 12,
            ..opts(5)
        };
        let e = find_embedding_or_clique(&edges, 8, &chimera, &hw, &fast).unwrap();
        assert!(e.validate(&edges, &hw));
    }

    #[test]
    fn clique_template_is_valid_up_to_4m() {
        for m in [2usize, 4] {
            let chimera = Chimera::new(m);
            let hw = chimera.graph();
            for n in [1usize, 4, 4 * m - 1, 4 * m] {
                let mut edges = Vec::new();
                for i in 0..n {
                    for j in (i + 1)..n {
                        edges.push((i, j));
                    }
                }
                let e = chimera.clique_embedding(n).unwrap();
                assert!(e.validate(&edges, &hw), "K{n} template on C{m}");
            }
            assert!(chimera.clique_embedding(4 * m + 1).is_none());
        }
    }

    #[test]
    fn random_sparse_graph_embeds_with_dropout() {
        let hw = Chimera::new(4).graph_with_dropout(0.03, 7);
        // A random-ish sparse graph on 12 nodes.
        let edges: Vec<(usize, usize)> = (0..12)
            .flat_map(|i| [(i, (i + 1) % 12), (i, (i + 3) % 12)])
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        let e = find_embedding(&edges, 12, &hw, &opts(6)).unwrap();
        assert!(e.validate(&edges, &hw));
        // Dropped qubits are never used.
        for chain in e.chains() {
            for &q in chain {
                assert!(hw.is_active(q));
            }
        }
    }

    #[test]
    fn impossible_embedding_reports_failure() {
        // K9 cannot fit in a single unit cell (8 qubits).
        let hw = Chimera::new(1).graph();
        let mut edges = Vec::new();
        for i in 0..9 {
            for j in (i + 1)..9 {
                edges.push((i, j));
            }
        }
        let fast = EmbedOptions {
            tries: 2,
            rounds: 8,
            ..opts(8)
        };
        assert!(matches!(
            find_embedding(&edges, 9, &hw, &fast),
            Err(EmbedError::NoEmbeddingFound { .. })
        ));
    }

    #[test]
    fn randomized_qubit_counts_vary_by_seed() {
        // §6.1: "the number of physical qubits varies from compilation to
        // compilation" — different seeds should explore different embeddings.
        let hw = Chimera::new(3).graph();
        let mut edges = Vec::new();
        for i in 0..7 {
            for j in (i + 1)..7 {
                edges.push((i, j));
            }
        }
        let chimera = Chimera::new(3);
        let counts: Vec<usize> = (0..6)
            .map(|s| {
                find_embedding_or_clique(&edges, 7, &chimera, &hw, &opts(100 + s))
                    .unwrap()
                    .num_physical_qubits()
            })
            .collect();
        // All valid; at least produce a spread or equal minimal counts.
        assert!(counts.iter().all(|&c| c >= 7));
    }

    #[test]
    fn stats_count_routing_work() {
        let hw = Chimera::new(2).graph();
        let edges = [(0, 1), (1, 2), (0, 2)];
        let (e, stats) = find_embedding_with_stats(&edges, 3, &hw, &opts(3)).unwrap();
        assert!(e.validate(&edges, &hw));
        assert!(stats.route_iterations >= 1, "at least one round ran");
        assert!(stats.restarts >= 1);
        assert!(!stats.cache_hit);
    }

    #[test]
    fn portfolio_single_arm_matches_plain_search() {
        let hw = Chimera::new(3).graph();
        let edges: Vec<(usize, usize)> = (0..6)
            .flat_map(|i| ((i + 1)..6).map(move |j| (i, j)))
            .collect();
        let plain = find_embedding(&edges, 6, &hw, &opts(11)).unwrap();
        let (port, _) = find_embedding_portfolio(&edges, 6, &hw, &opts(11), 1).unwrap();
        assert_eq!(plain, port);
    }

    #[test]
    fn portfolio_never_worse_than_its_arms() {
        let hw = Chimera::new(3).graph();
        let edges: Vec<(usize, usize)> = (0..7)
            .flat_map(|i| ((i + 1)..7).map(move |j| (i, j)))
            .collect();
        let (best, stats) = find_embedding_portfolio(&edges, 7, &hw, &opts(42), 4).unwrap();
        assert!(best.validate(&edges, &hw));
        assert!(stats.restarts >= 4, "every arm restarts at least once");
        // Re-run each arm's exact configuration serially: the portfolio
        // result must match the best of them.
        let mut arm_best = usize::MAX;
        for arm in 0..4u64 {
            let o = EmbedOptions {
                seed: 42u64.wrapping_add(arm.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                ..opts(42)
            };
            let e = find_embedding(&edges, 7, &hw, &o).unwrap();
            arm_best = arm_best.min(e.num_physical_qubits());
        }
        assert_eq!(best.num_physical_qubits(), arm_best);
    }

    #[test]
    fn portfolio_propagates_failure() {
        let hw = Chimera::new(1).graph();
        let mut edges = Vec::new();
        for i in 0..9 {
            for j in (i + 1)..9 {
                edges.push((i, j));
            }
        }
        let fast = EmbedOptions {
            tries: 2,
            rounds: 8,
            ..opts(8)
        };
        assert!(matches!(
            find_embedding_portfolio(&edges, 9, &hw, &fast, 3),
            Err(EmbedError::NoEmbeddingFound { .. })
        ));
    }

    #[test]
    fn empty_hardware_rejected() {
        let mut hw = HardwareGraph::new(2);
        hw.add_edge(0, 1);
        hw.deactivate(0);
        hw.deactivate(1);
        assert_eq!(
            find_embedding(&[(0, 1)], 2, &hw, &opts(9)),
            Err(EmbedError::EmptyHardware)
        );
    }
}
