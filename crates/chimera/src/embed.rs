//! Randomized minor-embedding heuristic in the style of Cai, Macready,
//! and Roy ("A practical heuristic for finding graph minors", 2014) — the
//! algorithm D-Wave's SAPI library uses, which the paper invokes for its
//! place-and-route step (§4.4).
//!
//! Each logical variable is mapped to a *chain* of physical qubits. The
//! heuristic grows chains along cheapest paths under an exponential
//! penalty for qubit reuse, then iteratively rips up and re-routes chains
//! until no qubit is claimed twice.
//!
//! # Performance
//!
//! CMR's cost is dominated by repeated shortest-path searches: every
//! rip-up round runs a multi-source Dijkstra from each neighbor chain of
//! each variable. The router therefore works out of a [`RouterScratch`]
//! allocated **once** per [`find_embedding`] call:
//!
//! * the hardware adjacency is flattened to CSR (offset + flat neighbor
//!   arrays, see [`crate::CsrNeighbors`]) for cache-friendly relaxation;
//! * `dist`/`parent` arrays are reset between Dijkstra runs by replaying
//!   a touched-node list instead of an O(|V|) fill, keeping the
//!   relaxation fast path to a single load-and-compare;
//! * the per-qubit reuse penalty `base^min(usage, 8)` is memoized in a
//!   flat weight array, updated incrementally when a qubit's usage count
//!   changes — no `powi` (and no indirect call) per edge relaxation;
//! * the binary heap is reused across runs.
//!
//! Work counters (heap pops, edge relaxations, weight updates) are
//! tallied in [`EmbedStats`] and flushed to the global telemetry recorder
//! as `qac_embed_*_total`, so speedups and regressions are attributable.
//!
//! Independent restarts can additionally run as a deterministic parallel
//! race (see [`EmbedOptions::parallel_restarts`]): per-try seeds come
//! from a dedicated splitmix64 family and the winner is chosen by
//! `(physical qubits, try index)`, so the result is byte-identical
//! whether the race runs on 1 thread or 8.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{CsrNeighbors, HardwareGraph};

/// Options for [`find_embedding`].
#[derive(Debug, Clone)]
pub struct EmbedOptions {
    /// RNG seed (the heuristic is randomized; the paper reports qubit
    /// counts "over 25 compilations" for this reason, §6.1).
    pub seed: u64,
    /// Independent restarts before giving up.
    pub tries: usize,
    /// Rip-up-and-reroute improvement rounds per try.
    pub rounds: usize,
    /// Base of the exponential reuse penalty.
    pub penalty_base: f64,
    /// Run the `tries` restarts as a deterministic parallel race instead
    /// of the sequential first-success loop.
    ///
    /// The race gives every try its own seed (derived with
    /// [`restart_seed`]), runs **all** tries, and keeps the embedding
    /// with the fewest physical qubits (ties broken by lowest try
    /// index). The result is a pure function of `(seed, tries)` — it
    /// does not depend on [`EmbedOptions::restart_threads`] — which is
    /// pinned by tests. `false` (the default) preserves the historical
    /// sequential semantics exactly: one RNG threaded through the tries,
    /// stopping at the first success.
    pub parallel_restarts: bool,
    /// Worker threads for the restart race; `0` means
    /// `available_parallelism`. Ignored unless
    /// [`EmbedOptions::parallel_restarts`] is set. Never affects the
    /// result, only the wall time.
    pub restart_threads: usize,
}

impl Default for EmbedOptions {
    fn default() -> EmbedOptions {
        EmbedOptions {
            seed: 0xe4bed,
            tries: 16,
            rounds: 40,
            penalty_base: 8.0,
            parallel_restarts: false,
            restart_threads: 0,
        }
    }
}

/// The golden-ratio increment used by splitmix64 to space stream states
/// (the same constant the engine and the sampler portfolio use).
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Salt folded into restart-race seeds so the family is disjoint from
/// the engine's job/attempt seeds (`splitmix64(batch + (job+1)·γ)`) and
/// the portfolio's arm seeds (`base + arm·γ`). Distinctness across all
/// three families is pinned by `crates/engine/tests/determinism.rs`.
const RESTART_SEED_SALT: u64 = 0x5eed_e4be_dace_d00d;

/// The splitmix64 output permutation (bijective avalanche mix).
fn splitmix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seed of restart `try_index` in a parallel restart race based on
/// `base` ([`EmbedOptions::seed`]).
///
/// `mix((base ⊕ salt) + (try+1)·γ)`: γ-spacing keeps per-try states
/// distinct, the salt keeps the family disjoint from the engine's and
/// the portfolio's seed derivations, and the finalizer decorrelates
/// neighbouring tries.
#[must_use]
pub fn restart_seed(base: u64, try_index: u64) -> u64 {
    splitmix64(
        (base ^ RESTART_SEED_SALT)
            .wrapping_add(try_index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)),
    )
}

/// Work counters for one embedding call — how much routing effort the
/// heuristic spent. A cache hit reports zero route iterations, which is
/// how tests distinguish warm from cold embeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EmbedStats {
    /// Rip-up-and-reroute rounds executed, summed over all restarts (and
    /// over all portfolio arms for [`find_embedding_portfolio`]).
    pub route_iterations: usize,
    /// Randomized restarts begun (1 = the first try succeeded).
    pub restarts: usize,
    /// Whether the embedding came out of an [`crate::EmbeddingCache`]
    /// without any routing work.
    pub cache_hit: bool,
    /// Dijkstra heap pops across all restarts.
    pub heap_pops: u64,
    /// Edges examined during Dijkstra relaxation across all restarts.
    pub edge_relaxations: u64,
    /// Stores into the memoized per-qubit weight array (incremental
    /// usage updates plus per-round penalty-base refills).
    pub weight_updates: u64,
}

impl EmbedStats {
    /// Accumulates another call's counters into this one.
    pub fn absorb(&mut self, other: &EmbedStats) {
        self.route_iterations += other.route_iterations;
        self.restarts += other.restarts;
        self.heap_pops += other.heap_pops;
        self.edge_relaxations += other.edge_relaxations;
        self.weight_updates += other.weight_updates;
    }
}

/// Why embedding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbedError {
    /// No valid embedding was found within the configured tries.
    NoEmbeddingFound {
        /// How many restarts were attempted.
        tries: usize,
    },
    /// The hardware graph has no active qubits.
    EmptyHardware,
}

impl std::fmt::Display for EmbedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbedError::NoEmbeddingFound { tries } => {
                write!(f, "no minor embedding found after {tries} tries")
            }
            EmbedError::EmptyHardware => write!(f, "hardware graph has no active qubits"),
        }
    }
}

impl std::error::Error for EmbedError {}

/// A minor embedding: one chain of physical qubits per logical variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Embedding {
    chains: Vec<Vec<usize>>,
}

impl Embedding {
    /// Wraps pre-computed chains as an embedding (used by template
    /// constructions; validity is the caller's responsibility until
    /// [`Embedding::validate`] is run).
    pub fn from_chains(chains: Vec<Vec<usize>>) -> Embedding {
        Embedding { chains }
    }

    /// The chain for logical variable `v`.
    pub fn chain(&self, v: usize) -> &[usize] {
        &self.chains[v]
    }

    /// All chains, indexed by logical variable.
    pub fn chains(&self) -> &[Vec<usize>] {
        &self.chains
    }

    /// Number of logical variables.
    pub fn num_vars(&self) -> usize {
        self.chains.len()
    }

    /// Total physical qubits used (the §6.1 metric).
    pub fn num_physical_qubits(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Length of the longest chain.
    pub fn max_chain_length(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks that the embedding is a valid minor embedding of the given
    /// logical edges: chains are non-empty, disjoint, connected, and every
    /// logical edge is backed by at least one physical coupler.
    pub fn validate(&self, edges: &[(usize, usize)], hardware: &HardwareGraph) -> bool {
        let mut owner = vec![usize::MAX; hardware.num_nodes()];
        for (v, chain) in self.chains.iter().enumerate() {
            if chain.is_empty() {
                return false;
            }
            for &q in chain {
                if !hardware.is_active(q) || owner[q] != usize::MAX {
                    return false;
                }
                owner[q] = v;
            }
            if !hardware.is_connected_subset(chain) {
                return false;
            }
        }
        edges.iter().all(|&(u, v)| {
            self.chains[u].iter().any(|&a| {
                hardware
                    .neighbors(a)
                    .iter()
                    .any(|&b| owner.get(b) == Some(&v))
            })
        })
    }
}

/// Finds a minor embedding of the logical graph given by `edges` over
/// `num_vars` variables into `hardware`.
///
/// Isolated logical variables (no incident edge) still receive a
/// single-qubit chain.
///
/// # Errors
/// [`EmbedError::NoEmbeddingFound`] after the configured restarts, or
/// [`EmbedError::EmptyHardware`].
pub fn find_embedding(
    edges: &[(usize, usize)],
    num_vars: usize,
    hardware: &HardwareGraph,
    options: &EmbedOptions,
) -> Result<Embedding, EmbedError> {
    find_embedding_with_stats(edges, num_vars, hardware, options).map(|(e, _)| e)
}

/// [`find_embedding`] that also reports how much routing work was done.
///
/// # Errors
/// Same as [`find_embedding`].
pub fn find_embedding_with_stats(
    edges: &[(usize, usize)],
    num_vars: usize,
    hardware: &HardwareGraph,
    options: &EmbedOptions,
) -> Result<(Embedding, EmbedStats), EmbedError> {
    if hardware.num_active() == 0 {
        return Err(EmbedError::EmptyHardware);
    }
    // Logical adjacency.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_vars];
    for &(u, v) in edges {
        assert!(u < num_vars && v < num_vars, "edge endpoint out of range");
        if u != v && !adj[u].contains(&v) {
            adj[u].push(v);
            adj[v].push(u);
        }
    }

    let mut stats = EmbedStats::default();
    let found = if options.parallel_restarts {
        race_restarts(&adj, hardware, options, &mut stats)
    } else {
        sequential_restarts(&adj, hardware, options, &mut stats)
    };
    flush_route_counters(&stats);
    match found {
        Some(mut embedding) => {
            trim_chains(&mut embedding, &adj, hardware);
            debug_assert!(embedding.validate(edges, hardware));
            Ok((embedding, stats))
        }
        None => Err(EmbedError::NoEmbeddingFound {
            tries: options.tries,
        }),
    }
}

/// Re-embeds after an edit by seeding the router with a previous
/// embedding: clean variables keep their chains, only `dirty` variables
/// (plus any chain a reroute conflicts with) are ripped up and routed
/// (DESIGN.md §14). The result is validated against `edges`; any
/// failure — seeding preconditions, routing, validation — falls back to
/// a full [`find_embedding_with_stats`] run, so the call never returns
/// a worse guarantee than a cold embed.
///
/// Counters: `qac_incr_reembed_partial_total` on a seeded success,
/// `qac_incr_reembed_full_total` when the fallback ran.
///
/// # Errors
/// Same as [`find_embedding`] (from the fallback path).
pub fn find_embedding_incremental(
    edges: &[(usize, usize)],
    num_vars: usize,
    hardware: &HardwareGraph,
    options: &EmbedOptions,
    prev: &Embedding,
    dirty: &[bool],
) -> Result<(Embedding, EmbedStats), EmbedError> {
    let seedable =
        prev.num_vars() == num_vars && dirty.len() == num_vars && hardware.num_active() > 0;
    if seedable {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_vars];
        for &(u, v) in edges {
            assert!(u < num_vars && v < num_vars, "edge endpoint out of range");
            if u != v && !adj[u].contains(&v) {
                adj[u].push(v);
                adj[v].push(u);
            }
        }
        let mut stats = EmbedStats::default();
        let mut rng = StdRng::seed_from_u64(options.seed);
        let mut scratch = RouterScratch::new(hardware);
        stats.restarts = 1;
        let found = attempt_seeded(
            &adj,
            hardware,
            options,
            &mut rng,
            &mut stats.route_iterations,
            &mut scratch,
            prev,
            dirty,
        );
        scratch.counters.accumulate_into(&mut stats);
        if let Some(embedding) = found {
            if embedding.validate(edges, hardware) {
                flush_route_counters(&stats);
                qac_telemetry::global().counter_add("qac_incr_reembed_partial_total", 1);
                return Ok((embedding, stats));
            }
        }
    }
    qac_telemetry::global().counter_add("qac_incr_reembed_full_total", 1);
    find_embedding_with_stats(edges, num_vars, hardware, options)
}

/// One seeded repair attempt: clean chains are pre-claimed, then rounds
/// re-route only the variables that are empty or conflicted. Unlike
/// [`attempt`], clean variables are never swept — the whole point is to
/// leave the untouched region of the layout alone.
#[allow(clippy::too_many_arguments)]
fn attempt_seeded(
    adj: &[Vec<usize>],
    hardware: &HardwareGraph,
    options: &EmbedOptions,
    rng: &mut StdRng,
    route_iterations: &mut usize,
    scratch: &mut RouterScratch,
    prev: &Embedding,
    dirty: &[bool],
) -> Option<Embedding> {
    let n = adj.len();
    let mut chains: Vec<Vec<usize>> = vec![Vec::new(); n];
    scratch.begin_attempt(n);
    for v in 0..n {
        // A clean chain whose qubits all still exist is kept verbatim; a
        // chain over a now-inactive qubit is treated as dirty.
        if !dirty[v] && prev.chain(v).iter().all(|&q| hardware.is_active(q)) {
            chains[v] = prev.chain(v).to_vec();
            for &q in &chains[v] {
                scratch.inc_usage(q);
            }
        }
    }
    // Variables whose chains this attempt rewrites (the masked-trim set).
    let mut touched: Vec<bool> = (0..n).map(|v| chains[v].is_empty()).collect();
    for round in 0..options.rounds {
        // Work list: empty chains plus anything a reroute collided with.
        let mut todo: Vec<usize> = (0..n)
            .filter(|&v| chains[v].is_empty() || chains[v].iter().any(|&q| scratch.usage[q] > 1))
            .collect();
        if todo.is_empty() {
            break;
        }
        *route_iterations += 1;
        scratch.set_round_base(options.penalty_base * (1.0 + round.min(12) as f64));
        for &v in &todo {
            for &q in &chains[v] {
                scratch.dec_usage(q);
            }
            chains[v].clear();
            touched[v] = true;
        }
        todo.shuffle(rng);
        for &v in &todo {
            let (chain, donations) = route_one(v, adj, &chains, scratch, rng)?;
            for &q in &chain {
                scratch.inc_usage(q);
            }
            chains[v] = chain;
            for (u, donated) in donations {
                for q in donated {
                    if !chains[u].contains(&q) {
                        scratch.inc_usage(q);
                        chains[u].push(q);
                        touched[u] = true;
                    }
                }
            }
        }
    }
    if chains.iter().any(Vec::is_empty) || scratch.usage.iter().any(|&u| u > 1) {
        return None;
    }
    let mut embedding = Embedding { chains };
    trim_chains_masked(&mut embedding, adj, hardware, Some(&touched));
    Some(embedding)
}

/// The historical restart loop: one RNG threaded through the tries,
/// stopping at the first success (so a seed's result is unchanged from
/// the pre-scratch implementation — the golden-router test pins this).
fn sequential_restarts(
    adj: &[Vec<usize>],
    hardware: &HardwareGraph,
    options: &EmbedOptions,
    stats: &mut EmbedStats,
) -> Option<Embedding> {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut scratch = RouterScratch::new(hardware);
    let mut found = None;
    for _try in 0..options.tries {
        stats.restarts += 1;
        if let Some(embedding) = attempt(
            adj,
            hardware,
            options,
            &mut rng,
            &mut stats.route_iterations,
            &mut scratch,
        ) {
            found = Some(embedding);
            break;
        }
    }
    scratch.counters.accumulate_into(stats);
    found
}

/// The deterministic parallel restart race: all `tries` run with
/// independent [`restart_seed`]s, distributed over scoped worker threads
/// by an atomic work queue; the winner is the successful try with the
/// fewest physical qubits, ties broken by the lowest try index. Every
/// part of the outcome (embedding, counters) is a pure function of
/// `(seed, tries)` — never of the thread count or scheduling.
/// One race worker's output: per-try `(try_index, embedding)` results in
/// claim order, the route iterations it spent, and its work counters.
type RaceWorkerOutput = (Vec<(usize, Option<Embedding>)>, usize, RouteCounters);

fn race_restarts(
    adj: &[Vec<usize>],
    hardware: &HardwareGraph,
    options: &EmbedOptions,
    stats: &mut EmbedStats,
) -> Option<Embedding> {
    let tries = options.tries;
    if tries == 0 {
        return None;
    }
    let threads = match options.restart_threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .clamp(1, tries);

    let next_try = AtomicUsize::new(0);
    let mut per_try: Vec<Option<Embedding>> = vec![None; tries];
    let mut worker_outputs: Vec<RaceWorkerOutput> = Vec::with_capacity(threads);
    // The job-scoped trace id does not cross thread spawns by itself;
    // capture it here and re-enter it in every race worker so flight
    // events recorded while routing attribute to the requesting job.
    let trace = qac_telemetry::current_trace();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next_try = &next_try;
                scope.spawn(move || {
                    let _trace = qac_telemetry::TraceScope::enter(trace);
                    let mut scratch = RouterScratch::new(hardware);
                    let mut local = Vec::new();
                    let mut route_iterations = 0usize;
                    loop {
                        let t = next_try.fetch_add(1, Ordering::Relaxed);
                        if t >= tries {
                            break;
                        }
                        let mut rng = StdRng::seed_from_u64(restart_seed(options.seed, t as u64));
                        let found = attempt(
                            adj,
                            hardware,
                            options,
                            &mut rng,
                            &mut route_iterations,
                            &mut scratch,
                        );
                        local.push((t, found));
                    }
                    (local, route_iterations, scratch.counters)
                })
            })
            .collect();
        for handle in handles {
            worker_outputs.push(handle.join().expect("restart race arm does not panic"));
        }
    });

    // Counters are additive, so their totals are independent of how the
    // work queue distributed tries over workers.
    for (local, route_iterations, counters) in worker_outputs {
        stats.route_iterations += route_iterations;
        counters.accumulate_into(stats);
        for (t, found) in local {
            per_try[t] = found;
        }
    }
    stats.restarts += tries;

    let mut winner: Option<(usize, usize, Embedding)> = None;
    for (t, embedding) in per_try.into_iter().enumerate() {
        let Some(embedding) = embedding else {
            continue;
        };
        let qubits = embedding.num_physical_qubits();
        // Strict `<` keeps the lowest try index on quality ties (tries
        // are visited in index order).
        if winner.as_ref().is_none_or(|(best, ..)| qubits < *best) {
            winner = Some((qubits, t, embedding));
        }
    }
    winner.map(|(qubits, t, embedding)| {
        qac_telemetry::global_flight().record(
            qac_telemetry::FlightKind::RestartWin,
            &format!("try:{t}"),
            qubits as f64,
        );
        embedding
    })
}

/// Reports the scratch work counters to the global telemetry recorder
/// (no-ops when telemetry is disabled).
fn flush_route_counters(stats: &EmbedStats) {
    let recorder = qac_telemetry::global();
    recorder.counter_add("qac_embed_heap_pops_total", stats.heap_pops);
    recorder.counter_add("qac_embed_edge_relaxations_total", stats.edge_relaxations);
    recorder.counter_add("qac_embed_weight_updates_total", stats.weight_updates);
}

/// Runs `attempts` independently-seeded embedding searches in parallel
/// (one thread each) and keeps the cheapest result, comparing by
/// `(physical qubits, max chain length)`. Arm 0 uses `options.seed`
/// verbatim, so a one-arm portfolio reproduces [`find_embedding`]
/// exactly; the winner is chosen deterministically regardless of thread
/// scheduling.
///
/// The paper compiles each program 25 times precisely because the CMR
/// heuristic is randomized (§6.1, "369 ± 26 physical qubits"); a
/// portfolio harvests that variance instead of suffering it.
///
/// # Errors
/// The first arm's error when every arm fails.
pub fn find_embedding_portfolio(
    edges: &[(usize, usize)],
    num_vars: usize,
    hardware: &HardwareGraph,
    options: &EmbedOptions,
    attempts: usize,
) -> Result<(Embedding, EmbedStats), EmbedError> {
    let attempts = attempts.max(1);
    let mut results: Vec<Result<(Embedding, EmbedStats), EmbedError>> =
        Vec::with_capacity(attempts);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..attempts)
            .map(|arm| {
                let arm_options = EmbedOptions {
                    seed: options
                        .seed
                        .wrapping_add((arm as u64).wrapping_mul(GOLDEN_GAMMA)),
                    ..options.clone()
                };
                scope.spawn(move || {
                    find_embedding_with_stats(edges, num_vars, hardware, &arm_options)
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("embedding arm does not panic"));
        }
    });

    let mut stats = EmbedStats::default();
    let mut best: Option<Embedding> = None;
    let mut first_err: Option<EmbedError> = None;
    for result in results {
        match result {
            Ok((embedding, arm_stats)) => {
                stats.absorb(&arm_stats);
                let better = best.as_ref().is_none_or(|b| {
                    (
                        embedding.num_physical_qubits(),
                        embedding.max_chain_length(),
                    ) < (b.num_physical_qubits(), b.max_chain_length())
                });
                if better {
                    best = Some(embedding);
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match best {
        Some(embedding) => Ok((embedding, stats)),
        None => Err(first_err.expect("at least one arm ran")),
    }
}

/// Finds an embedding with the randomized heuristic, falling back to the
/// deterministic clique template of `topology` when the heuristic fails
/// (dense logical graphs). The fallback is a [`Topology`](crate::Topology)
/// hook: families without a native template (Pegasus, Zephyr, king's
/// graph) return `None` from
/// [`clique_embedding`](crate::Topology::clique_embedding), so the
/// heuristic's error propagates instead of another family's template
/// being silently borrowed. The fallback requires all template qubits to
/// be active.
///
/// # Errors
/// [`EmbedError`] when both strategies fail.
pub fn find_embedding_or_clique<T: crate::Topology + ?Sized>(
    edges: &[(usize, usize)],
    num_vars: usize,
    topology: &T,
    hardware: &HardwareGraph,
    options: &EmbedOptions,
) -> Result<Embedding, EmbedError> {
    find_embedding_or_clique_with_stats(edges, num_vars, topology, hardware, options)
        .map(|(e, _)| e)
}

/// [`find_embedding_or_clique`] that also reports routing-work counters.
/// A clique-template fallback reports the nominal work of the failed
/// heuristic attempts (`tries × rounds`).
///
/// The router itself ([`find_embedding_with_stats`] and its CSR
/// `RouterScratch`) is already topology-generic — it sees only the
/// [`HardwareGraph`] — so this wrapper is the single place the family
/// matters.
///
/// # Errors
/// Same as [`find_embedding_or_clique`].
pub fn find_embedding_or_clique_with_stats<T: crate::Topology + ?Sized>(
    edges: &[(usize, usize)],
    num_vars: usize,
    topology: &T,
    hardware: &HardwareGraph,
    options: &EmbedOptions,
) -> Result<(Embedding, EmbedStats), EmbedError> {
    match find_embedding_with_stats(edges, num_vars, hardware, options) {
        Ok(found) => Ok(found),
        Err(err) => {
            if let Some(embedding) = topology.clique_embedding(num_vars) {
                if embedding.validate(edges, hardware) {
                    let stats = EmbedStats {
                        route_iterations: options.tries * options.rounds,
                        restarts: options.tries,
                        ..EmbedStats::default()
                    };
                    return Ok((embedding, stats));
                }
            }
            Err(err)
        }
    }
}

/// `parent` sentinel: the node is a Dijkstra source (or unreached).
const NO_PARENT: u32 = u32::MAX;

/// Max-heap entry on reversed order; ties between equal distances are
/// resolved purely by heap structure, which is a deterministic function
/// of the push/pop sequence.
///
/// The key is the distance\'s IEEE-754 bit pattern: for non-negative
/// finite floats (which all path distances are) the bit order equals the
/// numeric order, and equal bits ⇔ equal distances, so integer-keyed
/// sifts reproduce the float-keyed heap\'s structure exactly — at one
/// `cmp` per comparison instead of float-compare branching.
#[derive(PartialEq, Eq)]
struct Entry(u64, u32);
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> std::cmp::Ordering {
        // Only the key participates: equal distances must compare Equal
        // regardless of node id, or tie-breaking would leave the heap\'s
        // hands and the routed chains would change.
        other.0.cmp(&self.0)
    }
}

/// Deterministic work counters for one scratch's lifetime.
#[derive(Debug, Clone, Copy, Default)]
struct RouteCounters {
    heap_pops: u64,
    edge_relaxations: u64,
    weight_updates: u64,
}

impl RouteCounters {
    fn accumulate_into(&self, stats: &mut EmbedStats) {
        stats.heap_pops += self.heap_pops;
        stats.edge_relaxations += self.edge_relaxations;
        stats.weight_updates += self.weight_updates;
    }
}

/// One *resumable* Dijkstra layer. Instead of epoch-stamping, the layer
/// keeps the list of nodes it touched and eagerly resets exactly those
/// distances to ∞ on the next [`DijkstraLayer::seed`] — so the
/// relaxation fast path (by far the hottest loop in the router) is a
/// single 8-byte load and compare, with no stamp to check. The layer
/// owns its frontier heap, so the search can pause at a distance bound
/// and resume with a larger one without redoing (or reordering) any
/// work.
struct DijkstraLayer {
    /// Tentative/final distance per node; ∞ ⇔ untouched this search.
    dist: Vec<f64>,
    /// Predecessor per node; meaningful only for touched nodes
    /// ([`NO_PARENT`] marks a source). Stale values from earlier
    /// searches are never read: path walks start at a finalized node
    /// and every hop lands on a node written this search.
    parent: Vec<u32>,
    /// Every node whose `dist` was written this search (sources and
    /// relaxed nodes) — the reset list for the next `seed`.
    touched: Vec<u32>,
    /// Bitset of finalized nodes (popped non-stale ⇒ dist is exact).
    /// Cleared on seed — it is `n/64` words, not `n`.
    fin: Vec<u64>,
    heap: BinaryHeap<Entry>,
    /// An entry popped past the bound, parked for the next resume. No
    /// push can happen while the layer is paused, so it is still ≤
    /// every heap entry and re-delivering it first preserves the exact
    /// pop sequence (while saving a peek per pop in the hot loop).
    pending: Option<Entry>,
    /// The frontier drained completely: every reachable node is final.
    exhausted: bool,
}

impl DijkstraLayer {
    fn new(n: usize) -> DijkstraLayer {
        DijkstraLayer {
            dist: vec![f64::INFINITY; n],
            parent: vec![NO_PARENT; n],
            touched: Vec::new(),
            fin: vec![0; n.div_ceil(64)],
            heap: BinaryHeap::new(),
            pending: None,
            exhausted: false,
        }
    }

    /// Starts a fresh multi-source search from `chain` (distance 0,
    /// parent [`NO_PARENT`]). No relaxation happens until
    /// [`DijkstraLayer::run_until`].
    fn seed(&mut self, chain: &[usize]) {
        for &t in &self.touched {
            self.dist[t as usize] = f64::INFINITY;
        }
        self.touched.clear();
        self.fin.fill(0);
        self.heap.clear();
        self.pending = None;
        self.exhausted = false;
        for &q in chain {
            self.dist[q] = 0.0;
            self.parent[q] = NO_PARENT;
            self.touched.push(q as u32);
            self.heap.push(Entry(0.0f64.to_bits(), q as u32));
        }
    }

    /// Advances the search until the frontier's nearest node is farther
    /// than `bound` (or the frontier drains). Distances are
    /// non-decreasing along any path, so on return every node with a
    /// true distance ≤ `bound` is final — and every non-final node is
    /// provably farther than `bound`. Resuming with a larger bound
    /// continues the *same* pop sequence, which is what keeps bounded
    /// runs byte-identical to an unbounded flood.
    ///
    /// Sources need no explicit skip: they sit at distance 0, and no
    /// relaxation can beat 0 with non-negative weights, so they are
    /// never re-parented — exactly the behavior of the historical
    /// explicit `is_source` check.
    fn run_until(
        &mut self,
        bound: f64,
        weight: &[f64],
        csr: &CsrNeighbors,
        counters: &mut RouteCounters,
    ) {
        if self.exhausted {
            return;
        }
        let bound_bits = bound.to_bits();
        let mut next_entry = self.pending.take();
        loop {
            let Entry(d_bits, q32) = match next_entry.take().or_else(|| self.heap.pop()) {
                Some(e) => e,
                None => {
                    self.exhausted = true;
                    return;
                }
            };
            if d_bits > bound_bits {
                self.pending = Some(Entry(d_bits, q32));
                return;
            }
            let d = f64::from_bits(d_bits);
            counters.heap_pops += 1;
            let q = q32 as usize;
            if d > self.dist[q] {
                continue; // stale entry; q was finalized closer
            }
            self.fin[q >> 6] |= 1u64 << (q & 63);
            // Stepping q → next adds q's own weight (q becomes interior),
            // except when q is a source chain node (free).
            let step = if self.parent[q] == NO_PARENT {
                0.0
            } else {
                weight[q]
            };
            let row = csr.neighbors(q);
            counters.edge_relaxations += row.len() as u64;
            let nd = d + step;
            for &next in row {
                let n = next as usize;
                let known = self.dist[n];
                if nd < known {
                    // ∞ ⇔ first touch this search (every relaxed nd is
                    // finite): record it for the next seed's reset.
                    if known == f64::INFINITY {
                        self.touched.push(next);
                    }
                    self.dist[n] = nd;
                    self.parent[n] = q32;
                    self.heap.push(Entry(nd.to_bits(), next));
                }
            }
        }
    }

    #[inline]
    fn parent(&self, q: usize) -> u32 {
        debug_assert!(
            self.dist[q].is_finite(),
            "parent queried for a node untouched by this search"
        );
        self.parent[q]
    }

    /// A proven lower bound on the true distance of every node this
    /// layer has *not* finalized (∞ once the frontier drains). Take the
    /// unfinalized node u with minimal true distance d*: the first
    /// unfinalized node along u's shortest path holds an unpopped entry
    /// keyed exactly at its true distance ≤ d*, and the parked entry is
    /// ≤ every live entry — so parked key ≤ d*.
    fn certified_level(&self) -> f64 {
        if self.exhausted {
            f64::INFINITY
        } else {
            match &self.pending {
                Some(e) => f64::from_bits(e.0),
                // Not yet advanced: only the trivial bound holds.
                None => 0.0,
            }
        }
    }
}

/// The router's reusable working set: allocated once per
/// [`find_embedding`] call (or once per race worker) and shared by every
/// Dijkstra invocation across all rounds and restarts.
struct RouterScratch {
    /// CSR copy of the hardware adjacency restricted to **active**
    /// targets, in [`HardwareGraph`] neighbor order (order matters: it
    /// fixes heap tie-breaking; dropping inactive targets is behaviorally
    /// identical to skipping them per-edge, since an inactive qubit is
    /// never a source and never relaxed).
    csr: CsrNeighbors,
    /// Active flags, copied out of the hardware graph once.
    active: Vec<bool>,
    /// Current qubit usage counts (how many chains claim each qubit).
    usage: Vec<u32>,
    /// Memoized reuse penalty: `pow[min(usage[q], 8)]` for active
    /// qubits, `+∞` for inactive ones. Kept in sync incrementally by
    /// [`RouterScratch::inc_usage`]/[`RouterScratch::dec_usage`] and
    /// refilled when the round's penalty base changes.
    weight: Vec<f64>,
    /// `pow[k] = base^k` for the current round's base.
    pow: [f64; 9],
    /// The base `pow`/`weight` were computed for (NaN = needs refill).
    weight_base: f64,
    /// One Dijkstra layer per embedded neighbor of the variable being
    /// routed; grows to the maximum logical degree encountered.
    layers: Vec<DijkstraLayer>,
    /// Root cost of each variable's previous successful route — the
    /// starting guess for the deepening bound (a perf hint only; a wrong
    /// guess costs extra deepening iterations, never a different result).
    prev_cost: Vec<f64>,
    /// Per-layer deepening targets for the current [`route_one`] call
    /// (reused across calls to stay allocation-free).
    deepen_targets: Vec<f64>,
    /// Per-layer certified levels, snapshotted once per audit pass.
    deepen_certs: Vec<f64>,
    counters: RouteCounters,
}

impl RouterScratch {
    fn new(hardware: &HardwareGraph) -> RouterScratch {
        let n = hardware.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for q in 0..n {
            targets.extend(
                hardware
                    .neighbors(q)
                    .iter()
                    .filter(|&&t| hardware.is_active(t))
                    .map(|&t| t as u32),
            );
            offsets.push(targets.len() as u32);
        }
        RouterScratch {
            csr: CsrNeighbors::from_parts(offsets, targets),
            active: (0..n).map(|q| hardware.is_active(q)).collect(),
            usage: vec![0; n],
            weight: vec![f64::INFINITY; n],
            pow: [0.0; 9],
            weight_base: f64::NAN,
            layers: Vec::new(),
            prev_cost: Vec::new(),
            deepen_targets: Vec::new(),
            deepen_certs: Vec::new(),
            counters: RouteCounters::default(),
        }
    }

    /// Clears per-attempt state (usage counts, bound hints; the weight
    /// memo is refilled lazily by the next
    /// [`RouterScratch::set_round_base`]).
    fn begin_attempt(&mut self, num_vars: usize) {
        self.usage.fill(0);
        self.weight_base = f64::NAN;
        self.prev_cost.clear();
        self.prev_cost.resize(num_vars, f64::INFINITY);
    }

    /// Installs the round's penalty base, rebuilding the power table and
    /// the weight memo if the base changed (it escalates for the first
    /// 13 rounds, then stays constant).
    fn set_round_base(&mut self, base: f64) {
        if self.weight_base == base {
            return;
        }
        for (k, slot) in self.pow.iter_mut().enumerate() {
            // Same `powi` the pre-scratch router used per relaxation, so
            // the memoized weights are bit-identical to the originals.
            *slot = base.powi(k as i32);
        }
        for q in 0..self.weight.len() {
            self.weight[q] = if self.active[q] {
                self.pow[self.usage[q].min(8) as usize]
            } else {
                f64::INFINITY
            };
        }
        self.counters.weight_updates += self.weight.len() as u64;
        self.weight_base = base;
    }

    #[inline]
    fn inc_usage(&mut self, q: usize) {
        self.usage[q] += 1;
        if self.active[q] {
            self.weight[q] = self.pow[self.usage[q].min(8) as usize];
            self.counters.weight_updates += 1;
        }
    }

    #[inline]
    fn dec_usage(&mut self, q: usize) {
        self.usage[q] -= 1;
        if self.active[q] {
            self.weight[q] = self.pow[self.usage[q].min(8) as usize];
            self.counters.weight_updates += 1;
        }
    }

    fn ensure_layers(&mut self, count: usize) {
        let n = self.usage.len();
        while self.layers.len() < count {
            self.layers.push(DijkstraLayer::new(n));
        }
    }
}

/// One randomized embedding attempt. Every rip-up-and-reroute round begun
/// is counted into `route_iterations`.
fn attempt(
    adj: &[Vec<usize>],
    hardware: &HardwareGraph,
    options: &EmbedOptions,
    rng: &mut StdRng,
    route_iterations: &mut usize,
    scratch: &mut RouterScratch,
) -> Option<Embedding> {
    let n = adj.len();
    let hw_n = hardware.num_nodes();
    let mut chains: Vec<Vec<usize>> = vec![Vec::new(); n];
    scratch.begin_attempt(n);

    // Randomized BFS order over the logical graph: each variable is
    // placed while its already-placed neighbors sit close together, which
    // keeps the initial placement compact (long chains mostly come from
    // scattered placement).
    let mut order: Vec<usize> = Vec::with_capacity(n);
    {
        let mut seen = vec![false; n];
        let mut starts: Vec<usize> = (0..n).collect();
        starts.sort_by_key(|&v| std::cmp::Reverse(adj[v].len()));
        for &start in &starts {
            if seen[start] {
                continue;
            }
            let mut queue = std::collections::VecDeque::from([start]);
            seen[start] = true;
            while let Some(v) = queue.pop_front() {
                order.push(v);
                let mut next: Vec<usize> = adj[v].iter().copied().filter(|&u| !seen[u]).collect();
                next.shuffle(rng);
                for u in next {
                    seen[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }

    /// Extra improvement rounds after the first valid embedding.
    const POLISH_ROUNDS: usize = 8;
    let mut best: Option<(usize, Vec<Vec<usize>>)> = None;
    let mut first_success: Option<usize> = None;

    for round in 0..options.rounds {
        *route_iterations += 1;
        // The reuse penalty escalates with the improvement round so that
        // a persistent overlap eventually becomes costlier than any
        // detour (capped so polish rounds can still contract the layout).
        scratch.set_round_base(options.penalty_base * (1.0 + round.min(12) as f64));
        let mut overfull = false;
        // Conflict-directed rip-up: a pair of chains sharing a qubit can
        // oscillate forever if rerouted one at a time (each re-choosing
        // the overlap as its cheapest option). Tearing out every
        // conflicted chain simultaneously breaks the deadlock.
        let mut conflicted: Vec<usize> = (0..n)
            .filter(|&v| chains[v].iter().any(|&q| scratch.usage[q] > 1))
            .collect();
        for &v in &conflicted {
            for &q in &chains[v] {
                scratch.dec_usage(q);
            }
            chains[v].clear();
        }
        conflicted.shuffle(rng);
        let sequence: Vec<usize> = conflicted
            .iter()
            .copied()
            .chain(order.iter().copied().filter(|v| !conflicted.contains(v)))
            .collect();
        for &v in &sequence {
            // Rip up v.
            for &q in &chains[v] {
                scratch.dec_usage(q);
            }
            chains[v].clear();
            // Re-route v (paths may donate qubits to neighbor chains).
            let (chain, donations) = route_one(v, adj, &chains, scratch, rng)?;
            for &q in &chain {
                scratch.inc_usage(q);
            }
            chains[v] = chain;
            for (u, donated) in donations {
                for q in donated {
                    if !chains[u].contains(&q) {
                        scratch.inc_usage(q);
                        chains[u].push(q);
                    }
                }
            }
        }
        for &u in scratch.usage.iter() {
            if u > 1 {
                overfull = true;
                break;
            }
        }
        if !overfull && chains.iter().all(|c| !c.is_empty()) {
            let total: usize = chains.iter().map(Vec::len).sum();
            let improved = best.as_ref().is_none_or(|(bt, _)| total < *bt);
            if improved {
                best = Some((total, chains.clone()));
            }
            if first_success.is_none() {
                first_success = Some(round);
            }
            // Polish budget: keep rerouting a while to shrink chains,
            // then stop (CMR's improvement phase).
            if round >= first_success.unwrap() + POLISH_ROUNDS {
                break;
            }
        }
        if std::env::var_os("QAC_EMBED_DEBUG").is_some() {
            let maxu = scratch.usage.iter().max().copied().unwrap_or(0);
            let total: usize = chains.iter().map(Vec::len).sum();
            let conflicts: Vec<(usize, Vec<usize>)> = (0..hw_n)
                .filter(|&q| scratch.usage[q] > 1)
                .map(|q| {
                    let owners: Vec<usize> = (0..n).filter(|&v| chains[v].contains(&q)).collect();
                    (q, owners)
                })
                .collect();
            eprintln!(
                "round {round}: max_usage={maxu} total_chain_qubits={total} conflicts={conflicts:?}"
            );
        }
        // Mild reshuffle between rounds helps escape ties.
        if round % 4 == 3 {
            order.shuffle(rng);
        }
    }
    best.map(|(_, chains)| Embedding { chains })
}

/// Computes a chain for `v` connecting to all currently-embedded
/// neighbors, using weighted Dijkstra from each neighbor chain (out of
/// the scratch's memoized weights and reusable layers).
#[allow(clippy::type_complexity)]
fn route_one(
    v: usize,
    adj: &[Vec<usize>],
    chains: &[Vec<usize>],
    scratch: &mut RouterScratch,
    rng: &mut StdRng,
) -> Option<(Vec<usize>, Vec<(usize, Vec<usize>)>)> {
    let embedded_neighbors: Vec<usize> = adj[v]
        .iter()
        .copied()
        .filter(|&u| !chains[u].is_empty())
        .collect();

    if embedded_neighbors.is_empty() {
        // Fresh start: any cheapest active qubit.
        let mut best: Vec<usize> = Vec::new();
        let mut best_w = f64::INFINITY;
        for (q, &w) in scratch.weight.iter().enumerate() {
            if w < best_w {
                best_w = w;
                best.clear();
                best.push(q);
            } else if w == best_w {
                best.push(q);
            }
        }
        if best.is_empty() || best_w.is_infinite() {
            return None;
        }
        return Some((vec![best[rng.gen_range(0..best.len())]], Vec::new()));
    }

    // Bounded multi-source Dijkstra from each neighbor chain into its
    // own scratch layer, then pick the root g minimizing
    // w(g) + Σ dist_u(g), where dist excludes the endpoint's own weight
    // (g is paid for exactly once).
    //
    // The searches are advanced by iterative deepening with per-layer
    // bounds: run each layer up to its own target, scan for the best
    // root among nodes that are *final* in every layer, and stop once a
    // certificate audit (below) proves no unscanned node could have
    // entered the ±1e-12 tie list. Bounding is thus invisible: the tie
    // list, the RNG draw, and the resulting chain are byte-identical to
    // an unbounded flood (the golden-router test pins this). On a large
    // chip this is the difference between flooding 2048 qubits per
    // reroute (k times over) and touching only the k small balls that
    // can actually win.
    let k = embedded_neighbors.len();
    scratch.ensure_layers(k);
    for (i, &u) in embedded_neighbors.iter().enumerate() {
        scratch.layers[i].seed(&chains[u]);
    }
    // Per-layer deepening targets. Balanced small balls beat one deep
    // flood: the winning root's per-layer distances sum to at most
    // best − 1 (its own weight covers the rest), so start every layer at
    // the uniform share of the previous round's cost and let the audit
    // below deepen only the layers that still owe proof. The target
    // schedule is pure performance — ANY schedule that passes the audit
    // produces the identical tie list (the golden-router test pins it).
    let hint = scratch.prev_cost[v];
    let denom = (k.max(2) - 1) as f64;
    let init = if hint.is_finite() {
        ((hint - 1.0) / denom).max(0.0)
    } else {
        2.0
    };
    scratch.deepen_targets.clear();
    scratch.deepen_targets.resize(k, init);
    let mut best_g: Vec<usize> = Vec::new();
    let mut best_cost;
    loop {
        for i in 0..k {
            scratch.layers[i].run_until(
                scratch.deepen_targets[i],
                &scratch.weight,
                &scratch.csr,
                &mut scratch.counters,
            );
        }
        best_cost = f64::INFINITY;
        best_g.clear();
        // Candidate roots are nodes final in *every* layer: AND the
        // finalized bitsets word by word, then walk the set bits in
        // ascending order (the same candidate order as a plain 0..n
        // sweep, which the tie list depends on).
        for w in 0..scratch.layers[0].fin.len() {
            let mut acc = scratch.layers[0].fin[w];
            for layer in &scratch.layers[1..k] {
                acc &= layer.fin[w];
            }
            while acc != 0 {
                let g = (w << 6) + acc.trailing_zeros() as usize;
                acc &= acc - 1;
                let wg = scratch.weight[g];
                if wg.is_infinite() {
                    continue;
                }
                let mut total = wg;
                for layer in &scratch.layers[..k] {
                    total += layer.dist[g];
                }
                if total < best_cost - 1e-12 {
                    best_cost = total;
                    best_g.clear();
                    best_g.push(g);
                } else if (total - best_cost).abs() <= 1e-12 {
                    best_g.push(g);
                }
            }
        }
        if scratch.layers[..k].iter().all(|l| l.exhausted) {
            break; // Every reachable node is final; the scan was exact.
        }
        if !best_cost.is_finite() {
            // The balls have not met yet: grow every live layer
            // geometrically, staying balanced.
            for i in 0..k {
                if !scratch.layers[i].exhausted {
                    let t = &mut scratch.deepen_targets[i];
                    *t = *t * 1.5 + 0.5;
                }
            }
            continue;
        }
        // ---- Certificate audit ----------------------------------------
        // `best_cost` came from a scan of fully-finalized nodes, so it is
        // exact for those; the audit must prove every OTHER node's total
        // exceeds best + tie-tolerance. Per-layer certified level C_i
        // lower-bounds any dist that layer has not finalized, and every
        // candidate's own weight is ≥ pow[0] = 1 exactly, so:
        //   · finalized nowhere:  total > 1 + Σ C_i          (global check)
        //   · finalized in S ⊊ layers:
        //       total ≥ w(g) + Σ_S dist_i(g) + Σ_∉S C_i      (per-node audit)
        // Margins are conservative: auditing against best + 1e-9 and
        // escalating to cover best + 2e-9 can only delay certification
        // (the tie tolerance is 1e-12), never admit a wrong tie list.
        // Progress is guaranteed: a failed check always names a layer
        // whose certified level is below `cap`, and run_until leaves the
        // parked frontier strictly above the bound it ran to, so that
        // layer's target strictly increases; at all-targets = cap every
        // check passes (cap is the old single-bound certificate).
        let cap = best_cost - 1.0 + 2e-9;
        scratch.deepen_certs.clear();
        for i in 0..k {
            scratch
                .deepen_certs
                .push(scratch.layers[i].certified_level());
        }
        let sum_c: f64 = scratch.deepen_certs.iter().sum();
        let mut escalated = false;
        if 1.0 + sum_c <= best_cost + 1e-9 {
            // Global deficit: spread it over the live layers.
            let live = scratch
                .deepen_certs
                .iter()
                .filter(|c| c.is_finite())
                .count();
            let share = (best_cost + 2e-9 - 1.0 - sum_c) / live.max(1) as f64;
            for i in 0..k {
                if scratch.deepen_certs[i].is_finite() {
                    let t = &mut scratch.deepen_targets[i];
                    let nt = (scratch.deepen_certs[i] + share)
                        .max(*t * 1.5 + 0.5)
                        .min(cap);
                    if nt > *t {
                        *t = nt;
                        escalated = true;
                    }
                }
            }
        }
        // Audit nodes finalized in some layers but not all: walk
        // (∪ fin) \ (∩ fin) and escalate exactly the layers that fail to
        // prove a node uncompetitive.
        for w in 0..scratch.layers[0].fin.len() {
            let mut all = scratch.layers[0].fin[w];
            let mut any = all;
            for layer in &scratch.layers[1..k] {
                all &= layer.fin[w];
                any |= layer.fin[w];
            }
            let mut part = any & !all;
            while part != 0 {
                let g = (w << 6) + part.trailing_zeros() as usize;
                let bit = 1u64 << (g & 63);
                part &= part - 1;
                let wg = scratch.weight[g];
                if wg.is_infinite() {
                    continue;
                }
                let mut lb = wg;
                for (i, layer) in scratch.layers[..k].iter().enumerate() {
                    lb += if layer.fin[w] & bit != 0 {
                        layer.dist[g]
                    } else {
                        scratch.deepen_certs[i]
                    };
                }
                if lb <= best_cost + 1e-9 {
                    for i in 0..k {
                        if scratch.layers[i].fin[w] & bit == 0 {
                            let need = (best_cost + 2e-9 - (lb - scratch.deepen_certs[i])).min(cap);
                            let t = &mut scratch.deepen_targets[i];
                            if need > *t {
                                *t = need;
                                escalated = true;
                            }
                        }
                    }
                }
            }
        }
        if !escalated {
            break; // Certified: the tie list is provably complete.
        }
    }
    if best_g.is_empty() {
        return None;
    }
    scratch.prev_cost[v] = best_cost;
    let g = best_g[rng.gen_range(0..best_g.len())];

    // Collect the paths g → each neighbor chain. Following minorminer,
    // each path's interior is split: the half nearer g joins v's chain,
    // the half nearer u is donated to u's chain. This keeps hub
    // variables from accumulating enormous chains, which matters both
    // for qubit counts (§6.1) and for sampler mixing.
    let mut chain: Vec<usize> = vec![g];
    let mut donations: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, &u) in embedded_neighbors.iter().enumerate() {
        let mut interior: Vec<usize> = Vec::new();
        let mut cur = g;
        loop {
            let p = scratch.layers[i].parent(cur);
            if p == NO_PARENT {
                break; // cur is inside chain(u)
            }
            let p = p as usize;
            if p == cur {
                break;
            }
            cur = p;
            if chains[u].contains(&cur) {
                break;
            }
            interior.push(cur);
        }
        // interior[0] is adjacent to g, interior.last() adjacent to chain(u).
        let keep = interior.len().div_ceil(2);
        let mut donated: Vec<usize> = Vec::new();
        for (pos, q) in interior.into_iter().enumerate() {
            if pos < keep {
                if !chain.contains(&q) {
                    chain.push(q);
                }
            } else if !chain.contains(&q) && !donated.contains(&q) {
                donated.push(q);
            }
        }
        if !donated.is_empty() {
            donations.push((u, donated));
        }
    }
    Some((chain, donations))
}

/// Removes chain qubits that are not needed for connectivity or for any
/// logical edge (cheap post-pass; reduces the §6.1 qubit counts).
///
/// Works on per-qubit alive flags over the original chain order — the
/// candidate scan order and therefore the result are identical to the
/// historical clone-per-scan implementation, without its O(L²) copies.
fn trim_chains(embedding: &mut Embedding, adj: &[Vec<usize>], hardware: &HardwareGraph) {
    trim_chains_masked(embedding, adj, hardware, None);
}

/// [`trim_chains`] restricted to the variables `mask` marks (all of them
/// when `mask` is `None`). The incremental re-embed trims only the
/// chains it rewrote — untouched chains were already trimmed by the run
/// that produced them, and re-trimming them could move qubits the
/// caller promised to keep.
fn trim_chains_masked(
    embedding: &mut Embedding,
    adj: &[Vec<usize>],
    hardware: &HardwareGraph,
    mask: Option<&[bool]>,
) {
    let n = embedding.chains.len();
    let mut rest: Vec<usize> = Vec::new();
    for (v, logical_neighbors) in adj.iter().enumerate().take(n) {
        if mask.is_some_and(|m| !m[v]) {
            continue;
        }
        let len = embedding.chains[v].len();
        if len <= 1 {
            continue;
        }
        let mut alive = vec![true; len];
        let mut alive_count = len;
        // Repeatedly scan candidates in (surviving) chain order, drop the
        // first removable qubit, and restart — the fixed point is reached
        // when a full scan removes nothing.
        'scan: while alive_count > 1 {
            let chain = &embedding.chains[v];
            for idx in 0..len {
                if !alive[idx] {
                    continue;
                }
                rest.clear();
                rest.extend(
                    chain
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| alive[i] && i != idx)
                        .map(|(_, &q)| q),
                );
                if !hardware.is_connected_subset(&rest) {
                    continue;
                }
                // Every logical neighbor must stay physically adjacent.
                let still_ok = logical_neighbors.iter().all(|&u| {
                    let other = &embedding.chains[u];
                    rest.iter()
                        .any(|&a| hardware.neighbors(a).iter().any(|&b| other.contains(&b)))
                });
                if still_ok {
                    alive[idx] = false;
                    alive_count -= 1;
                    continue 'scan;
                }
            }
            break;
        }
        if alive_count < len {
            let kept: Vec<usize> = embedding.chains[v]
                .iter()
                .enumerate()
                .filter(|&(i, _)| alive[i])
                .map(|(_, &q)| q)
                .collect();
            embedding.chains[v] = kept;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Chimera;

    fn opts(seed: u64) -> EmbedOptions {
        EmbedOptions {
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn single_variable() {
        let hw = Chimera::new(1).graph();
        let e = find_embedding(&[], 1, &hw, &opts(1)).unwrap();
        assert_eq!(e.num_vars(), 1);
        assert_eq!(e.num_physical_qubits(), 1);
        assert!(e.validate(&[], &hw));
    }

    #[test]
    fn edge_embeds_directly() {
        let hw = Chimera::new(1).graph();
        let edges = [(0, 1)];
        let e = find_embedding(&edges, 2, &hw, &opts(2)).unwrap();
        assert!(e.validate(&edges, &hw));
        // An edge fits on adjacent qubits without chains.
        assert_eq!(e.num_physical_qubits(), 2);
    }

    #[test]
    fn triangle_needs_a_chain() {
        // Chimera is bipartite: K3 requires at least one 2-qubit chain.
        let hw = Chimera::new(1).graph();
        let edges = [(0, 1), (1, 2), (0, 2)];
        let e = find_embedding(&edges, 3, &hw, &opts(3)).unwrap();
        assert!(e.validate(&edges, &hw));
        assert!(e.num_physical_qubits() >= 4);
        assert!(e.max_chain_length() >= 2);
    }

    #[test]
    fn k5_embeds_in_one_cell_plus() {
        let hw = Chimera::new(2).graph();
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let e = find_embedding(&edges, 5, &hw, &opts(4)).unwrap();
        assert!(e.validate(&edges, &hw));
    }

    #[test]
    fn k8_embeds_in_c4_via_fallback() {
        let chimera = Chimera::new(4);
        let hw = chimera.graph();
        let mut edges = Vec::new();
        for i in 0..8 {
            for j in (i + 1)..8 {
                edges.push((i, j));
            }
        }
        let fast = EmbedOptions {
            tries: 2,
            rounds: 12,
            ..opts(5)
        };
        let e = find_embedding_or_clique(&edges, 8, &chimera, &hw, &fast).unwrap();
        assert!(e.validate(&edges, &hw));
    }

    #[test]
    fn pegasus_has_no_chimera_template_and_uses_the_router() {
        // Satellite regression: the clique fallback is a Topology hook.
        // Pegasus returns None from clique_embedding, so a dense graph
        // either routes heuristically on the *Pegasus* graph or fails
        // outright — it must never come back as Chimera's triangle
        // template (whose qubit indices mean something else entirely on
        // a Pegasus fabric).
        let pegasus = crate::Pegasus::new(2);
        let hw = pegasus.graph();
        let mut edges = Vec::new();
        for i in 0..6 {
            for j in (i + 1)..6 {
                edges.push((i, j));
            }
        }
        // K6 routes fine on P2 (degree 15): the hook returning None must
        // not prevent the heuristic from succeeding.
        let e = find_embedding_or_clique(&edges, 6, &pegasus, &hw, &opts(3)).unwrap();
        assert!(e.validate(&edges, &hw));

        // An impossible problem (more variables than qubits) must
        // surface the router's error — with no template to fall back
        // on, there is nothing to mask it.
        let n = pegasus.num_qubits() + 1;
        let big: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let fast = EmbedOptions {
            tries: 1,
            rounds: 4,
            ..opts(9)
        };
        assert!(matches!(
            find_embedding_or_clique_with_stats(&big, n, &pegasus, &hw, &fast),
            Err(EmbedError::NoEmbeddingFound { .. })
        ));
    }

    #[test]
    fn clique_template_is_valid_up_to_4m() {
        for m in [2usize, 4] {
            let chimera = Chimera::new(m);
            let hw = chimera.graph();
            for n in [1usize, 4, 4 * m - 1, 4 * m] {
                let mut edges = Vec::new();
                for i in 0..n {
                    for j in (i + 1)..n {
                        edges.push((i, j));
                    }
                }
                let e = chimera.clique_embedding(n).unwrap();
                assert!(e.validate(&edges, &hw), "K{n} template on C{m}");
            }
            assert!(chimera.clique_embedding(4 * m + 1).is_none());
        }
    }

    #[test]
    fn random_sparse_graph_embeds_with_dropout() {
        let hw = Chimera::new(4).graph_with_dropout(0.03, 7);
        // A random-ish sparse graph on 12 nodes.
        let edges: Vec<(usize, usize)> = (0..12)
            .flat_map(|i| [(i, (i + 1) % 12), (i, (i + 3) % 12)])
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        let e = find_embedding(&edges, 12, &hw, &opts(6)).unwrap();
        assert!(e.validate(&edges, &hw));
        // Dropped qubits are never used.
        for chain in e.chains() {
            for &q in chain {
                assert!(hw.is_active(q));
            }
        }
    }

    #[test]
    fn impossible_embedding_reports_failure() {
        // K9 cannot fit in a single unit cell (8 qubits).
        let hw = Chimera::new(1).graph();
        let mut edges = Vec::new();
        for i in 0..9 {
            for j in (i + 1)..9 {
                edges.push((i, j));
            }
        }
        let fast = EmbedOptions {
            tries: 2,
            rounds: 8,
            ..opts(8)
        };
        assert!(matches!(
            find_embedding(&edges, 9, &hw, &fast),
            Err(EmbedError::NoEmbeddingFound { .. })
        ));
    }

    #[test]
    fn randomized_qubit_counts_vary_by_seed() {
        // §6.1: "the number of physical qubits varies from compilation to
        // compilation" — different seeds should explore different embeddings.
        let hw = Chimera::new(3).graph();
        let mut edges = Vec::new();
        for i in 0..7 {
            for j in (i + 1)..7 {
                edges.push((i, j));
            }
        }
        let chimera = Chimera::new(3);
        let counts: Vec<usize> = (0..6)
            .map(|s| {
                find_embedding_or_clique(&edges, 7, &chimera, &hw, &opts(100 + s))
                    .unwrap()
                    .num_physical_qubits()
            })
            .collect();
        // All valid; at least produce a spread or equal minimal counts.
        assert!(counts.iter().all(|&c| c >= 7));
    }

    #[test]
    fn stats_count_routing_work() {
        let hw = Chimera::new(2).graph();
        let edges = [(0, 1), (1, 2), (0, 2)];
        let (e, stats) = find_embedding_with_stats(&edges, 3, &hw, &opts(3)).unwrap();
        assert!(e.validate(&edges, &hw));
        assert!(stats.route_iterations >= 1, "at least one round ran");
        assert!(stats.restarts >= 1);
        assert!(!stats.cache_hit);
        // The scratch work counters move with real routing work.
        assert!(stats.heap_pops > 0, "Dijkstra ran: {stats:?}");
        assert!(stats.edge_relaxations > 0, "edges were relaxed: {stats:?}");
        assert!(stats.weight_updates > 0, "weights were memoized: {stats:?}");
    }

    #[test]
    fn portfolio_single_arm_matches_plain_search() {
        let hw = Chimera::new(3).graph();
        let edges: Vec<(usize, usize)> = (0..6)
            .flat_map(|i| ((i + 1)..6).map(move |j| (i, j)))
            .collect();
        let plain = find_embedding(&edges, 6, &hw, &opts(11)).unwrap();
        let (port, _) = find_embedding_portfolio(&edges, 6, &hw, &opts(11), 1).unwrap();
        assert_eq!(plain, port);
    }

    #[test]
    fn portfolio_never_worse_than_its_arms() {
        let hw = Chimera::new(3).graph();
        let edges: Vec<(usize, usize)> = (0..7)
            .flat_map(|i| ((i + 1)..7).map(move |j| (i, j)))
            .collect();
        let (best, stats) = find_embedding_portfolio(&edges, 7, &hw, &opts(42), 4).unwrap();
        assert!(best.validate(&edges, &hw));
        assert!(stats.restarts >= 4, "every arm restarts at least once");
        // Re-run each arm's exact configuration serially: the portfolio
        // result must match the best of them.
        let mut arm_best = usize::MAX;
        for arm in 0..4u64 {
            let o = EmbedOptions {
                seed: 42u64.wrapping_add(arm.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                ..opts(42)
            };
            let e = find_embedding(&edges, 7, &hw, &o).unwrap();
            arm_best = arm_best.min(e.num_physical_qubits());
        }
        assert_eq!(best.num_physical_qubits(), arm_best);
    }

    #[test]
    fn portfolio_propagates_failure() {
        let hw = Chimera::new(1).graph();
        let mut edges = Vec::new();
        for i in 0..9 {
            for j in (i + 1)..9 {
                edges.push((i, j));
            }
        }
        let fast = EmbedOptions {
            tries: 2,
            rounds: 8,
            ..opts(8)
        };
        assert!(matches!(
            find_embedding_portfolio(&edges, 9, &hw, &fast, 3),
            Err(EmbedError::NoEmbeddingFound { .. })
        ));
    }

    #[test]
    fn empty_hardware_rejected() {
        let mut hw = HardwareGraph::new(2);
        hw.add_edge(0, 1);
        hw.deactivate(0);
        hw.deactivate(1);
        assert_eq!(
            find_embedding(&[(0, 1)], 2, &hw, &opts(9)),
            Err(EmbedError::EmptyHardware)
        );
    }

    #[test]
    fn restart_seeds_are_pairwise_distinct() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 0xe4bed, u64::MAX / 3] {
            for t in 0..1024u64 {
                assert!(
                    seen.insert(restart_seed(base, t)),
                    "restart seed collision at base {base:#x} try {t}"
                );
            }
        }
    }

    #[test]
    fn race_is_identical_across_thread_counts() {
        // The ISSUE-4 determinism contract: the parallel restart race is
        // a pure function of (seed, tries) — 1 worker thread and 8 must
        // produce byte-identical embeddings and work counters.
        let hw = Chimera::new(3).graph();
        let edges: Vec<(usize, usize)> = (0..7)
            .flat_map(|i| ((i + 1)..7).map(move |j| (i, j)))
            .collect();
        let run = |threads: usize| {
            let o = EmbedOptions {
                parallel_restarts: true,
                restart_threads: threads,
                tries: 6,
                rounds: 16,
                ..opts(77)
            };
            find_embedding_with_stats(&edges, 7, &hw, &o).unwrap()
        };
        let (e1, s1) = run(1);
        let (e8, s8) = run(8);
        assert_eq!(e1, e8, "embedding differs between 1 and 8 race threads");
        assert_eq!(s1, s8, "work counters differ between 1 and 8 race threads");
        assert!(e1.validate(&edges, &hw));
        assert_eq!(s1.restarts, 6, "the race runs every try");
    }

    #[test]
    fn race_picks_the_best_try() {
        // Re-running each try's seed sequentially must reproduce the
        // race winner's qubit count: the winner is min over tries by
        // (physical qubits, try index).
        let hw = Chimera::new(3).graph();
        let edges: Vec<(usize, usize)> = (0..6)
            .flat_map(|i| ((i + 1)..6).map(move |j| (i, j)))
            .collect();
        let tries = 4usize;
        let race_options = EmbedOptions {
            parallel_restarts: true,
            restart_threads: 2,
            tries,
            rounds: 16,
            ..opts(5)
        };
        let (won, _) = find_embedding_with_stats(&edges, 6, &hw, &race_options).unwrap();
        let mut best = usize::MAX;
        for t in 0..tries as u64 {
            let o = EmbedOptions {
                seed: restart_seed(5, t),
                tries: 1,
                rounds: 16,
                ..opts(5)
            };
            if let Ok(e) = find_embedding(&edges, 6, &hw, &o) {
                best = best.min(e.num_physical_qubits());
            }
        }
        assert_eq!(won.num_physical_qubits(), best);
    }

    #[test]
    fn race_propagates_failure() {
        let hw = Chimera::new(1).graph();
        let edges: Vec<(usize, usize)> = (0..9)
            .flat_map(|i| ((i + 1)..9).map(move |j| (i, j)))
            .collect();
        let o = EmbedOptions {
            parallel_restarts: true,
            tries: 2,
            rounds: 8,
            ..opts(8)
        };
        assert!(matches!(
            find_embedding(&edges, 9, &hw, &o),
            Err(EmbedError::NoEmbeddingFound { .. })
        ));
    }

    #[test]
    fn seeded_reembed_keeps_clean_chains_and_validates() {
        // An 8-variable ring plus one chord; the edit moves the chord.
        // Only the chord's endpoints (old and new) are dirty — every
        // other chain must come back verbatim from the seed.
        let hw = Chimera::new(3).graph();
        let ring: Vec<(usize, usize)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
        let mut old_edges = ring.clone();
        old_edges.push((0, 4));
        let mut new_edges = ring;
        new_edges.push((1, 5));
        let prev = find_embedding(&old_edges, 8, &hw, &opts(21)).unwrap();

        let mut dirty = vec![false; 8];
        for v in [0, 1, 4, 5] {
            dirty[v] = true;
        }
        let (warm, stats) =
            find_embedding_incremental(&new_edges, 8, &hw, &opts(21), &prev, &dirty).unwrap();
        assert!(warm.validate(&new_edges, &hw));
        assert!(!stats.cache_hit);
        for (v, &is_dirty) in dirty.iter().enumerate() {
            if !is_dirty {
                assert_eq!(
                    warm.chain(v),
                    prev.chain(v),
                    "clean variable {v} was rerouted"
                );
            }
        }
    }

    #[test]
    fn seeded_reembed_with_no_dirty_variables_is_a_noop() {
        let hw = Chimera::new(2).graph();
        let edges = [(0, 1), (1, 2), (0, 2), (2, 3)];
        let prev = find_embedding(&edges, 4, &hw, &opts(13)).unwrap();
        let (warm, stats) =
            find_embedding_incremental(&edges, 4, &hw, &opts(13), &prev, &[false; 4]).unwrap();
        assert_eq!(warm, prev, "nothing dirty: the seed is returned as-is");
        assert_eq!(stats.route_iterations, 0, "no routing rounds ran");
        assert_eq!(stats.heap_pops, 0, "Dijkstra never ran");
    }

    #[test]
    fn incomparable_seed_falls_back_to_full_routing() {
        // A previous embedding with the wrong variable count cannot seed
        // the router; the call must degrade to a cold embed with the same
        // options (deterministic, so the results are comparable).
        let hw = Chimera::new(2).graph();
        let edges = [(0, 1), (1, 2), (0, 2)];
        let stale = find_embedding(&[(0, 1)], 2, &hw, &opts(17)).unwrap();
        let (warm, _) =
            find_embedding_incremental(&edges, 3, &hw, &opts(17), &stale, &[true; 2]).unwrap();
        let (cold, _) = find_embedding_with_stats(&edges, 3, &hw, &opts(17)).unwrap();
        assert_eq!(warm, cold, "fallback must match a cold embed exactly");
    }

    #[test]
    fn seeded_reembed_falls_back_when_the_seed_cannot_be_repaired() {
        // K9 on one unit cell is impossible; even with a (fabricated)
        // seed the repair fails and the fallback's error surfaces.
        let hw = Chimera::new(1).graph();
        let edges: Vec<(usize, usize)> = (0..9)
            .flat_map(|i| ((i + 1)..9).map(move |j| (i, j)))
            .collect();
        let bogus = Embedding {
            chains: (0..9).map(|v| vec![v % 8]).collect(),
        };
        let fast = EmbedOptions {
            tries: 1,
            rounds: 4,
            ..opts(19)
        };
        assert!(matches!(
            find_embedding_incremental(&edges, 9, &hw, &fast, &bogus, &[false; 9]),
            Err(EmbedError::NoEmbeddingFound { .. })
        ));
    }
}
