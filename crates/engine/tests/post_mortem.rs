//! The flight-recorder post-mortem contract: a job that dies by timeout
//! can explain itself from the ring alone, without re-running.
//!
//! This file holds exactly one test so the `QAC_FLIGHT_CAPACITY`
//! override below is guaranteed to be set before anything touches the
//! process-global recorder (integration-test binaries are per-file).

use std::sync::Arc;
use std::time::Duration;

use qac_core::{compile, CompileOptions, RunOptions, SolverChoice};
use qac_engine::{BatchEngine, EngineOptions, JobSpec, JobStatus};
use qac_telemetry::json;

const MUX_ADD_SUB: &str = r#"
    module circuit (s, a, b, c);
      input s, a, b;
      output [1:0] c;
      assign c = s ? a+b : a-b;
    endmodule
"#;

#[test]
fn forced_timeout_dumps_a_post_mortem_with_the_jobs_trace() {
    // A 20 ms deadline with retry-until-valid and a zero-read budget can
    // burn through thousands of fast attempts; widen the ring so the
    // one-time enqueue/dequeue/cache events survive to the dump.
    std::env::set_var("QAC_FLIGHT_CAPACITY", "262144");

    let program = Arc::new(compile(MUX_ADD_SUB, "circuit", &CompileOptions::default()).unwrap());
    let cache = Arc::new(qac_chimera::EmbeddingCache::new());
    // num_reads(0) decodes zero samples, so valid_fraction() is 0 and
    // retry_until_valid can never be satisfied: the attempt loop spins
    // until the deadline. The D-Wave solver path exercises the embedding
    // cache, so the post-mortem carries cache events too.
    let options = RunOptions::new()
        .pin("s := 0")
        .pin("a := 1")
        .pin("b := 1")
        .solver(SolverChoice::DWave(Box::new(
            qac_solvers::DWaveSimOptions {
                topology: qac_solvers::TopologySpec::Chimera { m: 4 },
                anneal_sweeps: 8,
                embedding_cache: Some(cache),
                ..Default::default()
            },
        )))
        .num_reads(0);
    let job = JobSpec::new(program.clone(), options, "doomed".to_string());
    let trace = job.trace;
    assert!(!trace.is_none());

    let engine = BatchEngine::new(EngineOptions {
        workers: 1,
        max_attempts: 1_000_000,
        retry_until_valid: true,
        timeout: Some(Duration::from_millis(20)),
        ..Default::default()
    });
    let results = engine.run_batch(vec![job]);
    assert_eq!(results.len(), 1);
    let result = &results[0];
    assert!(
        matches!(result.status, JobStatus::TimedOut),
        "expected a timeout, got {:?}",
        result.status
    );
    assert_eq!(result.trace, trace, "the result carries the job's trace id");
    assert!(result.attempts >= 1, "at least one attempt ran");

    // The dump is valid JSONL, every line is a flight event tagged with
    // this job's trace id.
    let dump = result.post_mortem_jsonl();
    let token = trace.to_string();
    assert!(
        dump.contains(&token),
        "dump must carry the trace token {token}:\n{dump}"
    );
    let mut kinds = std::collections::BTreeSet::new();
    for (i, line) in dump.lines().enumerate() {
        let event = json::parse(line)
            .unwrap_or_else(|err| panic!("dump line {}: invalid JSON: {err}", i + 1));
        assert_eq!(
            event.get("type").and_then(|t| t.as_str()),
            Some("flight"),
            "line {}",
            i + 1
        );
        assert_eq!(
            event.get("trace").and_then(|t| t.as_str()),
            Some(token.as_str()),
            "line {}: foreign trace in a per-job dump",
            i + 1
        );
        kinds.insert(
            event
                .get("kind")
                .and_then(|k| k.as_str())
                .expect("kind")
                .to_string(),
        );
    }

    // Queue lifecycle: the job was enqueued, picked up, and timed out.
    for kind in ["enqueue", "dequeue", "timeout"] {
        assert!(kinds.contains(kind), "missing {kind} event; saw {kinds:?}");
    }
    // Pipeline lifecycle: at least one attempt ran stages to completion.
    for kind in ["stage_begin", "stage_end"] {
        assert!(kinds.contains(kind), "missing {kind} event; saw {kinds:?}");
    }
    // Cache lifecycle: attempt 1 misses; any further attempt hits.
    assert!(
        kinds.contains("cache_miss") || kinds.contains("cache_hit"),
        "missing cache events; saw {kinds:?}"
    );
    // Anything the engine recorded for *other* jobs must not leak in: a
    // fresh trace id has no events.
    let foreign = qac_telemetry::global_flight().dump_jsonl(qac_telemetry::TraceId::fresh());
    assert!(foreign.is_empty());

    // Incremental recompiles are post-mortem-visible too: a warm
    // recompile under its own trace scope leaves one `stage_skip` flight
    // event per replayed stage, tagged with that job's trace id — so a
    // dump can explain not just what ran, but what was *skipped* and
    // under which edit session (DESIGN.md §14).
    let recompile_trace = qac_telemetry::TraceId::fresh();
    let report = {
        let _scope = qac_telemetry::TraceScope::enter(recompile_trace);
        let (_, report) = qac_core::compile_incremental(
            &program,
            MUX_ADD_SUB,
            "circuit",
            &CompileOptions::default(),
        )
        .unwrap();
        report
    };
    assert!(!report.full_rebuild);
    assert!(report.skipped() > 0, "identical source skips stages");
    let skip_events: Vec<String> = qac_telemetry::global_flight()
        .events_for(recompile_trace)
        .iter()
        .filter(|e| e.kind == qac_telemetry::FlightKind::StageSkip)
        .map(|e| e.name.to_string())
        .collect();
    assert_eq!(
        skip_events.len(),
        report.skipped(),
        "every skipped stage leaves a stage_skip event under the job's trace"
    );
    assert!(
        skip_events.iter().any(|n| n == "assemble"),
        "skip events name the skipped stage: {skip_events:?}"
    );
    // The skip events stay scoped: the doomed job's dump has none.
    assert!(
        !kinds.contains("stage_skip"),
        "the engine job compiled nothing incrementally"
    );
}
