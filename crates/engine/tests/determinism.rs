//! The engine's contract, enforced: a batch's results are byte-identical
//! at 1, 2, or 8 worker threads, and no two random streams in the system
//! (jobs, retries, portfolio arms) can silently collide.

use std::sync::Arc;
use std::time::Duration;

use qac_core::{compile, CompileOptions, Compiled, RunOptions, SolverChoice};
use qac_engine::{seed, BatchEngine, CancelToken, EngineOptions, JobResult, JobSpec, JobStatus};
use qac_solvers::{DWaveSimOptions, Portfolio, Reseed, TabuSearch};

const MUX_ADD_SUB: &str = r#"
    module circuit (s, a, b, c);
      input s, a, b;
      output [1:0] c;
      assign c = s ? a+b : a-b;
    endmodule
"#;

fn program() -> Arc<Compiled> {
    Arc::new(compile(MUX_ADD_SUB, "circuit", &CompileOptions::default()).unwrap())
}

/// A mixed batch: exact, SA, tabu, and hardware-model jobs over the same
/// compiled program, all eight forward input combinations.
fn mixed_batch(program: &Arc<Compiled>) -> Vec<JobSpec> {
    let cache = Arc::new(qac_chimera::EmbeddingCache::new());
    (0..8u64)
        .map(|case| {
            let (s, a, b) = (case & 1, (case >> 1) & 1, case >> 2);
            let solver = match case % 4 {
                0 => SolverChoice::Exact,
                1 => SolverChoice::Sa { sweeps: 80 },
                2 => SolverChoice::Tabu,
                _ => SolverChoice::DWave(Box::new(DWaveSimOptions {
                    topology: qac_solvers::TopologySpec::Chimera { m: 4 },
                    anneal_sweeps: 120,
                    embedding_cache: Some(Arc::clone(&cache)),
                    ..Default::default()
                })),
            };
            let options = RunOptions::new()
                .pin(&format!("s := {s}"))
                .pin(&format!("a := {a}"))
                .pin(&format!("b := {b}"))
                .solver(solver)
                .num_reads(16);
            JobSpec::new(Arc::clone(program), options, format!("fwd:{s}{a}{b}"))
        })
        .collect()
}

/// The comparable projection of a result: everything except wall-clock.
fn digest(results: &[JobResult]) -> Vec<(usize, String, usize, u64, Option<u64>, bool)> {
    results
        .iter()
        .map(|r| {
            (
                r.job,
                r.label.clone(),
                r.attempts,
                r.seed,
                r.fingerprint(),
                matches!(r.status, JobStatus::Completed(_)),
            )
        })
        .collect()
}

#[test]
fn identical_results_at_1_2_and_8_workers() {
    let program = program();
    let mut digests = Vec::new();
    for workers in [1usize, 2, 8] {
        let engine = BatchEngine::new(EngineOptions {
            workers,
            queue_capacity: 3, // force backpressure on the 8-job batch
            ..Default::default()
        });
        let results = engine.run_batch(mixed_batch(&program));
        assert_eq!(results.len(), 8);
        // Results come back in submission order regardless of which
        // worker finished first.
        assert!(results.iter().enumerate().all(|(i, r)| r.job == i));
        for (i, r) in results.iter().enumerate() {
            let outcome = r.outcome().unwrap_or_else(|| panic!("{:?}", r.status));
            assert!(!outcome.samples.is_empty(), "job {} empty", r.label);
            // Exact-solver jobs always decode a valid execution; the
            // stochastic jobs only need to be *deterministic*.
            if i % 4 == 0 {
                assert!(outcome.best().unwrap().valid, "job {} invalid", r.label);
            }
        }
        digests.push((workers, digest(&results)));
    }
    let (_, ref baseline) = digests[0];
    for (workers, d) in &digests[1..] {
        assert_eq!(d, baseline, "results diverged at {workers} workers");
    }
}

#[test]
fn rerunning_the_same_batch_is_byte_identical() {
    let program = program();
    let engine = BatchEngine::new(EngineOptions {
        workers: 4,
        ..Default::default()
    });
    let a = engine.run_batch(mixed_batch(&program));
    let b = engine.run_batch(mixed_batch(&program));
    assert_eq!(digest(&a), digest(&b));
}

#[test]
fn batch_seed_changes_stochastic_results() {
    let program = program();
    let jobs = || {
        vec![JobSpec::new(
            Arc::clone(&program),
            RunOptions::new()
                .pin("s := 1")
                .solver(SolverChoice::Sa { sweeps: 12 })
                .num_reads(8),
            "sa",
        )]
    };
    let run = |base_seed| {
        BatchEngine::new(EngineOptions {
            workers: 2,
            base_seed,
            ..Default::default()
        })
        .run_batch(jobs())[0]
            .fingerprint()
            .unwrap()
    };
    // Eight reads of a 12-sweep anneal leave plenty of sampling noise, so
    // distinct batch seeds should fingerprint differently (equality would
    // mean the seed is being ignored).
    assert_ne!(run(1), run(2));
}

#[test]
fn failed_jobs_retry_with_distinct_seeds_then_report_the_error() {
    // A Chimera too small for the program: every attempt errors.
    let program = program();
    let sim = DWaveSimOptions {
        topology: qac_solvers::TopologySpec::Chimera { m: 1 },
        embed: qac_chimera::EmbedOptions {
            tries: 1,
            rounds: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let engine = BatchEngine::new(EngineOptions {
        workers: 2,
        max_attempts: 3,
        ..Default::default()
    });
    let results = engine.run_batch(vec![JobSpec::new(
        Arc::clone(&program),
        RunOptions::new()
            .pin("s := 1")
            .solver(SolverChoice::DWave(Box::new(sim)))
            .num_reads(4),
        "unembeddable",
    )]);
    let r = &results[0];
    assert!(matches!(r.status, JobStatus::Failed(_)), "{:?}", r.status);
    assert_eq!(r.attempts, 3, "retried to the attempt cap");
    // The final attempt ran on attempt seed 2, not the job seed.
    assert_eq!(r.seed, seed::attempt_seed(engine.options().base_seed, 0, 2));
    assert_ne!(r.seed, seed::job_seed(engine.options().base_seed, 0));
}

#[test]
fn retry_until_valid_reseeds_on_invalid_outcomes() {
    // Impossible pins: no seed ever yields a valid execution, so the
    // engine burns all attempts and returns the last (invalid) outcome.
    let program = program();
    let engine = BatchEngine::new(EngineOptions {
        workers: 1,
        max_attempts: 4,
        retry_until_valid: true,
        ..Default::default()
    });
    let results = engine.run_batch(vec![JobSpec::new(
        Arc::clone(&program),
        RunOptions::new()
            .pin("s := 1")
            .pin("a := 0")
            .pin("b := 0")
            .pin("c[1:0] := 11")
            .solver(SolverChoice::Exact),
        "unsat",
    )]);
    let r = &results[0];
    assert_eq!(r.attempts, 4);
    let outcome = r.outcome().expect("completes with an invalid outcome");
    assert_eq!(outcome.valid_solutions().count(), 0);
}

#[test]
fn zero_timeout_times_every_job_out() {
    let program = program();
    let engine = BatchEngine::new(EngineOptions {
        workers: 2,
        timeout: Some(Duration::ZERO),
        ..Default::default()
    });
    let results = engine.run_batch(mixed_batch(&program));
    for r in &results {
        assert!(matches!(r.status, JobStatus::TimedOut), "{:?}", r.status);
        assert_eq!(r.attempts, 0, "budget was checked before any attempt");
    }
}

#[test]
fn cancelled_batches_report_cancelled() {
    let program = program();
    let token = CancelToken::new();
    token.cancel();
    let engine = BatchEngine::new(EngineOptions {
        workers: 2,
        ..Default::default()
    });
    let results = engine.run_batch_cancellable(mixed_batch(&program), &token);
    assert_eq!(results.len(), 8);
    for r in &results {
        assert!(matches!(r.status, JobStatus::Cancelled), "{:?}", r.status);
    }
}

#[test]
fn engine_and_portfolio_seed_families_never_collide() {
    // The Reseed audit, cross-subsystem half: for the default engine and
    // portfolio seeds, no engine attempt seed may equal a portfolio arm
    // seed — otherwise a retried job and a portfolio arm would walk the
    // same RNG stream and correlate their samples.
    use std::collections::HashSet;
    let engine = EngineOptions::default();
    let portfolio = Portfolio::new(TabuSearch::new(0), 256);
    let mut seeds = HashSet::new();
    for arm in 0..256 {
        assert!(seeds.insert(portfolio.arm_seed(arm)));
    }
    for job in 0..256u64 {
        for attempt in 0..4u64 {
            assert!(
                seeds.insert(seed::attempt_seed(engine.base_seed, job, attempt)),
                "engine job {job} attempt {attempt} collides with another stream"
            );
        }
    }
    // The embedding router's restart-race family is salted before its
    // splitmix mix (see `qac_chimera::restart_seed`), so its streams
    // must land outside both the engine attempt family and the
    // portfolio arm family — a collision would correlate a routing race
    // with a sampler's RNG when a job embeds and then anneals.
    for try_index in 0..256u64 {
        assert!(
            seeds.insert(qac_chimera::restart_seed(engine.base_seed, try_index)),
            "embedding restart {try_index} collides with another stream"
        );
    }
    // The packed-lane sampler families (per-replica lane seeds, the PT
    // swap-schedule streams, and the PA resampling stream) are salted
    // independently; all of them must stay disjoint from the engine,
    // portfolio, and restart families above AND from each other, or a
    // bit-parallel arm inside a portfolio would correlate with a retry.
    for replica in 0..256u64 {
        assert!(
            seeds.insert(qac_solvers::lane_seed(engine.base_seed, replica)),
            "packed lane {replica} collides with another stream"
        );
    }
    for group in 0..64u64 {
        assert!(
            seeds.insert(qac_solvers::pt_swap_seed(engine.base_seed, group)),
            "PT swap stream {group} collides with another stream"
        );
    }
    assert!(
        seeds.insert(qac_solvers::pa_resample_seed(engine.base_seed)),
        "the PA resampling stream collides with another stream"
    );
    // Reseed impls must actually adopt the seed they are handed (a stale
    // clone would silently share the base stream).
    let reseeded = TabuSearch::new(7).reseed(99);
    let direct = TabuSearch::new(99);
    let mut m = qac_pbf::Ising::new(6);
    m.add_h(0, 0.4);
    m.add_j(0, 1, -1.0);
    m.add_j(2, 3, 0.7);
    m.add_j(4, 5, -0.3);
    use qac_solvers::Sampler;
    assert_eq!(m.num_vars(), 6);
    assert_eq!(
        reseeded.sample(&m, 5),
        direct.sample(&m, 5),
        "reseed(99) must behave exactly like a sampler built with seed 99"
    );
}

#[test]
fn queue_wait_and_worker_accounting_are_populated() {
    let program = program();
    let engine = BatchEngine::new(EngineOptions {
        workers: 2,
        ..Default::default()
    });
    let results = engine.run_batch(mixed_batch(&program));
    for r in &results {
        assert!(r.worker < 2);
        assert!(r.run_time > Duration::ZERO);
    }
}
