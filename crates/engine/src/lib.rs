//! qac-engine — a deterministic concurrent batch-run engine.
//!
//! The paper's pipeline runs one program at a time; a service amortizes
//! by running *many* `(compiled program, pins, sampler config)` jobs at
//! once — many problem instances, many reads per instance, exactly the
//! workload shape of the constraint-programming and SAT-annealing
//! studies the ROADMAP targets. [`BatchEngine`] provides that:
//!
//! * **Bounded-queue, work-stealing scheduling** ([`queue`]): jobs are
//!   dealt round-robin into per-worker deques behind a capacity bound
//!   (backpressure), and idle workers steal from the longest sibling
//!   deque, so skewed job sizes still load-balance.
//! * **Determinism as a contract** ([`seed`], [`fingerprint`]): every
//!   random decision in a job derives from `(batch seed, job index,
//!   attempt index)` via splitmix64 — never from thread identity or
//!   completion order — so a batch's results are byte-identical at 1, 2,
//!   or 8 worker threads. `tests/determinism.rs` enforces this.
//! * **Per-job retry-with-reseed, timeout, and cancellation**
//!   ([`BatchEngine`]): failed (or, optionally, invalid) runs retry on a
//!   fresh deterministic seed; a wall-clock budget bounds each job; a
//!   [`CancelToken`] stops a batch cooperatively.
//! * **Shared state, not duplicated work**: jobs share their
//!   `Arc<Compiled>` programs, and hardware-model jobs share one
//!   `Arc<EmbeddingCache>` through `DWaveSimOptions`, so a batch embeds
//!   each distinct program once.
//! * **Telemetry**: a `batch` span with one `job:<label>` child per job,
//!   plus counters (`qac_engine_jobs_total`, `…_retries_total`,
//!   `…_steals_total`, `…_failed_total`, `…_timeouts_total`,
//!   `…_cancelled_total`) and a queue-wait histogram
//!   (`qac_engine_queue_wait_us`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use qac_core::{compile, CompileOptions, RunOptions, SolverChoice};
//! use qac_engine::{BatchEngine, EngineOptions, JobSpec};
//!
//! let src = r#"
//!     module circuit (s, a, b, c);
//!       input s, a, b;
//!       output [1:0] c;
//!       assign c = s ? a+b : a-b;
//!     endmodule
//! "#;
//! let program = Arc::new(compile(src, "circuit", &CompileOptions::default()).unwrap());
//! let jobs: Vec<JobSpec> = (0..4u64)
//!     .map(|a| {
//!         let options = RunOptions::new()
//!             .pin(&format!("s := {}", a & 1))
//!             .pin(&format!("a := {}", a >> 1))
//!             .pin("b := 1")
//!             .solver(SolverChoice::Exact);
//!         JobSpec::new(Arc::clone(&program), options, format!("case{a}"))
//!     })
//!     .collect();
//! let engine = BatchEngine::new(EngineOptions {
//!     workers: 2,
//!     ..Default::default()
//! });
//! let results = engine.run_batch(jobs);
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.outcome().is_some()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod fingerprint;
pub mod queue;
pub mod seed;

pub use engine::{BatchEngine, CancelToken, EngineOptions, JobResult, JobSpec, JobStatus};
pub use fingerprint::outcome_fingerprint;
