//! Canonical fingerprints of run results.
//!
//! The engine's determinism contract is "byte-identical results at any
//! worker count". Wall-clock obviously differs run to run, so the
//! contract is stated — and tested — over the *semantic* payload of a
//! [`RunOutcome`]: decoded samples (spins, energies, occurrences,
//! validity), the expected ground energy, and the modeled hardware
//! statistics. The [`Trace`] (measured durations) is excluded by
//! construction.
//!
//! [`Trace`]: qac_core::Trace

use qac_core::RunOutcome;
use qac_pbf::Spin;

/// FNV-1a over a canonical little-endian encoding (stable across runs
/// and platforms, unlike `DefaultHasher`, whose seeds are unspecified).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }
}

/// A stable 64-bit digest of everything deterministic in `outcome`.
///
/// Two outcomes fingerprint equal iff their samples (order, spins,
/// energies, occurrences, validity flags, decoded symbol values are a
/// function of spins so they need no separate hashing), expected
/// energy, and hardware statistics agree. Timing traces never
/// participate.
#[must_use]
pub fn outcome_fingerprint(outcome: &RunOutcome) -> u64 {
    let mut h = Fnv::new();
    h.write_f64(outcome.expected_energy);
    h.write_u64(outcome.samples.len() as u64);
    for sample in &outcome.samples {
        h.write_u64(sample.spins.len() as u64);
        for &spin in &sample.spins {
            h.write_u64(u64::from(spin == Spin::Up));
        }
        h.write_f64(sample.energy);
        h.write_u64(sample.occurrences as u64);
        h.write_u64(u64::from(sample.valid));
    }
    match &outcome.hardware {
        None => h.write_u64(0),
        Some(hw) => {
            h.write_u64(1);
            h.write_u64(hw.physical_qubits as u64);
            h.write_u64(hw.physical_terms as u64);
            h.write_f64(hw.chain_breaks);
            // Modeled, not measured, time: deterministic per job spec.
            h.write_f64(hw.time_us);
        }
    }
    h.0
}
