//! The batch engine: fan N jobs across a worker pool, deterministically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qac_core::{Compiled, RunOptions, RunOutcome};
use qac_telemetry::{FlightKind, TraceId, TraceScope};

use crate::fingerprint::outcome_fingerprint;
use crate::queue::WorkStealQueue;
use crate::seed::attempt_seed;

/// Histogram buckets (µs) for job queue-wait time.
const QUEUE_WAIT_BUCKETS_US: &[f64] = &[10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7];

/// One job: a compiled program plus how to run it.
///
/// The `RunOptions` seed is *ignored* — the engine overrides it with the
/// job's derived seed (see [`crate::seed`]) so that results depend only
/// on the batch seed and the job's position, never on scheduling.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The program to run (shared, so a thousand jobs over five
    /// programs cost five compilations).
    pub program: Arc<Compiled>,
    /// Pins, read count, solver. Seed is overridden per attempt.
    pub options: RunOptions,
    /// Human-readable label for tables and telemetry spans.
    pub label: String,
    /// Job-scoped trace id. Every flight-recorder event the job causes —
    /// across portfolio arms, restart-race threads, cache lookups —
    /// carries this id, so a failed or timed-out job can dump its own
    /// event history (see [`JobResult::post_mortem_jsonl`]).
    pub trace: TraceId,
}

impl JobSpec {
    /// A job running `program` with `options`, labelled `label`, under a
    /// fresh trace id.
    pub fn new(program: Arc<Compiled>, options: RunOptions, label: impl Into<String>) -> JobSpec {
        JobSpec {
            program,
            options,
            label: label.into(),
            trace: TraceId::fresh(),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads. 0 = one per available core.
    pub workers: usize,
    /// Bound on tasks queued at once (backpressure for huge batches).
    pub queue_capacity: usize,
    /// Attempts per job (1 = no retries). Each retry reseeds
    /// deterministically from the job's splitmix stream.
    pub max_attempts: usize,
    /// Also retry (up to `max_attempts`) when a run succeeds but decodes
    /// zero valid executions — useful for stochastic solvers that
    /// sometimes miss the ground state.
    pub retry_until_valid: bool,
    /// Per-job wall-clock budget, measured from dequeue and checked
    /// *between* attempts (a running attempt is never interrupted).
    /// `None` = unbounded. Timeouts trade determinism for liveness:
    /// a batch that hits them may differ run-to-run.
    pub timeout: Option<Duration>,
    /// The seed every job/attempt seed derives from.
    pub base_seed: u64,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            workers: 0,
            queue_capacity: 256,
            max_attempts: 3,
            retry_until_valid: false,
            timeout: None,
            base_seed: 0xba7c_45ee_d001,
        }
    }
}

/// Cooperative cancellation: clone the token, hand it to the batch, flip
/// it from any thread. Workers observe it between attempts; jobs not yet
/// finished report [`JobStatus::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// How a job ended.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// The run completed (possibly without valid samples — inspect the
    /// outcome's quality).
    Completed(Box<RunOutcome>),
    /// Every attempt errored; the final error, rendered.
    Failed(String),
    /// The wall-clock budget expired before an attempt could finish.
    TimedOut,
    /// The batch was cancelled before this job ran to completion.
    Cancelled,
}

/// The result of one job, in its batch position.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// The job's label.
    pub label: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Attempts consumed (0 for jobs cancelled/timed out before any).
    pub attempts: usize,
    /// Seed of the final attempt (the job seed when no attempt ran).
    pub seed: u64,
    /// Time between enqueue and dequeue.
    pub queue_wait: Duration,
    /// Time executing attempts.
    pub run_time: Duration,
    /// Worker that executed the job.
    pub worker: usize,
    /// Whether the job was stolen from another worker's deque.
    pub stolen: bool,
    /// The job's trace id (copied from its [`JobSpec`]).
    pub trace: TraceId,
}

impl JobResult {
    /// The outcome, when the job completed.
    pub fn outcome(&self) -> Option<&RunOutcome> {
        match &self.status {
            JobStatus::Completed(outcome) => Some(outcome),
            _ => None,
        }
    }

    /// Canonical digest of the completed outcome (see
    /// [`outcome_fingerprint`]); `None` otherwise.
    pub fn fingerprint(&self) -> Option<u64> {
        self.outcome().map(outcome_fingerprint)
    }

    /// This job's event history from the global flight recorder as
    /// JSONL — stage boundaries, cache hits/misses, queue/retry/timeout
    /// events — for post-mortem analysis without re-running the job.
    /// Bounded by the recorder's ring capacity: a job that finished long
    /// ago may have been evicted by newer events.
    pub fn post_mortem_jsonl(&self) -> String {
        qac_telemetry::global_flight().dump_jsonl(self.trace)
    }
}

/// A deterministic concurrent batch runner.
///
/// See the crate docs for the architecture; the one-line contract:
/// [`BatchEngine::run_batch`] returns the same results, in the same
/// (submission) order, for every worker count.
#[derive(Debug, Clone, Default)]
pub struct BatchEngine {
    options: EngineOptions,
}

impl BatchEngine {
    /// An engine with the given options.
    pub fn new(options: EngineOptions) -> BatchEngine {
        BatchEngine { options }
    }

    /// The configured options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The worker count this engine resolves to.
    pub fn workers(&self) -> usize {
        if self.options.workers > 0 {
            return self.options.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Runs every job and returns results in submission order.
    pub fn run_batch(&self, jobs: Vec<JobSpec>) -> Vec<JobResult> {
        self.run_batch_cancellable(jobs, &CancelToken::new())
    }

    /// [`BatchEngine::run_batch`] with a cancellation token.
    pub fn run_batch_cancellable(
        &self,
        jobs: Vec<JobSpec>,
        cancel: &CancelToken,
    ) -> Vec<JobResult> {
        let workers = self.workers();
        let telemetry = qac_telemetry::global();
        let flight = qac_telemetry::global_flight();
        let mut batch_span = telemetry.span("batch");
        batch_span.arg("jobs", jobs.len() as f64);
        batch_span.arg("workers", workers as f64);
        let parent = batch_span.id();
        telemetry.register_histogram("qac_engine_queue_wait_us", QUEUE_WAIT_BUCKETS_US);

        struct Task {
            index: usize,
            job: JobSpec,
            enqueued: Instant,
        }

        let queue: WorkStealQueue<Task> = WorkStealQueue::new(workers, self.options.queue_capacity);
        let total = jobs.len();
        let results: Mutex<Vec<Option<JobResult>>> = Mutex::new((0..total).map(|_| None).collect());

        crossbeam::scope(|scope| {
            for worker in 0..workers {
                let queue = &queue;
                let results = &results;
                scope.spawn(move |_| {
                    while let Some(popped) = queue.pop(worker) {
                        let Task {
                            index,
                            job,
                            enqueued,
                        } = popped.task;
                        let queue_wait = enqueued.elapsed();
                        // Everything the job does on this worker —
                        // pipeline stages, cache lookups, portfolio arms
                        // (which re-propagate into their own spawns) —
                        // records under the job's trace id.
                        let trace_scope = TraceScope::enter(job.trace);
                        let wait_us = queue_wait.as_secs_f64() * 1e6;
                        flight.record(FlightKind::Dequeue, &job.label, wait_us);
                        let mut span = telemetry.span_under(&format!("job:{}", job.label), parent);
                        span.arg("job", index as f64);
                        span.arg("worker", worker as f64);
                        let started = Instant::now();
                        let (status, attempts, seed) = self.execute(index, &job, cancel);
                        let run_time = started.elapsed();
                        span.arg("attempts", attempts as f64);
                        drop(span);
                        telemetry.counter_add("qac_engine_jobs_total", 1);
                        telemetry.counter_add(
                            "qac_engine_retries_total",
                            attempts.saturating_sub(1) as u64,
                        );
                        if popped.stolen {
                            telemetry.counter_add("qac_engine_steals_total", 1);
                        }
                        let (terminal_kind, counter) = match &status {
                            JobStatus::Failed(_) => {
                                (FlightKind::JobFailed, Some("qac_engine_failed_total"))
                            }
                            JobStatus::TimedOut => {
                                (FlightKind::Timeout, Some("qac_engine_timeouts_total"))
                            }
                            JobStatus::Cancelled => {
                                (FlightKind::Cancel, Some("qac_engine_cancelled_total"))
                            }
                            JobStatus::Completed(_) => (FlightKind::JobDone, None),
                        };
                        if let Some(counter) = counter {
                            telemetry.counter_add(counter, 1);
                        }
                        flight.record(terminal_kind, &job.label, attempts as f64);
                        drop(trace_scope);
                        telemetry.observe("qac_engine_queue_wait_us", wait_us);
                        telemetry.sketch_observe("qac_engine_queue_wait_quantiles_us", wait_us);
                        results.lock().unwrap_or_else(|p| p.into_inner())[index] =
                            Some(JobResult {
                                job: index,
                                label: job.label,
                                status,
                                attempts,
                                seed,
                                queue_wait,
                                run_time,
                                worker,
                                stolen: popped.stolen,
                                trace: job.trace,
                            });
                    }
                });
            }
            // The caller's thread is the producer: deal round-robin,
            // blocking at the capacity bound. The producer is outside
            // the jobs' trace scopes, so Enqueue events name the trace
            // explicitly.
            for (index, job) in jobs.into_iter().enumerate() {
                flight.record_for(job.trace, FlightKind::Enqueue, &job.label, index as f64);
                queue.push(
                    index,
                    Task {
                        index,
                        job,
                        enqueued: Instant::now(),
                    },
                );
            }
            queue.close();
        })
        .expect("engine workers do not panic");

        results
            .into_inner()
            .unwrap_or_else(|p| p.into_inner())
            .into_iter()
            .map(|slot| slot.expect("every job produced a result"))
            .collect()
    }

    /// Runs one job's attempt loop. Returns (status, attempts, seed of
    /// the final attempt).
    fn execute(
        &self,
        index: usize,
        job: &JobSpec,
        cancel: &CancelToken,
    ) -> (JobStatus, usize, u64) {
        let deadline = self.options.timeout.map(|t| Instant::now() + t);
        let max_attempts = self.options.max_attempts.max(1);
        let mut attempts = 0usize;
        let mut seed = attempt_seed(self.options.base_seed, index as u64, 0);
        loop {
            if cancel.is_cancelled() {
                return (JobStatus::Cancelled, attempts, seed);
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return (JobStatus::TimedOut, attempts, seed);
                }
            }
            seed = attempt_seed(self.options.base_seed, index as u64, attempts as u64);
            attempts += 1;
            if attempts > 1 {
                // Recorded under the worker's trace scope (the caller
                // entered it before execute()).
                qac_telemetry::global_flight().record(
                    FlightKind::Retry,
                    &job.label,
                    attempts as f64,
                );
            }
            let options = job.options.clone().seed(seed);
            match job.program.run(&options) {
                Ok(outcome) => {
                    let acceptable =
                        !self.options.retry_until_valid || outcome.valid_fraction() > 0.0;
                    if acceptable || attempts >= max_attempts {
                        return (JobStatus::Completed(Box::new(outcome)), attempts, seed);
                    }
                }
                Err(error) => {
                    if attempts >= max_attempts {
                        return (JobStatus::Failed(error.to_string()), attempts, seed);
                    }
                }
            }
        }
    }
}
