//! A bounded, work-stealing job queue.
//!
//! The producer deals tasks round-robin into one deque per worker and
//! blocks while the total number of queued tasks is at the capacity
//! bound (backpressure: a million-job batch never materializes a
//! million queued tasks). Each worker pops from the front of its own
//! deque; a worker whose deque is empty *steals* from the back of the
//! longest sibling deque, so an unlucky dealing (all the heavy jobs on
//! one worker) still load-balances.
//!
//! Scheduling is intentionally decoupled from results: which worker
//! executes a task, and in which order tasks complete, carries no
//! information — every task's randomness derives from its index (see
//! [`crate::seed`]) and every result lands in its index's slot. The
//! queue therefore needs no fairness guarantees to keep batches
//! deterministic.
//!
//! One mutex guards all deques. Queue operations are a few pointer
//! moves; jobs are milliseconds to seconds of sampling, so the shared
//! lock is never the bottleneck at the engine's thread counts.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    /// One deque per worker.
    locals: Vec<VecDeque<T>>,
    /// Total queued across all deques (the bound applies to this).
    queued: usize,
    /// Set once the producer is done; lets idle workers exit.
    closed: bool,
}

/// What [`WorkStealQueue::pop`] hands a worker.
pub struct Popped<T> {
    /// The task.
    pub task: T,
    /// Whether the task came from a sibling's deque.
    pub stolen: bool,
}

/// A bounded multi-deque queue with work stealing.
pub struct WorkStealQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled when space frees up (producer waits here).
    space: Condvar,
    /// Signalled when work arrives or the queue closes (workers wait).
    work: Condvar,
    capacity: usize,
}

impl<T> WorkStealQueue<T> {
    /// A queue with `workers` deques holding at most `capacity` total
    /// queued tasks (clamped to at least 1 so `push` can make progress).
    pub fn new(workers: usize, capacity: usize) -> WorkStealQueue<T> {
        WorkStealQueue {
            state: Mutex::new(State {
                locals: (0..workers.max(1)).map(|_| VecDeque::new()).collect(),
                queued: 0,
                closed: false,
            }),
            space: Condvar::new(),
            work: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a task onto worker `home`'s deque (mod the worker
    /// count), blocking while the queue is at capacity.
    ///
    /// # Panics
    /// Panics if the queue was already closed.
    pub fn push(&self, home: usize, task: T) {
        let mut state = self.lock();
        while state.queued >= self.capacity {
            state = self.space.wait(state).unwrap_or_else(|p| p.into_inner());
        }
        assert!(!state.closed, "push after close");
        let slot = home % state.locals.len();
        state.locals[slot].push_back(task);
        state.queued += 1;
        drop(state);
        self.work.notify_one();
    }

    /// Marks the end of production; blocked and future `pop`s on empty
    /// deques return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.work.notify_all();
    }

    /// Dequeues a task for `worker`: front of its own deque first, else
    /// steal from the back of the longest sibling. Blocks while the
    /// queue is open but empty; returns `None` once closed and drained.
    pub fn pop(&self, worker: usize) -> Option<Popped<T>> {
        let mut state = self.lock();
        loop {
            let own = worker % state.locals.len();
            if let Some(task) = state.locals[own].pop_front() {
                state.queued -= 1;
                drop(state);
                self.space.notify_one();
                return Some(Popped {
                    task,
                    stolen: false,
                });
            }
            // Steal from the sibling with the most queued work (oldest
            // task first — the back, opposite the owner's end).
            let victim = (0..state.locals.len())
                .filter(|&w| w != own)
                .max_by_key(|&w| state.locals[w].len())
                .filter(|&w| !state.locals[w].is_empty());
            if let Some(victim) = victim {
                let task = state.locals[victim].pop_back().expect("victim non-empty");
                state.queued -= 1;
                drop(state);
                self.space.notify_one();
                return Some(Popped { task, stolen: true });
            }
            if state.closed {
                return None;
            }
            state = self.work.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // Poison only means a panicking thread held the guard; the state
        // is structurally sound either way.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_worker_fifo() {
        let q = WorkStealQueue::new(1, 16);
        for i in 0..5 {
            q.push(0, i);
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop(0).map(|p| p.task)).collect();
        assert_eq!(drained, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_worker_steals_from_the_longest_sibling() {
        let q = WorkStealQueue::new(3, 16);
        // Everything dealt to worker 0.
        for i in 0..4 {
            q.push(0, i);
        }
        q.close();
        let popped = q.pop(2).expect("work available");
        assert!(popped.stolen, "worker 2's own deque was empty");
        assert_eq!(popped.task, 3, "thief takes the back (newest) task");
        let own = q.pop(0).expect("work available");
        assert!(!own.stolen);
        assert_eq!(own.task, 0, "owner takes the front (oldest) task");
    }

    #[test]
    fn capacity_bounds_queued_tasks() {
        let q = WorkStealQueue::new(2, 2);
        let produced = AtomicUsize::new(0);
        let consumed = AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            let q = &q;
            let produced = &produced;
            let consumed = &consumed;
            scope.spawn(move |_| {
                for i in 0..50usize {
                    q.push(i, i);
                    produced.fetch_add(1, Ordering::SeqCst);
                }
                q.close();
            });
            for w in 0..2usize {
                scope.spawn(move |_| {
                    while q.pop(w).is_some() {
                        consumed.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(produced.load(Ordering::SeqCst), 50);
        assert_eq!(consumed.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn close_releases_blocked_workers() {
        let q: WorkStealQueue<()> = WorkStealQueue::new(4, 4);
        crossbeam::scope(|scope| {
            let q = &q;
            for w in 0..4usize {
                scope.spawn(move |_| assert!(q.pop(w).is_none()));
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
        })
        .expect("no panics");
    }
}
