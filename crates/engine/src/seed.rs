//! Deterministic seed derivation for batch jobs.
//!
//! The engine's determinism contract — a batch's results are
//! byte-identical at 1, 2, or 8 worker threads — holds because every
//! random decision in a job is a pure function of `(batch seed, job
//! index, attempt index)`, never of which worker ran the job or when.
//! Seeds are derived with the splitmix64 output permutation (Steele,
//! Lea & Flood 2014), the same generator `java.util.SplittableRandom`
//! uses to split independent streams.
//!
//! Distinctness matters as much as determinism: the splitmix finalizer
//! is a *bijection* on `u64`, so two attempts of one job can never share
//! a seed, and engine seeds cannot collide with the [`Portfolio`] arm
//! seeds (`base + arm·γ`, no finalizer) except by 64-bit accident —
//! `tests/determinism.rs` pins both properties.
//!
//! [`Portfolio`]: qac_solvers::Portfolio

/// The golden-ratio increment γ used by splitmix64 to space stream
/// states (odd, so `k ↦ k·γ (mod 2⁶⁴)` is a bijection).
pub const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 output permutation: a bijective avalanche mix of the
/// state. Distinct inputs always produce distinct outputs.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The base seed of job `job` in a batch seeded with `batch_seed`.
///
/// `mix(batch_seed + (job+1)·γ)`: γ-spaced states keep per-job states
/// distinct for every pair of job indices, the `+1` keeps job 0 from
/// degenerating to `mix(batch_seed)` (which callers may already use for
/// the batch itself), and the finalizer decorrelates neighbouring jobs.
#[must_use]
pub fn job_seed(batch_seed: u64, job: u64) -> u64 {
    splitmix64(batch_seed.wrapping_add(job.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)))
}

/// The seed of retry `attempt` (0-based) of job `job`.
///
/// Attempt 0 runs with the job's base seed; each retry advances the
/// job's own splitmix stream, so a retried job explores a fresh random
/// stream instead of deterministically repeating its failure.
#[must_use]
pub fn attempt_seed(batch_seed: u64, job: u64, attempt: u64) -> u64 {
    let base = job_seed(batch_seed, job);
    if attempt == 0 {
        return base;
    }
    splitmix64(base.wrapping_add(attempt.wrapping_mul(GOLDEN_GAMMA)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn attempt_zero_is_the_job_seed() {
        for job in [0, 1, 7, u64::MAX / 2] {
            assert_eq!(attempt_seed(42, job, 0), job_seed(42, job));
        }
    }

    #[test]
    fn job_seeds_are_pairwise_distinct() {
        // The γ-spacing + bijective finalizer argument, checked over a
        // realistic batch size.
        let mut seen = HashSet::new();
        for job in 0..4096u64 {
            assert!(seen.insert(job_seed(0xba7c4, job)), "job {job} collided");
        }
    }

    #[test]
    fn attempt_seeds_are_pairwise_distinct_across_a_batch() {
        let mut seen = HashSet::new();
        for job in 0..512u64 {
            for attempt in 0..8u64 {
                assert!(
                    seen.insert(attempt_seed(0xba7c4, job, attempt)),
                    "job {job} attempt {attempt} collided"
                );
            }
        }
    }

    #[test]
    fn derivation_is_stable() {
        // The determinism contract makes seed derivation part of the
        // engine's public behaviour — a silent change here would
        // invalidate recorded batch results. Recompute job_seed(·) from
        // first principles so the check cannot drift together with the
        // implementation.
        assert_eq!(splitmix64(0), 0);
        assert_eq!(job_seed(0, 0), splitmix64(GOLDEN_GAMMA));
        let state = 0xba7c4_u64.wrapping_add(4u64.wrapping_mul(GOLDEN_GAMMA));
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        assert_eq!(job_seed(0xba7c4, 3), z);
    }

    #[test]
    fn batch_seeds_shift_every_job() {
        for job in 0..64u64 {
            assert_ne!(job_seed(1, job), job_seed(2, job));
        }
    }
}
