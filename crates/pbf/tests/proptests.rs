//! Property-based tests for the pseudo-Boolean model crate.

use proptest::prelude::*;
use qac_pbf::scale::{quantize, scale_to_range, CoefficientRange};
use qac_pbf::{bits_to_spins, roof, spins_to_bits, spins_to_index, Ising, Spin};

/// Strategy producing a random small Ising model (n in 1..=6).
fn arb_ising() -> impl Strategy<Value = Ising> {
    (1usize..=6).prop_flat_map(|n| {
        let h = proptest::collection::vec(-4.0f64..4.0, n);
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let j = proptest::collection::vec(-4.0f64..4.0, pairs.len());
        (Just(n), h, Just(pairs), j).prop_map(|(n, h, pairs, j)| {
            let mut m = Ising::new(n);
            for (i, &v) in h.iter().enumerate() {
                m.add_h(i, v);
            }
            for (&(a, b), &v) in pairs.iter().zip(j.iter()) {
                m.add_j(a, b, v);
            }
            m
        })
    })
}

proptest! {
    #[test]
    fn ising_qubo_round_trip_energy(m in arb_ising()) {
        let q = m.to_qubo();
        let m2 = q.to_ising();
        let n = m.num_vars();
        for idx in 0..(1u64 << n) {
            let spins = bits_to_spins(idx, n);
            let bits = spins_to_bits(&spins);
            let e_ising = m.energy(&spins);
            let e_qubo = q.energy(&bits);
            let e_back = m2.energy(&spins);
            prop_assert!((e_ising - e_qubo).abs() < 1e-9, "qubo mismatch at {idx}");
            prop_assert!((e_ising - e_back).abs() < 1e-9, "round trip mismatch at {idx}");
        }
    }

    #[test]
    fn spins_index_round_trip(idx in 0u64..1024, extra in 0usize..4) {
        let n = 10 + extra;
        prop_assert_eq!(spins_to_index(&bits_to_spins(idx, n)), idx);
    }

    #[test]
    fn scaling_preserves_argmin(m in arb_ising()) {
        let scaled = scale_to_range(&m, CoefficientRange::DWAVE_2000Q);
        prop_assert!(CoefficientRange::DWAVE_2000Q.admits(&scaled.model, 1e-9));
        let n = m.num_vars();
        let energies: Vec<(f64, f64)> = (0..(1u64 << n))
            .map(|i| {
                let s = bits_to_spins(i, n);
                (m.energy(&s), scaled.model.energy(&s))
            })
            .collect();
        let min_orig = energies.iter().map(|e| e.0).fold(f64::INFINITY, f64::min);
        let min_scaled = energies.iter().map(|e| e.1).fold(f64::INFINITY, f64::min);
        for (orig, sc) in &energies {
            // Argmin sets coincide (within tolerance scaled by the factor).
            let orig_is_min = (orig - min_orig).abs() < 1e-9;
            let scaled_is_min = (sc - min_scaled).abs() < 1e-9 * scaled.scale.max(1e-6);
            prop_assert_eq!(orig_is_min, scaled_is_min);
        }
    }

    #[test]
    fn quantize_stays_in_range(m in arb_ising(), bits in 3u32..16) {
        let scaled = scale_to_range(&m, CoefficientRange::DWAVE_2000Q).model;
        let q = quantize(&scaled, CoefficientRange::DWAVE_2000Q, bits);
        prop_assert!(CoefficientRange::DWAVE_2000Q.admits(&q, 1e-9));
    }

    #[test]
    fn roof_duality_bound_below_minimum(m in arb_ising()) {
        let n = m.num_vars();
        let min = (0..(1u64 << n))
            .map(|i| m.energy(&bits_to_spins(i, n)))
            .fold(f64::INFINITY, f64::min);
        let rd = roof::roof_duality(&m);
        prop_assert!(rd.lower_bound <= min + 1e-3,
            "roof bound {} exceeds true min {}", rd.lower_bound, min);
    }

    #[test]
    fn roof_duality_weak_persistency(m in arb_ising()) {
        let n = m.num_vars();
        let mut best = f64::INFINITY;
        let mut minima: Vec<Vec<Spin>> = Vec::new();
        for idx in 0..(1u64 << n) {
            let s = bits_to_spins(idx, n);
            let e = m.energy(&s);
            if e < best - 1e-9 {
                best = e;
                minima = vec![s];
            } else if (e - best).abs() <= 1e-9 {
                minima.push(s);
            }
        }
        let rd = roof::roof_duality(&m);
        let ok = minima.iter().any(|assign| {
            rd.fixed.iter().enumerate().all(|(i, f)| f.is_none_or(|v| assign[i] == v))
        });
        prop_assert!(ok, "persistency {:?} not extendable to an optimum", rd.fixed);
    }

    #[test]
    fn fix_variable_matches_restriction(m in arb_ising(), which in 0usize..6, up in any::<bool>()) {
        let n = m.num_vars();
        let i = which % n;
        let spin = Spin::from(up);
        let mut fixed = m.clone();
        fixed.fix_variable(i, spin);
        for idx in 0..(1u64 << n) {
            let mut s = bits_to_spins(idx, n);
            s[i] = spin;
            // After fixing, variable i is inert: any value gives same energy.
            let mut s_other = s.clone();
            s_other[i] = -spin;
            prop_assert!((fixed.energy(&s) - m.energy(&s)).abs() < 1e-9);
            prop_assert!((fixed.energy(&s_other) - m.energy(&s)).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_variable_matches_restriction(m in arb_ising(), up in any::<bool>()) {
        let n = m.num_vars();
        prop_assume!(n >= 2);
        let parity = Spin::from(up);
        let mut merged = m.clone();
        merged.merge_variable(0, 1, parity);
        for idx in 0..(1u64 << n) {
            let mut s = bits_to_spins(idx, n);
            s[1] = if parity == Spin::Up { s[0] } else { -s[0] };
            prop_assert!((merged.energy(&s) - m.energy(&s)).abs() < 1e-9);
        }
    }
}
