use std::fmt;

/// Errors produced by model construction and transformation.
#[derive(Debug, Clone, PartialEq)]
pub enum PbfError {
    /// A variable index was at least the model's variable count.
    VariableOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of variables in the model.
        num_vars: usize,
    },
    /// A quadratic term was requested between a variable and itself.
    SelfCoupling(usize),
    /// A coefficient was not finite (NaN or infinite).
    NonFiniteCoefficient(f64),
    /// The assignment vector length did not match the model.
    AssignmentLength {
        /// Length supplied by the caller.
        got: usize,
        /// Length the model requires.
        expected: usize,
    },
}

impl fmt::Display for PbfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PbfError::VariableOutOfRange { index, num_vars } => {
                write!(
                    f,
                    "variable index {index} out of range for {num_vars} variables"
                )
            }
            PbfError::SelfCoupling(i) => {
                write!(f, "self-coupling requested on variable {i}")
            }
            PbfError::NonFiniteCoefficient(c) => {
                write!(f, "coefficient {c} is not finite")
            }
            PbfError::AssignmentLength { got, expected } => {
                write!(
                    f,
                    "assignment has {got} entries but model has {expected} variables"
                )
            }
        }
    }
}

impl std::error::Error for PbfError {}
