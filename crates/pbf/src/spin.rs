use std::fmt;
use std::ops::Neg;

use serde::{Deserialize, Serialize};

/// A "physics Boolean": false is −1 ([`Spin::Down`]) and true is +1
/// ([`Spin::Up`]).
///
/// The paper's exposition (§2) represents Boolean variables as spins in
/// {−1, +1}; this type keeps that distinction explicit in the type system
/// instead of reusing `bool` or `i8`.
///
/// ```
/// use qac_pbf::Spin;
/// assert_eq!(Spin::from(true), Spin::Up);
/// assert_eq!(Spin::Down.value(), -1.0);
/// assert_eq!(-Spin::Up, Spin::Down);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Spin {
    /// σ = −1, the encoding of logical false.
    Down,
    /// σ = +1, the encoding of logical true.
    Up,
}

impl Spin {
    /// The spin's numeric value, −1.0 or +1.0.
    #[inline]
    pub fn value(self) -> f64 {
        match self {
            Spin::Down => -1.0,
            Spin::Up => 1.0,
        }
    }

    /// The spin's integer value, −1 or +1.
    #[inline]
    pub fn sign(self) -> i8 {
        match self {
            Spin::Down => -1,
            Spin::Up => 1,
        }
    }

    /// The classical bit this spin encodes: `Down → false`, `Up → true`.
    #[inline]
    pub fn to_bool(self) -> bool {
        matches!(self, Spin::Up)
    }

    /// The classical bit as 0/1.
    #[inline]
    pub fn to_bit(self) -> u8 {
        match self {
            Spin::Down => 0,
            Spin::Up => 1,
        }
    }

    /// The opposite spin.
    #[inline]
    pub fn flipped(self) -> Spin {
        match self {
            Spin::Down => Spin::Up,
            Spin::Up => Spin::Down,
        }
    }
}

impl From<bool> for Spin {
    #[inline]
    fn from(b: bool) -> Spin {
        if b {
            Spin::Up
        } else {
            Spin::Down
        }
    }
}

impl From<Spin> for bool {
    #[inline]
    fn from(s: Spin) -> bool {
        s.to_bool()
    }
}

impl Neg for Spin {
    type Output = Spin;
    #[inline]
    fn neg(self) -> Spin {
        self.flipped()
    }
}

impl fmt::Display for Spin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Spin::Down => write!(f, "-1"),
            Spin::Up => write!(f, "+1"),
        }
    }
}

/// A convenience alias for an owned spin assignment.
pub type SpinVec = Vec<Spin>;

/// Converts a little-endian bit index into a spin vector of width `n`.
///
/// Bit `i` of `index` becomes spin `i`. Useful for exhaustively enumerating
/// all 2ⁿ assignments.
///
/// ```
/// use qac_pbf::{bits_to_spins, Spin};
/// assert_eq!(bits_to_spins(0b101, 3), vec![Spin::Up, Spin::Down, Spin::Up]);
/// ```
pub fn bits_to_spins(index: u64, n: usize) -> SpinVec {
    (0..n).map(|i| Spin::from((index >> i) & 1 == 1)).collect()
}

/// Converts a spin slice back into the little-endian bit index that
/// [`bits_to_spins`] would have produced.
///
/// ```
/// use qac_pbf::{bits_to_spins, spins_to_index};
/// for idx in 0..16 {
///     assert_eq!(spins_to_index(&bits_to_spins(idx, 4)), idx);
/// }
/// ```
pub fn spins_to_index(spins: &[Spin]) -> u64 {
    spins
        .iter()
        .enumerate()
        .fold(0, |acc, (i, s)| acc | (u64::from(s.to_bit()) << i))
}

/// Converts a spin slice into a vector of classical bits.
pub fn spins_to_bits(spins: &[Spin]) -> Vec<bool> {
    spins.iter().map(|s| s.to_bool()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_values() {
        assert_eq!(Spin::Down.value(), -1.0);
        assert_eq!(Spin::Up.value(), 1.0);
        assert_eq!(Spin::Down.sign(), -1);
        assert_eq!(Spin::Up.sign(), 1);
    }

    #[test]
    fn spin_bool_round_trip() {
        for b in [false, true] {
            assert_eq!(Spin::from(b).to_bool(), b);
        }
    }

    #[test]
    fn spin_negation_is_involution() {
        for s in [Spin::Down, Spin::Up] {
            assert_eq!(-(-s), s);
            assert_ne!(-s, s);
        }
    }

    #[test]
    fn bits_round_trip_all_nibbles() {
        for idx in 0..16u64 {
            let spins = bits_to_spins(idx, 4);
            assert_eq!(spins.len(), 4);
            assert_eq!(spins_to_index(&spins), idx);
        }
    }

    #[test]
    fn bits_to_spins_zero_width() {
        assert!(bits_to_spins(0, 0).is_empty());
        assert_eq!(spins_to_index(&[]), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Spin::Up.to_string(), "+1");
        assert_eq!(Spin::Down.to_string(), "-1");
    }

    #[test]
    fn spins_to_bits_matches_to_bool() {
        let spins = bits_to_spins(0b0110, 4);
        assert_eq!(spins_to_bits(&spins), vec![false, true, true, false]);
    }
}
