//! A from-scratch Dinic maximum-flow solver.
//!
//! Used by [`crate::roof`] to compute roof duality over the Boros–Hammer
//! implication network, which in turn reproduces the qubit-elision
//! optimization the paper's toolchain delegates to D-Wave SAPI (§4.4).
//!
//! Capacities are integers (`i64`); callers working with real-valued
//! coefficients scale and round first.

/// A directed flow network with integer capacities.
///
/// ```
/// use qac_pbf::flow::FlowNetwork;
///
/// // s --5--> a --3--> t  and  s --2--> t  gives max flow 5.
/// let mut net = FlowNetwork::new(3);
/// let (s, a, t) = (0, 1, 2);
/// net.add_edge(s, a, 5);
/// net.add_edge(a, t, 3);
/// net.add_edge(s, t, 2);
/// assert_eq!(net.max_flow(s, t), 5);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    // Edge list: forward and reverse edges are interleaved (i, i^1).
    to: Vec<usize>,
    cap: Vec<i64>,
    // Adjacency: head[v] is a list of edge indices leaving v.
    head: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// Creates an empty network over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> FlowNetwork {
        FlowNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); num_nodes],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed edge `from → to` with capacity `cap` (and its
    /// residual reverse edge with capacity 0). Returns the edge index, by
    /// which residual capacity can be queried later.
    ///
    /// # Panics
    /// Panics if a node index is out of range or `cap < 0`.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> usize {
        assert!(
            from < self.head.len() && to < self.head.len(),
            "node index in range"
        );
        assert!(cap >= 0, "capacity must be nonnegative");
        let idx = self.to.len();
        self.to.push(to);
        self.cap.push(cap);
        self.head[from].push(idx);
        self.to.push(from);
        self.cap.push(0);
        self.head[to].push(idx + 1);
        idx
    }

    /// Residual capacity of the edge returned by [`FlowNetwork::add_edge`].
    pub fn residual(&self, edge: usize) -> i64 {
        self.cap[edge]
    }

    /// Computes the maximum flow from `source` to `sink`, mutating the
    /// network into its residual form.
    ///
    /// Runs Dinic's algorithm: repeated BFS level graphs with blocking-flow
    /// DFS, O(V²E) in general and much faster on unit-ish networks.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> i64 {
        assert!(source != sink, "source and sink must differ");
        let n = self.head.len();
        let mut total = 0i64;
        let mut level = vec![-1i32; n];
        let mut it = vec![0usize; n];
        loop {
            // BFS to build the level graph.
            for l in level.iter_mut() {
                *l = -1;
            }
            level[source] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(source);
            while let Some(v) = queue.pop_front() {
                for &e in &self.head[v] {
                    let u = self.to[e];
                    if self.cap[e] > 0 && level[u] < 0 {
                        level[u] = level[v] + 1;
                        queue.push_back(u);
                    }
                }
            }
            if level[sink] < 0 {
                break;
            }
            for i in it.iter_mut() {
                *i = 0;
            }
            // Blocking flow with an explicit DFS stack.
            loop {
                let pushed = self.dfs(source, sink, i64::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    fn dfs(&mut self, v: usize, sink: usize, limit: i64, level: &[i32], it: &mut [usize]) -> i64 {
        if v == sink {
            return limit;
        }
        while it[v] < self.head[v].len() {
            let e = self.head[v][it[v]];
            let u = self.to[e];
            if self.cap[e] > 0 && level[u] == level[v] + 1 {
                let pushed = self.dfs(u, sink, limit.min(self.cap[e]), level, it);
                if pushed > 0 {
                    self.cap[e] -= pushed;
                    self.cap[e ^ 1] += pushed;
                    return pushed;
                }
            }
            it[v] += 1;
        }
        0
    }

    /// After [`FlowNetwork::max_flow`], the set of nodes reachable from
    /// `source` in the residual graph (the source side of a minimum cut).
    pub fn min_cut_side(&self, source: usize) -> Vec<bool> {
        let n = self.head.len();
        let mut seen = vec![false; n];
        seen[source] = true;
        let mut stack = vec![source];
        while let Some(v) = stack.pop() {
            for &e in &self.head[v] {
                let u = self.to[e];
                if self.cap[e] > 0 && !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        seen
    }

    /// After [`FlowNetwork::max_flow`], the set of nodes that can reach
    /// `sink` in the residual graph (the sink side of a minimum cut).
    pub fn reaches_sink(&self, sink: usize) -> Vec<bool> {
        // Walk reverse residual edges: u can reach sink if some residual
        // edge u→v exists with v already marked. Equivalently BFS from sink
        // over edges whose *forward* direction into the visited set has
        // residual capacity.
        let n = self.head.len();
        let mut seen = vec![false; n];
        seen[sink] = true;
        let mut stack = vec![sink];
        while let Some(v) = stack.pop() {
            for &e in &self.head[v] {
                // e is an edge v→u; its partner e^1 is u→v. u reaches v
                // (and thus the sink) when cap[e^1] > 0.
                let u = self.to[e];
                if self.cap[e ^ 1] > 0 && !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
    }

    #[test]
    fn series_takes_min() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4);
        net.add_edge(1, 2, 9);
        assert_eq!(net.max_flow(0, 2), 4);
    }

    #[test]
    fn parallel_paths_add() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(1, 3, 3);
        net.add_edge(0, 2, 5);
        net.add_edge(2, 3, 4);
        assert_eq!(net.max_flow(0, 3), 7);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS Figure 26.1-style network, known max flow 23.
        let mut net = FlowNetwork::new(6);
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        net.add_edge(s, v1, 16);
        net.add_edge(s, v2, 13);
        net.add_edge(v1, v3, 12);
        net.add_edge(v2, v1, 4);
        net.add_edge(v2, v4, 14);
        net.add_edge(v3, v2, 9);
        net.add_edge(v3, t, 20);
        net.add_edge(v4, v3, 7);
        net.add_edge(v4, t, 4);
        assert_eq!(net.max_flow(s, t), 23);
    }

    #[test]
    fn disconnected_sink_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn min_cut_separates_source_and_sink() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 3, 100);
        net.add_edge(0, 2, 100);
        net.add_edge(2, 3, 1);
        net.max_flow(0, 3);
        let side = net.min_cut_side(0);
        assert!(side[0]);
        assert!(!side[3]);
        // The cut has capacity 2: edges (0,1) and (2,3).
        assert!(side[2]);
        assert!(!side[1]);
    }

    #[test]
    fn reaches_sink_is_complementary_on_tight_cut() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2);
        net.add_edge(1, 2, 2);
        net.max_flow(0, 2);
        let to_sink = net.reaches_sink(2);
        assert!(to_sink[2]);
        // Saturated chain: nothing else reaches the sink residually.
        assert!(!to_sink[0]);
    }

    /// Brute-force min-cut by enumerating all source-side subsets.
    fn brute_min_cut(n: usize, edges: &[(usize, usize, i64)], s: usize, t: usize) -> i64 {
        let mut best = i64::MAX;
        for mask in 0..(1u32 << n) {
            if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
                continue;
            }
            let mut cut = 0;
            for &(u, v, c) in edges {
                if mask & (1 << u) != 0 && mask & (1 << v) == 0 {
                    cut += c;
                }
            }
            best = best.min(cut);
        }
        best
    }

    #[test]
    fn matches_brute_force_on_random_small_graphs() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = 5;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && next() % 3 == 0 {
                        edges.push((u, v, (next() % 10) as i64));
                    }
                }
            }
            let mut net = FlowNetwork::new(n);
            for &(u, v, c) in &edges {
                net.add_edge(u, v, c);
            }
            let flow = net.max_flow(0, n - 1);
            let cut = brute_min_cut(n, &edges, 0, n - 1);
            assert_eq!(flow, cut, "edges: {edges:?}");
        }
    }
}
