//! Quadratic pseudo-Boolean functions for quantum annealing.
//!
//! This crate provides the two canonical representations of the objective
//! a quantum annealer minimizes (Pakin, ASPLOS 2019, Equations 1–2):
//!
//! * [`Ising`] — the "physics" form over spins σ ∈ {−1, +1}:
//!   `H(σ̄) = Σ hᵢσᵢ + Σ Jᵢⱼσᵢσⱼ + offset`
//! * [`Qubo`] — the operations-research form over bits x ∈ {0, 1}:
//!   `E(x̄) = Σ qᵢxᵢ + Σ qᵢⱼxᵢxⱼ + offset`
//!
//! The two forms are exactly interconvertible ([`Ising::to_qubo`],
//! [`Qubo::to_ising`]) and both support energy evaluation, coefficient
//! iteration, and serialization.
//!
//! On top of the models the crate implements the hardware-facing
//! transformations the paper's toolchain relies on:
//!
//! * [`scale`] — scaling coefficients into the engineering ranges of a
//!   D-Wave 2000Q (`h ∈ [−2, 2]`, `J ∈ [−2, 1]`), including coefficient
//!   quantization to model the machine's limited analog precision.
//! * [`flow`] — a from-scratch Dinic maximum-flow solver.
//! * [`roof`] — roof duality (QPBO) over the Boros–Hammer implication
//!   network, used to fix ("elide") variables whose value in every ground
//!   state can be determined a priori, as SAPI does for QMASM (§4.4).
//!
//! # Example
//!
//! ```
//! use qac_pbf::{Ising, Spin};
//!
//! // A two-ended net (paper Table 1): H = -σ_A σ_Y is minimized iff A == Y.
//! let mut net = Ising::new(2);
//! net.add_j(0, 1, -1.0);
//! let equal = [Spin::Up, Spin::Up];
//! let differ = [Spin::Up, Spin::Down];
//! assert!(net.energy(&equal) < net.energy(&differ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod flow;
mod ising;
mod qubo;
pub mod roof;
pub mod scale;
mod spin;

pub use error::PbfError;
pub use ising::{CsrAdjacency, Ising, JTerm};
pub use qubo::Qubo;
pub use spin::{bits_to_spins, spins_to_bits, spins_to_index, Spin, SpinVec};
