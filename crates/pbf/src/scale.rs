//! Scaling and quantizing coefficients to hardware engineering ranges.
//!
//! A D-Wave 2000Q accepts `h ∈ [−2.0, 2.0]` and `J ∈ [−2.0, 1.0]`
//! (paper §2; the J asymmetry comes from the rf-SQUID coupler physics).
//! Because the machine is analog, coefficients also have limited precision.
//! This module scales a logical [`Ising`] model into range (preserving the
//! energy ordering — scaling by a positive constant does not move the
//! argmin) and optionally quantizes coefficients to a given number of bits
//! to model analog precision.

use crate::Ising;

/// The coefficient ranges a hardware target accepts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoefficientRange {
    /// Minimum allowed linear coefficient.
    pub h_min: f64,
    /// Maximum allowed linear coefficient.
    pub h_max: f64,
    /// Minimum allowed coupling.
    pub j_min: f64,
    /// Maximum allowed coupling.
    pub j_max: f64,
}

impl CoefficientRange {
    /// The D-Wave 2000Q ranges from the paper: `h ∈ [−2, 2]`, `J ∈ [−2, 1]`.
    pub const DWAVE_2000Q: CoefficientRange = CoefficientRange {
        h_min: -2.0,
        h_max: 2.0,
        j_min: -2.0,
        j_max: 1.0,
    };

    /// A symmetric unit range `[−1, 1]` for both h and J.
    pub const UNIT: CoefficientRange = CoefficientRange {
        h_min: -1.0,
        h_max: 1.0,
        j_min: -1.0,
        j_max: 1.0,
    };

    /// Checks that every coefficient of `model` lies inside the range
    /// (within `eps` slack).
    pub fn admits(&self, model: &Ising, eps: f64) -> bool {
        model
            .h_iter()
            .all(|(_, h)| h >= self.h_min - eps && h <= self.h_max + eps)
            && model
                .j_iter()
                .all(|t| t.value >= self.j_min - eps && t.value <= self.j_max + eps)
    }
}

impl Default for CoefficientRange {
    fn default() -> Self {
        CoefficientRange::DWAVE_2000Q
    }
}

/// The outcome of scaling a model into a [`CoefficientRange`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledIsing {
    /// The scaled model (every coefficient within range).
    pub model: Ising,
    /// The positive factor the logical model was multiplied by (≤ 1 for
    /// out-of-range inputs; exactly 1 when the input already fit).
    pub scale: f64,
}

/// Scales `model` by the largest factor ≤ 1 that brings every coefficient
/// into `range`.
///
/// Positive scaling preserves the ordering of all energies, so the set of
/// minimizing assignments is unchanged; only the spectral gap shrinks
/// (which on real hardware hurts robustness — see the gap-maximization
/// ablation in `qac-bench`).
///
/// The offset is scaled too, keeping reported energies consistent.
///
/// # Panics
/// Panics if `range` does not contain 0 in both intervals (such a range
/// cannot admit a zero coefficient and no uniform scaling can fix it).
pub fn scale_to_range(model: &Ising, range: CoefficientRange) -> ScaledIsing {
    assert!(
        range.h_min <= 0.0 && range.h_max >= 0.0 && range.j_min <= 0.0 && range.j_max >= 0.0,
        "coefficient range must contain zero"
    );
    let mut factor: f64 = 1.0;
    for (_, h) in model.h_iter() {
        if h > range.h_max {
            factor = factor.min(range.h_max / h);
        } else if h < range.h_min {
            factor = factor.min(range.h_min / h);
        }
    }
    for t in model.j_iter() {
        if t.value > range.j_max {
            factor = factor.min(range.j_max / t.value);
        } else if t.value < range.j_min {
            factor = factor.min(range.j_min / t.value);
        }
    }
    let mut scaled = Ising::new(model.num_vars());
    for (i, h) in model.h_iter() {
        if h != 0.0 {
            scaled.add_h(i, h * factor);
        }
    }
    for t in model.j_iter() {
        if t.value != 0.0 {
            scaled.add_j(t.i, t.j, t.value * factor);
        }
    }
    scaled.add_offset(model.offset() * factor);
    ScaledIsing {
        model: scaled,
        scale: factor,
    }
}

/// Quantizes every coefficient of `model` to `bits` bits of precision over
/// `range`, emulating the analog DAC resolution of real hardware.
///
/// Each coefficient is snapped to the nearest representable step
/// `(max − min) / (2^bits − 1)` of its interval. A D-Wave 2000Q has on the
/// order of 5–6 effective bits.
///
/// # Panics
/// Panics if `bits` is 0 or greater than 52.
pub fn quantize(model: &Ising, range: CoefficientRange, bits: u32) -> Ising {
    assert!((1..=52).contains(&bits), "bits must be in 1..=52");
    let steps = (1u64 << bits) as f64 - 1.0;
    let snap = |v: f64, lo: f64, hi: f64| -> f64 {
        let step = (hi - lo) / steps;
        let q = ((v - lo) / step).round();
        (lo + q * step).clamp(lo, hi)
    };
    let mut out = Ising::new(model.num_vars());
    for (i, h) in model.h_iter() {
        if h != 0.0 {
            out.add_h(i, snap(h, range.h_min, range.h_max));
        }
    }
    for t in model.j_iter() {
        if t.value != 0.0 {
            out.add_j(t.i, t.j, snap(t.value, range.j_min, range.j_max));
        }
    }
    out.add_offset(model.offset());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits_to_spins;

    fn wild_model() -> Ising {
        let mut m = Ising::new(3);
        m.add_h(0, 5.0);
        m.add_h(1, -3.0);
        m.add_j(0, 1, -8.0);
        m.add_j(1, 2, 4.0);
        m
    }

    #[test]
    fn scaling_brings_into_range() {
        let m = wild_model();
        let range = CoefficientRange::DWAVE_2000Q;
        assert!(!range.admits(&m, 1e-9));
        let scaled = scale_to_range(&m, range);
        assert!(range.admits(&scaled.model, 1e-9));
        assert!(scaled.scale > 0.0 && scaled.scale < 1.0);
    }

    #[test]
    fn scaling_preserves_energy_ordering() {
        let m = wild_model();
        let scaled = scale_to_range(&m, CoefficientRange::DWAVE_2000Q);
        let mut pairs: Vec<(f64, f64)> = (0..8)
            .map(|i| {
                let s = bits_to_spins(i, 3);
                (m.energy(&s), scaled.model.energy(&s))
            })
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12, "ordering violated: {pairs:?}");
        }
    }

    #[test]
    fn in_range_model_untouched() {
        let mut m = Ising::new(2);
        m.add_h(0, 1.0);
        m.add_j(0, 1, -1.5);
        let scaled = scale_to_range(&m, CoefficientRange::DWAVE_2000Q);
        assert_eq!(scaled.scale, 1.0);
        assert_eq!(scaled.model, m);
    }

    #[test]
    fn j_asymmetry_respected() {
        // J = 1.5 exceeds the +1.0 J limit even though |1.5| < 2.
        let mut m = Ising::new(2);
        m.add_j(0, 1, 1.5);
        let scaled = scale_to_range(&m, CoefficientRange::DWAVE_2000Q);
        assert!((scaled.model.j(0, 1) - 1.0).abs() < 1e-12);
        assert!((scaled.scale - 1.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn quantize_snaps_to_grid() {
        let mut m = Ising::new(2);
        m.add_h(0, 0.123_456);
        m.add_j(0, 1, -0.987_654);
        let q = quantize(&m, CoefficientRange::UNIT, 4);
        let step = 2.0 / 15.0;
        let h = q.h(0);
        let rem = ((h + 1.0) / step).round() * step - 1.0;
        assert!((h - rem).abs() < 1e-12);
        assert!(CoefficientRange::UNIT.admits(&q, 1e-12));
    }

    #[test]
    fn quantize_high_precision_is_near_identity() {
        let mut m = Ising::new(2);
        m.add_h(0, 0.5);
        m.add_j(0, 1, -0.25);
        let q = quantize(&m, CoefficientRange::UNIT, 30);
        assert!((q.h(0) - 0.5).abs() < 1e-6);
        assert!((q.j(0, 1) + 0.25).abs() < 1e-6);
    }
}
