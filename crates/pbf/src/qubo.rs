use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Ising, PbfError};

/// A quadratic unconstrained binary optimization problem
/// `E(x̄) = Σ qᵢxᵢ + Σ_{i<j} qᵢⱼxᵢxⱼ + offset` over bits x ∈ {0, 1}.
///
/// This is the 0/1 form used by qbsolv and the operations-research
/// community (paper §2 footnote). It is exactly interconvertible with
/// [`Ising`] via x = (σ + 1) / 2.
///
/// ```
/// use qac_pbf::Qubo;
///
/// // E = 3·x0·x1 − 2·x0 − 2·x1 has minimum −2 at (1,0) and (0,1).
/// let mut q = Qubo::new(2);
/// q.add_linear(0, -2.0);
/// q.add_linear(1, -2.0);
/// q.add_quadratic(0, 1, 3.0);
/// assert_eq!(q.energy(&[true, false]), -2.0);
/// assert_eq!(q.energy(&[true, true]), -1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Qubo {
    num_vars: usize,
    linear: Vec<f64>,
    quadratic: BTreeMap<(usize, usize), f64>,
    offset: f64,
}

impl Qubo {
    /// Creates an all-zero QUBO over `num_vars` binary variables.
    pub fn new(num_vars: usize) -> Qubo {
        Qubo {
            num_vars,
            linear: vec![0.0; num_vars],
            quadratic: BTreeMap::new(),
            offset: 0.0,
        }
    }

    /// Number of binary variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The constant offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Adds `delta` to the constant offset.
    pub fn add_offset(&mut self, delta: f64) {
        self.offset += delta;
    }

    /// The linear coefficient of `xᵢ`.
    pub fn linear(&self, i: usize) -> f64 {
        self.linear[i]
    }

    /// The quadratic coefficient of `xᵢxⱼ` (0.0 if absent).
    pub fn quadratic(&self, i: usize, j: usize) -> f64 {
        let key = if i < j { (i, j) } else { (j, i) };
        self.quadratic.get(&key).copied().unwrap_or(0.0)
    }

    /// Accumulates `delta` onto the linear coefficient of `xᵢ`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn add_linear(&mut self, i: usize, delta: f64) {
        assert!(i < self.num_vars, "variable index in range");
        self.linear[i] += delta;
    }

    /// Accumulates `delta` onto the quadratic coefficient of `xᵢxⱼ`.
    ///
    /// # Panics
    /// Panics if either index is out of range or `i == j`. (A QUBO self
    /// product `xᵢxᵢ = xᵢ` should be added as a linear term.)
    pub fn add_quadratic(&mut self, i: usize, j: usize, delta: f64) {
        assert!(i != j, "use add_linear for diagonal terms");
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        assert!(b < self.num_vars, "variable index in range");
        *self.quadratic.entry((a, b)).or_insert(0.0) += delta;
    }

    /// Iterates over linear coefficients `(i, qᵢ)`.
    pub fn linear_iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.linear.iter().copied().enumerate()
    }

    /// Iterates over quadratic terms `((i, j), qᵢⱼ)`.
    pub fn quadratic_iter(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.quadratic.iter().map(|(&k, &v)| (k, v))
    }

    /// Evaluates `E(x̄)`.
    ///
    /// # Panics
    /// Panics if `bits.len() != num_vars`. See [`Qubo::try_energy`].
    pub fn energy(&self, bits: &[bool]) -> f64 {
        self.try_energy(bits)
            .expect("assignment length matches model")
    }

    /// Fallible version of [`Qubo::energy`].
    ///
    /// # Errors
    /// Returns [`PbfError::AssignmentLength`] on a length mismatch.
    pub fn try_energy(&self, bits: &[bool]) -> Result<f64, PbfError> {
        if bits.len() != self.num_vars {
            return Err(PbfError::AssignmentLength {
                got: bits.len(),
                expected: self.num_vars,
            });
        }
        let mut e = self.offset;
        for (i, &q) in self.linear.iter().enumerate() {
            if bits[i] {
                e += q;
            }
        }
        for (&(i, j), &q) in &self.quadratic {
            if bits[i] && bits[j] {
                e += q;
            }
        }
        Ok(e)
    }

    /// Converts to the equivalent Ising model via x = (σ + 1)/2.
    ///
    /// Energies are preserved exactly.
    pub fn to_ising(&self) -> Ising {
        let mut m = Ising::new(self.num_vars);
        let mut offset = self.offset;
        for (i, &q) in self.linear.iter().enumerate() {
            // qx = q(σ+1)/2
            m.add_h(i, q / 2.0);
            offset += q / 2.0;
        }
        for (&(i, j), &q) in &self.quadratic {
            // qxx' = q(σ+1)(σ'+1)/4
            m.add_j(i, j, q / 4.0);
            m.add_h(i, q / 4.0);
            m.add_h(j, q / 4.0);
            offset += q / 4.0;
        }
        m.add_offset(offset);
        m
    }

    /// Builds an adjacency list of coupled partners per variable.
    pub fn adjacency(&self) -> Vec<Vec<(usize, f64)>> {
        let mut adj = vec![Vec::new(); self.num_vars];
        for (&(i, j), &v) in &self.quadratic {
            if v != 0.0 {
                adj[i].push((j, v));
                adj[j].push((i, v));
            }
        }
        adj
    }

    /// Number of stored quadratic entries.
    pub fn num_quadratic(&self) -> usize {
        self.quadratic.len()
    }
}

impl fmt::Display for Qubo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# QUBO: {} variables, {} quadratic terms",
            self.num_vars,
            self.quadratic.len()
        )?;
        if self.offset != 0.0 {
            writeln!(f, "offset {}", self.offset)?;
        }
        for (i, &q) in self.linear.iter().enumerate() {
            if q != 0.0 {
                writeln!(f, "{i} {i} {q}")?;
            }
        }
        for (&(i, j), &q) in &self.quadratic {
            if q != 0.0 {
                writeln!(f, "{i} {j} {q}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bits_to_spins, spins_to_bits};

    fn sample_qubo() -> Qubo {
        let mut q = Qubo::new(4);
        q.add_linear(0, 1.5);
        q.add_linear(2, -2.0);
        q.add_quadratic(0, 1, -1.0);
        q.add_quadratic(1, 3, 3.0);
        q.add_quadratic(2, 3, 0.5);
        q.add_offset(0.25);
        q
    }

    #[test]
    fn energy_basics() {
        let q = sample_qubo();
        assert_eq!(q.energy(&[false; 4]), 0.25);
        assert_eq!(q.energy(&[true, true, false, false]), 0.25 + 1.5 - 1.0);
    }

    #[test]
    fn ising_round_trip_preserves_energy() {
        let q = sample_qubo();
        let m = q.to_ising();
        for idx in 0..16u64 {
            let spins = bits_to_spins(idx, 4);
            let bits = spins_to_bits(&spins);
            assert!(
                (q.energy(&bits) - m.energy(&spins)).abs() < 1e-12,
                "mismatch at {idx}"
            );
        }
        let q2 = m.to_qubo();
        for idx in 0..16u64 {
            let bits = spins_to_bits(&bits_to_spins(idx, 4));
            assert!((q.energy(&bits) - q2.energy(&bits)).abs() < 1e-12);
        }
    }

    #[test]
    fn quadratic_key_normalized() {
        let mut q = Qubo::new(3);
        q.add_quadratic(2, 1, 1.0);
        q.add_quadratic(1, 2, 1.0);
        assert_eq!(q.quadratic(1, 2), 2.0);
        assert_eq!(q.num_quadratic(), 1);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn self_quadratic_panics() {
        let mut q = Qubo::new(2);
        q.add_quadratic(1, 1, 1.0);
    }

    #[test]
    fn try_energy_length_check() {
        let q = sample_qubo();
        assert!(q.try_energy(&[true]).is_err());
    }

    #[test]
    fn display_is_nonempty() {
        let q = Qubo::new(0);
        assert!(!q.to_string().is_empty());
    }
}
