//! Roof duality (QPBO) for quadratic pseudo-Boolean minimization.
//!
//! The paper's toolchain uses "SAPI's implementation of roof duality to
//! elide qubits whose final value can be determined a priori" (§4.4). This
//! module reimplements that optimization from scratch: the QUBO is written
//! as a *posiform* (all term coefficients positive over literals), the
//! posiform induces the Boros–Hammer implication network, and a maximum
//! flow on that network yields
//!
//! * a lower bound on the minimum energy (the *roof dual*), and
//! * *persistent* assignments: variables whose value is the same in some
//!   (weak persistency) minimizer, determined from residual reachability.
//!
//! Fixed variables can then be substituted out of the model with
//! [`Ising::fix_variable`], shrinking the qubit footprint.

use crate::flow::FlowNetwork;
use crate::{Ising, Spin};

/// Fixed-point scale for converting real coefficients to integer flow
/// capacities (2²⁰ ≈ 6 decimal digits of precision).
const SCALE: f64 = (1u64 << 20) as f64;

/// The outcome of a roof-duality analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RoofDuality {
    /// Per-variable persistent assignment, `None` when undetermined.
    pub fixed: Vec<Option<Spin>>,
    /// A lower bound on the minimum energy of the model.
    pub lower_bound: f64,
}

impl RoofDuality {
    /// Number of variables the analysis managed to fix.
    pub fn num_fixed(&self) -> usize {
        self.fixed.iter().filter(|f| f.is_some()).count()
    }
}

/// Runs roof duality on `model` and reports persistencies plus the dual
/// lower bound.
///
/// Persistency is *weak*: for every variable reported as fixed there exists
/// at least one global minimizer agreeing with the fix (and all reported
/// fixes are simultaneously extendable to a minimizer).
///
/// ```
/// use qac_pbf::{roof::roof_duality, Ising, Spin};
///
/// // H = σ0 (pins variable 0 to −1) plus an equality chain to variable 1.
/// let mut m = Ising::new(2);
/// m.add_h(0, 1.0);
/// m.add_j(0, 1, -1.0);
/// let rd = roof_duality(&m);
/// assert_eq!(rd.fixed[0], Some(Spin::Down));
/// assert_eq!(rd.fixed[1], Some(Spin::Down));
/// assert!((rd.lower_bound - (-2.0)).abs() < 1e-3);
/// ```
pub fn roof_duality(model: &Ising) -> RoofDuality {
    let qubo = model.to_qubo();
    let n = qubo.num_vars();
    if n == 0 {
        return RoofDuality {
            fixed: Vec::new(),
            lower_bound: qubo.offset(),
        };
    }

    // --- Build the posiform. ---
    // Literal encoding: literal of variable i is 2i (positive) or 2i+1
    // (negated). Terms: (coefficient > 0, literals).
    let mut constant = qubo.offset();
    let mut linear: Vec<f64> = (0..n).map(|i| qubo.linear(i)).collect();
    // Quadratic posiform terms (c, lit_u, lit_v) with c > 0.
    let mut quad_terms: Vec<(f64, usize, usize)> = Vec::new();
    for ((i, j), c) in qubo.quadratic_iter() {
        if c == 0.0 {
            continue;
        }
        if c > 0.0 {
            quad_terms.push((c, 2 * i, 2 * j));
        } else {
            // c·x_i·x_j = c·x_i(1 − x̄_j) = c·x_i + (−c)·x_i·x̄_j
            linear[i] += c;
            quad_terms.push((-c, 2 * i, 2 * j + 1));
        }
    }
    // Linear posiform terms (c, lit) with c > 0.
    let mut lin_terms: Vec<(f64, usize)> = Vec::new();
    for (i, &c) in linear.iter().enumerate() {
        if c == 0.0 {
            continue;
        }
        if c > 0.0 {
            lin_terms.push((c, 2 * i));
        } else {
            // c·x_i = c(1 − x̄_i) = c + (−c)·x̄_i
            constant += c;
            lin_terms.push((-c, 2 * i + 1));
        }
    }

    // --- Build the implication network. ---
    // Nodes: 0..2n are literals; 2n = source (the constant-true literal),
    // 2n+1 = sink (constant false).
    let source = 2 * n;
    let sink = 2 * n + 1;
    let mut net = FlowNetwork::new(2 * n + 2);
    let negate = |lit: usize| lit ^ 1;
    let cap_of = |c: f64| -> i64 { (c * SCALE).round() as i64 };
    for &(c, u) in &lin_terms {
        // Term c·u: penalty when u = 1. Arcs s → ū and u → t, capacity c each
        // (uniformly doubled relative to the textbook c/2 to stay integral).
        let cap = cap_of(c);
        if cap > 0 {
            net.add_edge(source, negate(u), cap);
            net.add_edge(u, sink, cap);
        }
    }
    for &(c, u, v) in &quad_terms {
        // Term c·u·v: penalty when both true. Arcs u → v̄ and v → ū.
        let cap = cap_of(c);
        if cap > 0 {
            net.add_edge(u, negate(v), cap);
            net.add_edge(v, negate(u), cap);
        }
    }

    let flow = net.max_flow(source, sink);
    // Capacities were doubled, so the dual improvement is flow / 2.
    let lower_bound = constant + (flow as f64) / (2.0 * SCALE);

    // --- Persistency from residual reachability. ---
    let from_source = net.min_cut_side(source);
    let to_sink = net.reaches_sink(sink);
    let mut fixed: Vec<Option<Spin>> = vec![None; n];
    for (i, slot) in fixed.iter_mut().enumerate() {
        let pos = 2 * i;
        let neg = 2 * i + 1;
        // Literal reachable from the true-source in the residual graph must
        // be true; literal that can still reach the false-sink must be false.
        let mut vote_true = false; // x_i = 1
        let mut vote_false = false; // x_i = 0
        if from_source[pos] {
            vote_true = true;
        }
        if from_source[neg] {
            vote_false = true;
        }
        if to_sink[pos] {
            vote_false = true;
        }
        if to_sink[neg] {
            vote_true = true;
        }
        *slot = match (vote_true, vote_false) {
            (true, false) => Some(Spin::Up),
            (false, true) => Some(Spin::Down),
            _ => None,
        };
    }

    RoofDuality { fixed, lower_bound }
}

/// Runs roof duality and substitutes every fixed variable out of `model`
/// in place. Returns the `(variable, value)` pairs that were fixed.
///
/// After this call the fixed variables are inert (zero coefficients); their
/// contribution has been folded into the offset and neighbor fields, so the
/// ground-state energy and the restriction of every ground state to the
/// remaining variables are unchanged.
pub fn apply_roof_duality(model: &mut Ising) -> Vec<(usize, Spin)> {
    let rd = roof_duality(model);
    let mut fixed = Vec::new();
    for (i, f) in rd.fixed.iter().enumerate() {
        if let Some(spin) = f {
            model.fix_variable(i, *spin);
            fixed.push((i, *spin));
        }
    }
    // `fix_variable` folds J terms into neighbor fields, but couplings
    // that had accumulated to exactly 0.0 (e.g. `add_j` cancellation)
    // stay behind as stored zero entries — dangling edges that inflate
    // `num_couplings`/`adjacency` degrees after the substitution.
    model.prune(0.0);
    fixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits_to_spins;

    /// Exact minimum by enumeration (for n ≤ 20).
    fn brute_minima(model: &Ising) -> (f64, Vec<Vec<Spin>>) {
        let n = model.num_vars();
        let mut best = f64::INFINITY;
        let mut minima = Vec::new();
        for idx in 0..(1u64 << n) {
            let spins = bits_to_spins(idx, n);
            let e = model.energy(&spins);
            if e < best - 1e-9 {
                best = e;
                minima = vec![spins];
            } else if (e - best).abs() <= 1e-9 {
                minima.push(spins);
            }
        }
        (best, minima)
    }

    #[test]
    fn pinned_variable_is_fixed() {
        let mut m = Ising::new(1);
        m.add_h(0, -1.0); // minimized at σ = +1
        let rd = roof_duality(&m);
        assert_eq!(rd.fixed[0], Some(Spin::Up));
        assert!((rd.lower_bound - (-1.0)).abs() < 1e-3);
    }

    #[test]
    fn frustration_free_chain_fully_fixed() {
        // σ0 pinned up, ferromagnetic chain propagates to all.
        let mut m = Ising::new(4);
        m.add_h(0, -1.0);
        for i in 0..3 {
            m.add_j(i, i + 1, -1.0);
        }
        let rd = roof_duality(&m);
        for i in 0..4 {
            assert_eq!(rd.fixed[i], Some(Spin::Up), "var {i}");
        }
    }

    #[test]
    fn symmetric_coupler_stays_unknown() {
        // Pure −σ0σ1 has two symmetric minima; nothing is persistent.
        let mut m = Ising::new(2);
        m.add_j(0, 1, -1.0);
        let rd = roof_duality(&m);
        assert_eq!(rd.fixed, vec![None, None]);
        // Dual bound cannot exceed the true minimum of −1.
        assert!(rd.lower_bound <= -1.0 + 1e-3);
    }

    #[test]
    fn lower_bound_never_exceeds_minimum() {
        let cases: Vec<Ising> = {
            let mut v = Vec::new();
            let mut m = Ising::new(3);
            m.add_h(0, 0.5);
            m.add_h(1, -0.25);
            m.add_j(0, 1, 0.75);
            m.add_j(1, 2, -0.5);
            v.push(m);
            let mut m = Ising::new(4);
            m.add_j(0, 1, 1.0);
            m.add_j(1, 2, 1.0);
            m.add_j(2, 3, 1.0);
            m.add_j(0, 3, 1.0); // frustrated cycle
            v.push(m);
            v
        };
        for m in cases {
            let (min, _) = brute_minima(&m);
            let rd = roof_duality(&m);
            assert!(
                rd.lower_bound <= min + 1e-3,
                "bound {} exceeds min {min}",
                rd.lower_bound
            );
        }
    }

    #[test]
    fn persistency_consistent_with_some_optimum_random() {
        // Deterministic xorshift RNG.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let n = 2 + (next() % 6) as usize; // 2..=7 variables
            let mut m = Ising::new(n);
            for i in 0..n {
                if next() % 2 == 0 {
                    let v = ((next() % 9) as f64 - 4.0) / 2.0;
                    m.add_h(i, v);
                }
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    if next() % 3 == 0 {
                        let v = ((next() % 9) as f64 - 4.0) / 2.0;
                        if v != 0.0 {
                            m.add_j(i, j, v);
                        }
                    }
                }
            }
            let (_, minima) = brute_minima(&m);
            let rd = roof_duality(&m);
            // There must exist a global optimum consistent with every fix.
            let consistent = minima.iter().any(|assign| {
                rd.fixed
                    .iter()
                    .enumerate()
                    .all(|(i, f)| f.is_none_or(|s| assign[i] == s))
            });
            assert!(
                consistent,
                "case {case}: fixes {:?} not in any optimum",
                rd.fixed
            );
        }
    }

    #[test]
    fn apply_preserves_ground_energy() {
        let mut m = Ising::new(3);
        m.add_h(0, 1.5);
        m.add_j(0, 1, -1.0);
        m.add_j(1, 2, 0.5);
        let (min_before, _) = brute_minima(&m);
        let mut reduced = m.clone();
        let fixed = apply_roof_duality(&mut reduced);
        let (min_after, _) = brute_minima(&reduced);
        assert!((min_before - min_after).abs() < 1e-9);
        assert!(!fixed.is_empty(), "pinned model should fix something");
    }

    #[test]
    fn apply_prunes_dangling_zero_couplings() {
        // A coupling accumulated to exactly zero is a stored entry that
        // `fix_variable` never touches; after substitution it must not
        // survive as a dangling edge. Regression: variable count,
        // coupling count, and every degree shrink monotonically.
        let mut m = Ising::new(4);
        m.add_h(0, 2.0); // pins var 0 down, chain drags var 1 along
        m.add_j(0, 1, -1.0);
        m.add_j(1, 2, 0.5);
        m.add_j(2, 3, 0.75);
        m.add_j(2, 3, -0.75); // cancels to a stored zero entry
        assert_eq!(m.num_couplings(), 3);
        let before_active = m.active_variables().len();
        let before_couplings = m.num_couplings();
        let before_deg: Vec<usize> = m.adjacency().iter().map(Vec::len).collect();

        let fixed = apply_roof_duality(&mut m);
        assert!(!fixed.is_empty());

        let after_active = m.active_variables().len();
        let after_deg: Vec<usize> = m.adjacency().iter().map(Vec::len).collect();
        assert!(after_active < before_active);
        assert!(m.num_couplings() < before_couplings);
        for (v, (&b, &a)) in before_deg.iter().zip(&after_deg).enumerate() {
            assert!(a <= b, "degree of {v} grew: {b} -> {a}");
        }
        // No stored entry may be exactly zero afterwards.
        assert!(m.j_iter().all(|t| t.value != 0.0));
        // And the fixed variables are fully inert.
        for (v, _) in fixed {
            assert_eq!(m.h(v), 0.0);
            assert!(m.j_iter().all(|t| t.i != v && t.j != v));
        }
    }

    #[test]
    fn empty_model() {
        let m = Ising::new(0);
        let rd = roof_duality(&m);
        assert!(rd.fixed.is_empty());
        assert_eq!(rd.num_fixed(), 0);
    }
}
