use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{PbfError, Qubo, Spin};

/// One quadratic coupling term `J_{i,j} σᵢ σⱼ` with `i < j`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JTerm {
    /// First variable (always the smaller index).
    pub i: usize,
    /// Second variable (always the larger index).
    pub j: usize,
    /// Coupling strength.
    pub value: f64,
}

/// An Ising-model Hamiltonian `H(σ̄) = Σ hᵢσᵢ + Σ_{i<j} Jᵢⱼσᵢσⱼ + offset`
/// over spins σ ∈ {−1, +1} (paper Equation 2).
///
/// This is the logical object a quantum annealer minimizes. Programs for the
/// annealer are "nothing more than a set of hᵢ and Jᵢⱼ coefficients" (§2);
/// this type is that program.
///
/// Couplings are stored sparsely and keyed on ordered pairs, so
/// `add_j(4, 2, w)` and `add_j(2, 4, w)` accumulate onto the same term.
///
/// ```
/// use qac_pbf::{bits_to_spins, Ising};
///
/// // H = 2σ_Y − σ_A − σ_B − 2σ_Yσ_A − 2σ_Yσ_B + σ_Aσ_B  (an AND gate, Table 2)
/// let mut h = Ising::new(3); // order: Y, A, B
/// h.add_h(0, 2.0);
/// h.add_h(1, -1.0);
/// h.add_h(2, -1.0);
/// h.add_j(0, 1, -2.0);
/// h.add_j(0, 2, -2.0);
/// h.add_j(1, 2, 1.0);
/// // Ground states are exactly the rows of the AND truth table.
/// let energies: Vec<f64> = (0..8).map(|i| h.energy(&bits_to_spins(i, 3))).collect();
/// let min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
/// let ground: Vec<usize> =
///     (0..8).filter(|&i| (energies[i] - min).abs() < 1e-9).collect();
/// // bit 0 = Y, bit 1 = A, bit 2 = B: valid rows are Y = A AND B.
/// assert_eq!(ground, vec![0b000, 0b010, 0b100, 0b111]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Ising {
    num_vars: usize,
    h: Vec<f64>,
    j: BTreeMap<(usize, usize), f64>,
    offset: f64,
}

impl Ising {
    /// Creates an all-zero Hamiltonian over `num_vars` spins.
    pub fn new(num_vars: usize) -> Ising {
        Ising {
            num_vars,
            h: vec![0.0; num_vars],
            j: BTreeMap::new(),
            offset: 0.0,
        }
    }

    /// Number of spin variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Grows the model to at least `num_vars` variables (no-op if smaller).
    pub fn resize(&mut self, num_vars: usize) {
        if num_vars > self.num_vars {
            self.h.resize(num_vars, 0.0);
            self.num_vars = num_vars;
        }
    }

    /// The constant energy offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Adds `delta` to the constant offset.
    pub fn add_offset(&mut self, delta: f64) {
        self.offset += delta;
    }

    /// The linear coefficient `hᵢ`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn h(&self, i: usize) -> f64 {
        self.h[i]
    }

    /// The quadratic coefficient `Jᵢⱼ` (0.0 if absent).
    pub fn j(&self, i: usize, j: usize) -> f64 {
        let key = if i < j { (i, j) } else { (j, i) };
        self.j.get(&key).copied().unwrap_or(0.0)
    }

    /// Accumulates `delta` onto the linear coefficient `hᵢ`.
    ///
    /// # Panics
    /// Panics if `i` is out of range. Use [`Ising::try_add_h`] for a
    /// fallible variant.
    pub fn add_h(&mut self, i: usize, delta: f64) {
        self.try_add_h(i, delta).expect("variable index in range");
    }

    /// Fallible version of [`Ising::add_h`].
    ///
    /// # Errors
    /// Returns [`PbfError::VariableOutOfRange`] if `i ≥ num_vars` and
    /// [`PbfError::NonFiniteCoefficient`] for NaN/infinite deltas.
    pub fn try_add_h(&mut self, i: usize, delta: f64) -> Result<(), PbfError> {
        if i >= self.num_vars {
            return Err(PbfError::VariableOutOfRange {
                index: i,
                num_vars: self.num_vars,
            });
        }
        if !delta.is_finite() {
            return Err(PbfError::NonFiniteCoefficient(delta));
        }
        self.h[i] += delta;
        Ok(())
    }

    /// Accumulates `delta` onto the coupling `Jᵢⱼ`, normalizing index order.
    ///
    /// # Panics
    /// Panics if either index is out of range or `i == j`. Use
    /// [`Ising::try_add_j`] for a fallible variant.
    pub fn add_j(&mut self, i: usize, j: usize, delta: f64) {
        self.try_add_j(i, j, delta).expect("valid coupling");
    }

    /// Fallible version of [`Ising::add_j`].
    ///
    /// # Errors
    /// Returns [`PbfError::SelfCoupling`] when `i == j`,
    /// [`PbfError::VariableOutOfRange`] for indices past the end, and
    /// [`PbfError::NonFiniteCoefficient`] for NaN/infinite deltas.
    pub fn try_add_j(&mut self, i: usize, j: usize, delta: f64) -> Result<(), PbfError> {
        if i == j {
            return Err(PbfError::SelfCoupling(i));
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        if b >= self.num_vars {
            return Err(PbfError::VariableOutOfRange {
                index: b,
                num_vars: self.num_vars,
            });
        }
        if !delta.is_finite() {
            return Err(PbfError::NonFiniteCoefficient(delta));
        }
        *self.j.entry((a, b)).or_insert(0.0) += delta;
        Ok(())
    }

    /// Overwrites the linear coefficient `hᵢ` (incremental splicing:
    /// the caller re-accumulates the term from scratch).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_h(&mut self, i: usize, value: f64) {
        assert!(i < self.num_vars, "variable index in range");
        self.h[i] = value;
    }

    /// Overwrites the constant offset (incremental splicing).
    pub fn set_offset(&mut self, value: f64) {
        self.offset = value;
    }

    /// Removes the stored coupling entry for `(i, j)` entirely, as if it
    /// had never been accumulated. Distinct from adding the negation:
    /// a removed entry leaves no `0.0`-valued key behind, so a spliced
    /// model compares equal to one rebuilt from scratch.
    pub fn clear_j(&mut self, i: usize, j: usize) {
        let key = if i < j { (i, j) } else { (j, i) };
        self.j.remove(&key);
    }

    /// Iterates over the nonzero-keyed linear coefficients `(i, hᵢ)`.
    pub fn h_iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.h.iter().copied().enumerate()
    }

    /// Iterates over the stored quadratic terms.
    pub fn j_iter(&self) -> impl Iterator<Item = JTerm> + '_ {
        self.j.iter().map(|(&(i, j), &value)| JTerm { i, j, value })
    }

    /// Number of stored coupling entries (including explicit zeros).
    pub fn num_couplings(&self) -> usize {
        self.j.len()
    }

    /// Number of terms with magnitude above `eps` (linear + quadratic),
    /// the "size" metric of §6.1.
    pub fn num_terms(&self, eps: f64) -> usize {
        self.h.iter().filter(|v| v.abs() > eps).count()
            + self.j.values().filter(|v| v.abs() > eps).count()
    }

    /// Removes stored couplings with magnitude at most `eps`.
    pub fn prune(&mut self, eps: f64) {
        self.j.retain(|_, v| v.abs() > eps);
    }

    /// Evaluates `H(σ̄)` for the given assignment.
    ///
    /// # Panics
    /// Panics if `spins.len() != num_vars`. Use [`Ising::try_energy`] for a
    /// fallible variant.
    pub fn energy(&self, spins: &[Spin]) -> f64 {
        self.try_energy(spins)
            .expect("assignment length matches model")
    }

    /// Fallible version of [`Ising::energy`].
    ///
    /// # Errors
    /// Returns [`PbfError::AssignmentLength`] on a length mismatch.
    pub fn try_energy(&self, spins: &[Spin]) -> Result<f64, PbfError> {
        if spins.len() != self.num_vars {
            return Err(PbfError::AssignmentLength {
                got: spins.len(),
                expected: self.num_vars,
            });
        }
        let mut e = self.offset;
        for (i, &hi) in self.h.iter().enumerate() {
            e += hi * spins[i].value();
        }
        for (&(i, j), &jij) in &self.j {
            e += jij * spins[i].value() * spins[j].value();
        }
        Ok(e)
    }

    /// The energy change from flipping spin `i` in `spins`.
    ///
    /// Computing `ΔE` locally is O(degree) instead of O(model), which
    /// samplers rely on.
    pub fn flip_delta(&self, spins: &[Spin], i: usize, neighbors: &[(usize, f64)]) -> f64 {
        let si = spins[i].value();
        let mut field = self.h[i];
        for &(other, jij) in neighbors {
            field += jij * spins[other].value();
        }
        -2.0 * si * field
    }

    /// Builds an adjacency list: for each variable, its coupled partners and
    /// coupling strengths. Samplers precompute this once.
    pub fn adjacency(&self) -> Vec<Vec<(usize, f64)>> {
        let mut adj = vec![Vec::new(); self.num_vars];
        for (&(i, j), &v) in &self.j {
            if v != 0.0 {
                adj[i].push((j, v));
                adj[j].push((i, v));
            }
        }
        adj
    }

    /// Builds the same adjacency as [`Ising::adjacency`] in
    /// compressed-sparse-row form: one flat `(partner, J)` array plus
    /// per-variable offsets, so a sampler's inner sweep walks a single
    /// allocation instead of `num_vars` separate heap rows. Per-row entry
    /// order matches `adjacency()` exactly (couplings in `BTreeMap`
    /// order), so [`Ising::flip_delta_csr`] accumulates the local field
    /// in the identical order and returns bit-identical deltas.
    ///
    /// # Panics
    /// Panics if the model has `u32::MAX` or more variables.
    pub fn csr_adjacency(&self) -> CsrAdjacency {
        assert!(
            self.num_vars < u32::MAX as usize,
            "model too large for a u32 CSR"
        );
        let mut degree = vec![0u32; self.num_vars];
        for (&(i, j), &v) in &self.j {
            if v != 0.0 {
                degree[i] += 1;
                degree[j] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(self.num_vars + 1);
        let mut total = 0u32;
        offsets.push(0u32);
        for &d in &degree {
            total += d;
            offsets.push(total);
        }
        let mut cursor: Vec<u32> = offsets[..self.num_vars].to_vec();
        let mut entries = vec![(0u32, 0.0f64); total as usize];
        for (&(i, j), &v) in &self.j {
            if v != 0.0 {
                entries[cursor[i] as usize] = (j as u32, v);
                cursor[i] += 1;
                entries[cursor[j] as usize] = (i as u32, v);
                cursor[j] += 1;
            }
        }
        CsrAdjacency { offsets, entries }
    }

    /// [`Ising::flip_delta`] over a [`CsrAdjacency`] row. The field is
    /// accumulated in the same entry order as the `Vec`-of-rows variant,
    /// so the result is bit-identical.
    pub fn flip_delta_csr(&self, spins: &[Spin], i: usize, neighbors: &[(u32, f64)]) -> f64 {
        let si = spins[i].value();
        let mut field = self.h[i];
        for &(other, jij) in neighbors {
            field += jij * spins[other as usize].value();
        }
        -2.0 * si * field
    }

    /// Largest absolute linear coefficient.
    pub fn max_abs_h(&self) -> f64 {
        self.h.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Largest absolute quadratic coefficient.
    pub fn max_abs_j(&self) -> f64 {
        self.j.values().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Converts to the equivalent QUBO via σ = 2x − 1.
    ///
    /// Energies are preserved exactly: for every assignment,
    /// `ising.energy(spins) == qubo.energy(bits)` where `bits[i] = spins[i].to_bool()`.
    pub fn to_qubo(&self) -> Qubo {
        let mut q = Qubo::new(self.num_vars);
        let mut offset = self.offset;
        for (i, &hi) in self.h.iter().enumerate() {
            // hσ = h(2x−1) = 2hx − h
            q.add_linear(i, 2.0 * hi);
            offset -= hi;
        }
        for (&(i, j), &jij) in &self.j {
            // Jσσ' = J(2x−1)(2x'−1) = 4Jxx' − 2Jx − 2Jx' + J
            q.add_quadratic(i, j, 4.0 * jij);
            q.add_linear(i, -2.0 * jij);
            q.add_linear(j, -2.0 * jij);
            offset += jij;
        }
        q.add_offset(offset);
        q
    }

    /// Merges variable `b` into variable `a` with the given relative
    /// `parity`: `Spin::Up` means σ_b = σ_a, `Spin::Down` means σ_b = −σ_a.
    ///
    /// All of `b`'s coefficients are folded onto `a` and `b`'s own entries
    /// are zeroed (the variable index remains allocated; callers typically
    /// compact afterwards). A pre-existing coupling between `a` and `b`
    /// becomes a constant (`J·parity`) added to the offset.
    ///
    /// This implements QMASM's `A = B` chain-merging optimization (§4.4).
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of range.
    pub fn merge_variable(&mut self, a: usize, b: usize, parity: Spin) {
        assert!(a != b, "cannot merge a variable into itself");
        assert!(
            a < self.num_vars && b < self.num_vars,
            "merge indices in range"
        );
        let p = parity.value();
        // Linear: h_b σ_b = h_b p σ_a
        let hb = std::mem::replace(&mut self.h[b], 0.0);
        self.h[a] += p * hb;
        // Quadratic terms touching b.
        let touching: Vec<(usize, usize)> = self
            .j
            .keys()
            .copied()
            .filter(|&(i, j)| i == b || j == b)
            .collect();
        for key in touching {
            let v = self.j.remove(&key).unwrap();
            let other = if key.0 == b { key.1 } else { key.0 };
            if other == a {
                // J σ_a σ_b = J p σ_a² = J p
                self.offset += v * p;
            } else {
                let (x, y) = if a < other { (a, other) } else { (other, a) };
                *self.j.entry((x, y)).or_insert(0.0) += v * p;
            }
        }
    }

    /// Fixes variable `i` to `value`, folding its terms into offsets and
    /// linear coefficients of its neighbors, and zeroing its own entries.
    ///
    /// Used by roof-duality elision and by pin handling.
    pub fn fix_variable(&mut self, i: usize, value: Spin) {
        assert!(i < self.num_vars, "fix index in range");
        let s = value.value();
        let hi = std::mem::replace(&mut self.h[i], 0.0);
        self.offset += hi * s;
        let touching: Vec<(usize, usize)> = self
            .j
            .keys()
            .copied()
            .filter(|&(a, b)| a == i || b == i)
            .collect();
        for key in touching {
            let v = self.j.remove(&key).unwrap();
            let other = if key.0 == i { key.1 } else { key.0 };
            self.h[other] += v * s;
        }
    }

    /// Returns the variables that have any nonzero coefficient.
    pub fn active_variables(&self) -> Vec<usize> {
        let mut active = vec![false; self.num_vars];
        for (i, &h) in self.h.iter().enumerate() {
            if h != 0.0 {
                active[i] = true;
            }
        }
        for (&(i, j), &v) in &self.j {
            if v != 0.0 {
                active[i] = true;
                active[j] = true;
            }
        }
        active
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| if a { Some(i) } else { None })
            .collect()
    }
}

/// A compressed-sparse-row copy of [`Ising::adjacency`]: every
/// variable's `(partner, J)` entries concatenated in variable order, with
/// `offsets[i]..offsets[i + 1]` bounding variable i's row. Built once per
/// sample call and shared (read-only) by every read and thread.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrAdjacency {
    offsets: Vec<u32>,
    entries: Vec<(u32, f64)>,
}

impl CsrAdjacency {
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Variable i's `(partner, J)` row, in the same order
    /// [`Ising::adjacency`] reports it.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[(u32, f64)] {
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

impl fmt::Display for Ising {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# Ising model: {} variables, {} couplings",
            self.num_vars,
            self.j.len()
        )?;
        if self.offset != 0.0 {
            writeln!(f, "offset {}", self.offset)?;
        }
        for (i, &h) in self.h.iter().enumerate() {
            if h != 0.0 {
                writeln!(f, "{i} {h}")?;
            }
        }
        for (&(i, j), &v) in &self.j {
            if v != 0.0 {
                writeln!(f, "{i} {j} {v}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits_to_spins;

    #[test]
    fn empty_model_energy_is_offset() {
        let mut m = Ising::new(0);
        m.add_offset(2.5);
        assert_eq!(m.energy(&[]), 2.5);
    }

    #[test]
    fn table1_net_ground_states() {
        // Paper Table 1: H = −σ_Aσ_Y minimized exactly when σ_A == σ_Y.
        let mut m = Ising::new(2);
        m.add_j(0, 1, -1.0);
        assert_eq!(m.energy(&[Spin::Down, Spin::Down]), -1.0);
        assert_eq!(m.energy(&[Spin::Down, Spin::Up]), 1.0);
        assert_eq!(m.energy(&[Spin::Up, Spin::Down]), 1.0);
        assert_eq!(m.energy(&[Spin::Up, Spin::Up]), -1.0);
    }

    #[test]
    fn coupling_order_is_normalized() {
        let mut m = Ising::new(3);
        m.add_j(2, 0, 1.5);
        m.add_j(0, 2, 0.5);
        assert_eq!(m.j(0, 2), 2.0);
        assert_eq!(m.j(2, 0), 2.0);
        assert_eq!(m.num_couplings(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = Ising::new(2);
        assert!(matches!(
            m.try_add_h(2, 1.0),
            Err(PbfError::VariableOutOfRange { .. })
        ));
        assert!(matches!(
            m.try_add_j(0, 2, 1.0),
            Err(PbfError::VariableOutOfRange { .. })
        ));
        assert!(matches!(
            m.try_add_j(1, 1, 1.0),
            Err(PbfError::SelfCoupling(1))
        ));
        assert!(matches!(
            m.try_add_h(0, f64::NAN),
            Err(PbfError::NonFiniteCoefficient(_))
        ));
    }

    #[test]
    fn energy_length_mismatch() {
        let m = Ising::new(3);
        assert!(matches!(
            m.try_energy(&[Spin::Up]),
            Err(PbfError::AssignmentLength {
                got: 1,
                expected: 3
            })
        ));
    }

    #[test]
    fn csr_adjacency_rows_match_vec_adjacency_in_order() {
        let mut m = Ising::new(6);
        m.add_j(0, 3, -1.25);
        m.add_j(0, 1, 0.5);
        m.add_j(3, 1, 2.0);
        m.add_j(2, 4, 1.0);
        m.add_j(4, 5, 0.0); // zero couplings are dropped from both forms
        let adj = m.adjacency();
        let csr = m.csr_adjacency();
        assert_eq!(csr.num_vars(), m.num_vars());
        for (i, expected) in adj.iter().enumerate() {
            let row: Vec<(usize, f64)> = csr
                .neighbors(i)
                .iter()
                .map(|&(p, j)| (p as usize, j))
                .collect();
            assert_eq!(&row, expected, "row {i} must match order and values");
        }
        // And flip deltas over either representation are bit-identical.
        for idx in 0..64 {
            let spins = bits_to_spins(idx, 6);
            for (i, row) in adj.iter().enumerate() {
                assert_eq!(
                    m.flip_delta(&spins, i, row).to_bits(),
                    m.flip_delta_csr(&spins, i, csr.neighbors(i)).to_bits(),
                    "i={i} idx={idx}"
                );
            }
        }
    }

    #[test]
    fn flip_delta_matches_recomputation() {
        let mut m = Ising::new(4);
        m.add_h(0, 0.5);
        m.add_h(3, -1.5);
        m.add_j(0, 1, -1.0);
        m.add_j(1, 2, 2.0);
        m.add_j(0, 3, 0.75);
        let adj = m.adjacency();
        for idx in 0..16 {
            let spins = bits_to_spins(idx, 4);
            for i in 0..4 {
                let mut flipped = spins.clone();
                flipped[i] = flipped[i].flipped();
                let expected = m.energy(&flipped) - m.energy(&spins);
                let got = m.flip_delta(&spins, i, &adj[i]);
                assert!((expected - got).abs() < 1e-12, "i={i} idx={idx}");
            }
        }
    }

    #[test]
    fn merge_equal_preserves_restricted_energies() {
        // Model over (a, b, c); merge b into a with equality.
        let mut m = Ising::new(3);
        m.add_h(0, 0.3);
        m.add_h(1, -0.7);
        m.add_h(2, 1.1);
        m.add_j(0, 1, -2.0);
        m.add_j(1, 2, 0.5);
        m.add_j(0, 2, -0.25);
        let orig = m.clone();
        m.merge_variable(0, 1, Spin::Up);
        for bits in 0..4u64 {
            let a = Spin::from(bits & 1 == 1);
            let c = Spin::from(bits & 2 == 2);
            let merged = m.energy(&[a, a, c]);
            let original = orig.energy(&[a, a, c]);
            assert!((merged - original).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_opposite_preserves_restricted_energies() {
        let mut m = Ising::new(3);
        m.add_h(0, 0.3);
        m.add_h(1, -0.7);
        m.add_j(0, 1, 1.0);
        m.add_j(1, 2, 0.5);
        let orig = m.clone();
        m.merge_variable(0, 1, Spin::Down);
        for bits in 0..4u64 {
            let a = Spin::from(bits & 1 == 1);
            let c = Spin::from(bits & 2 == 2);
            let merged = m.energy(&[a, -a, c]);
            let original = orig.energy(&[a, -a, c]);
            assert!((merged - original).abs() < 1e-12);
        }
    }

    #[test]
    fn fix_variable_preserves_restricted_energies() {
        let mut m = Ising::new(3);
        m.add_h(0, 0.4);
        m.add_h(1, -0.9);
        m.add_j(0, 1, -1.5);
        m.add_j(1, 2, 0.5);
        let orig = m.clone();
        m.fix_variable(1, Spin::Up);
        for bits in 0..4u64 {
            let a = Spin::from(bits & 1 == 1);
            let c = Spin::from(bits & 2 == 2);
            let fixed = m.energy(&[a, Spin::Down, c]); // var 1 now inert
            let original = orig.energy(&[a, Spin::Up, c]);
            assert!((fixed - original).abs() < 1e-12);
        }
    }

    #[test]
    fn num_terms_counts_both_kinds() {
        let mut m = Ising::new(3);
        m.add_h(0, 0.5);
        m.add_j(0, 1, -1.0);
        m.add_j(1, 2, 1e-12);
        assert_eq!(m.num_terms(1e-9), 2);
    }

    #[test]
    fn active_variables_reports_touched() {
        let mut m = Ising::new(5);
        m.add_h(1, 1.0);
        m.add_j(3, 4, -1.0);
        assert_eq!(m.active_variables(), vec![1, 3, 4]);
    }
}
