//! Generation of `stdcell.qmasm` — the standard-cell library file the
//! compiler `!include`s into every generated program (paper §4.3.2,
//! Listing 2).

use qac_gatesynth::CellLibrary;

/// Renders the verified cell library as QMASM macro definitions.
///
/// Each cell becomes a `!begin_macro`/`!end_macro` block with an `!assert`
/// stating its logic (a "nicety … which aids debugging", §4.3.2), its
/// linear weights, and its couplings. Ancilla variables are named `$anc0`,
/// `$anc1`, … so the `qmasm` reporter hides them.
pub fn stdcell_qmasm(library: &CellLibrary) -> String {
    let mut out = String::new();
    out.push_str("# Standard-cell library: quadratic pseudo-Boolean gate functions\n");
    out.push_str("# (paper Table 5). Generated from the verified cell library.\n\n");
    for (name, cell) in library.iter() {
        let pins = cell.pins();
        out.push_str(&format!("!begin_macro {name}\n"));
        if let Some(assert) = assert_for(name) {
            out.push_str(&format!("  !assert {assert}\n"));
        }
        let var_name = |i: usize| -> String {
            if i < pins.len() {
                pins[i].clone()
            } else {
                format!("$anc{}", i - pins.len())
            }
        };
        for (i, h) in cell.ising().h_iter() {
            if h != 0.0 {
                out.push_str(&format!("  {} {}\n", var_name(i), fmt_num(h)));
            }
        }
        for t in cell.ising().j_iter() {
            if t.value != 0.0 {
                out.push_str(&format!(
                    "  {} {} {}\n",
                    var_name(t.i),
                    var_name(t.j),
                    fmt_num(t.value)
                ));
            }
        }
        out.push_str(&format!("!end_macro {name}\n\n"));
    }
    out
}

/// The logic assertion for each library cell.
fn assert_for(name: &str) -> Option<&'static str> {
    Some(match name {
        "BUF" => "Y == A",
        "NOT" => "Y == !A",
        "AND" => "Y == (A & B)",
        "OR" => "Y == (A | B)",
        "NAND" => "Y == !(A & B)",
        "NOR" => "Y == !(A | B)",
        "XOR" => "Y == (A ^ B)",
        "XNOR" => "Y == !(A ^ B)",
        "MUX" => "Y == ((S & B) | (!S & A))",
        "AOI3" => "Y == !((A & B) | C)",
        "OAI3" => "Y == !((A | B) & C)",
        "AOI4" => "Y == !((A & B) | (C & D))",
        "OAI4" => "Y == !((A | B) & (C | D))",
        "DFF_P" | "DFF_N" => "Q == D",
        _ => return None,
    })
}

/// Formats a coefficient without trailing float noise.
fn fmt_num(v: f64) -> String {
    if (v - v.round()).abs() < 1e-12 {
        format!("{}", v.round() as i64)
    } else {
        // Prefer short exact decimals for halves/quarters/thirds.
        let s = format!("{v:.6}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse, MapIncludes};
    use crate::{assemble, AssembleOptions};
    use qac_pbf::bits_to_spins;

    #[test]
    fn library_text_parses_and_defines_all_macros() {
        let lib = CellLibrary::table5();
        let text = stdcell_qmasm(&lib);
        assert!(text.contains("!begin_macro AND"));
        assert!(text.contains("!assert"));
        let program = parse(&text, &crate::parse::NoIncludes).unwrap();
        for (name, _) in lib.iter() {
            assert!(program.macros.contains_key(name), "missing macro {name}");
        }
    }

    #[test]
    fn included_and_macro_reproduces_cell_ground_states() {
        let lib = CellLibrary::table5();
        let mut includes = MapIncludes::new();
        includes.insert("stdcell.qmasm", stdcell_qmasm(&lib));
        let src = "!include \"stdcell.qmasm\"\n!use_macro XOR g\n";
        let program = parse(src, &includes).unwrap();
        let a = assemble(&program, &AssembleOptions::default()).unwrap();
        // XOR has 3 pins + 1 ancilla.
        assert_eq!(a.ising.num_vars(), 4);
        // Ground states project exactly onto the XOR truth table.
        let n = a.ising.num_vars();
        let mut best = f64::INFINITY;
        let mut rows = Vec::new();
        for idx in 0..(1u64 << n) {
            let spins = bits_to_spins(idx, n);
            let e = a.ising.energy(&spins);
            if e < best - 1e-9 {
                best = e;
                rows = vec![spins];
            } else if (e - best).abs() < 1e-9 {
                rows.push(spins);
            }
        }
        for spins in rows {
            let y = a.symbols.value_of("g.Y", &spins).unwrap();
            let av = a.symbols.value_of("g.A", &spins).unwrap();
            let bv = a.symbols.value_of("g.B", &spins).unwrap();
            assert_eq!(y, av ^ bv);
            // And the embedded assertion agrees.
            let checks = a.check_asserts(&spins);
            assert!(checks.iter().all(|(_, ok)| *ok));
        }
    }

    #[test]
    fn fmt_num_is_tidy() {
        assert_eq!(fmt_num(1.0), "1");
        assert_eq!(fmt_num(-0.5), "-0.5");
        assert_eq!(fmt_num(1.0 / 3.0), "0.333333");
    }
}
