//! `!assert` expressions — the debugging aid mentioned for the standard
//! cell library in §4.3.2 ("the file includes niceties such as assertions").
//!
//! Expressions use C-like operators over symbol values (each symbol is a
//! 0/1 bit) and integer literals, e.g. `!assert Y == A & B`.

use std::fmt;

use crate::QmasmError;

/// A parsed assertion expression.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertExpr {
    text: String,
    root: Node,
}

/// Outcome of checking one assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertOutcome {
    /// The assertion's source text.
    pub text: String,
    /// Whether it held.
    pub holds: bool,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Num(u64),
    Sym(String),
    Unary(UnOp, Box<Node>),
    Binary(BinOp, Box<Node>, Box<Node>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnOp {
    Not,
    LogicNot,
    Neg,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Or,
    And,
    BitOr,
    BitXor,
    BitAnd,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(u64),
    Sym(String),
    Op(&'static str),
    LParen,
    RParen,
}

fn tokenize(text: &str) -> Result<Vec<Tok>, QmasmError> {
    let bad = |m: &str| QmasmError::BadAssert(format!("{m} in `{text}`"));
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' => i += 1,
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let v: u64 = text[start..i].parse().map_err(|_| bad("bad number"))?;
                out.push(Tok::Num(v));
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'$' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c.is_ascii_alphanumeric()
                        || c == b'_'
                        || c == b'$'
                        || c == b'.'
                        || c == b'['
                        || c == b']'
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Tok::Sym(text[start..i].to_string()));
            }
            _ => {
                // Multi-char operators first.
                let rest = &text[i..];
                let two = ["||", "&&", "==", "!=", "<=", ">=", "<<", ">>"]
                    .iter()
                    .find(|op| rest.starts_with(**op));
                if let Some(op) = two {
                    out.push(Tok::Op(op));
                    i += 2;
                    continue;
                }
                let one = [
                    "|", "^", "&", "<", ">", "+", "-", "*", "/", "%", "~", "!", "=",
                ]
                .iter()
                .find(|op| rest.starts_with(**op));
                match one {
                    // QMASM historically wrote equality as a single `=`.
                    Some(&"=") => {
                        out.push(Tok::Op("=="));
                        i += 1;
                    }
                    Some(op) => {
                        out.push(Tok::Op(op));
                        i += 1;
                    }
                    None => return Err(bad("unexpected character")),
                }
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    text: &'a str,
}

impl<'a> Parser<'a> {
    fn bad(&self, m: &str) -> QmasmError {
        QmasmError::BadAssert(format!("{m} in `{}`", self.text))
    }

    fn peek_op(&self) -> Option<&'static str> {
        match self.toks.get(self.pos) {
            Some(Tok::Op(op)) => Some(op),
            _ => None,
        }
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.peek_op() == Some(op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Precedence-climbing over a table.
    fn expr(&mut self, min_prec: u8) -> Result<Node, QmasmError> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.peek_op() {
            let Some((prec, bop)) = prec_of(op) else {
                break;
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.expr(prec + 1)?;
            lhs = Node::Binary(bop, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Node, QmasmError> {
        if self.eat_op("~") {
            return Ok(Node::Unary(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_op("!") {
            return Ok(Node::Unary(UnOp::LogicNot, Box::new(self.unary()?)));
        }
        if self.eat_op("-") {
            return Ok(Node::Unary(UnOp::Neg, Box::new(self.unary()?)));
        }
        match self.toks.get(self.pos).cloned() {
            Some(Tok::Num(v)) => {
                self.pos += 1;
                Ok(Node::Num(v))
            }
            Some(Tok::Sym(s)) => {
                self.pos += 1;
                Ok(Node::Sym(s))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.expr(0)?;
                if !matches!(self.toks.get(self.pos), Some(Tok::RParen)) {
                    return Err(self.bad("missing `)`"));
                }
                self.pos += 1;
                Ok(inner)
            }
            _ => Err(self.bad("expected operand")),
        }
    }
}

fn prec_of(op: &str) -> Option<(u8, BinOp)> {
    Some(match op {
        "||" => (1, BinOp::Or),
        "&&" => (2, BinOp::And),
        "|" => (3, BinOp::BitOr),
        "^" => (4, BinOp::BitXor),
        "&" => (5, BinOp::BitAnd),
        "==" => (6, BinOp::Eq),
        "!=" => (6, BinOp::Ne),
        "<" => (7, BinOp::Lt),
        "<=" => (7, BinOp::Le),
        ">" => (7, BinOp::Gt),
        ">=" => (7, BinOp::Ge),
        "<<" => (8, BinOp::Shl),
        ">>" => (8, BinOp::Shr),
        "+" => (9, BinOp::Add),
        "-" => (9, BinOp::Sub),
        "*" => (10, BinOp::Mul),
        "/" => (10, BinOp::Div),
        "%" => (10, BinOp::Mod),
        _ => return None,
    })
}

impl AssertExpr {
    /// Parses an assertion expression.
    ///
    /// # Errors
    /// [`QmasmError::BadAssert`] on malformed input.
    pub fn parse(text: &str) -> Result<AssertExpr, QmasmError> {
        let toks = tokenize(text)?;
        let mut parser = Parser {
            toks: &toks,
            pos: 0,
            text,
        };
        let root = parser.expr(0)?;
        if parser.pos != toks.len() {
            return Err(parser.bad("trailing tokens"));
        }
        Ok(AssertExpr {
            text: text.to_string(),
            root,
        })
    }

    /// The original source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Evaluates under a symbol-value environment. Returns `None` when a
    /// referenced symbol is unknown or a division by zero occurs.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<u64>) -> Option<u64> {
        eval_node(&self.root, lookup)
    }

    /// The symbols the expression references.
    pub fn symbols(&self) -> Vec<&str> {
        let mut out = Vec::new();
        collect_symbols(&self.root, &mut out);
        out
    }
}

impl fmt::Display for AssertExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

fn eval_node(node: &Node, lookup: &dyn Fn(&str) -> Option<u64>) -> Option<u64> {
    Some(match node {
        Node::Num(v) => *v,
        Node::Sym(s) => lookup(s)?,
        Node::Unary(op, inner) => {
            let v = eval_node(inner, lookup)?;
            match op {
                UnOp::Not => !v,
                UnOp::LogicNot => u64::from(v == 0),
                UnOp::Neg => v.wrapping_neg(),
            }
        }
        Node::Binary(op, a, b) => {
            let x = eval_node(a, lookup)?;
            let y = eval_node(b, lookup)?;
            match op {
                BinOp::Or => u64::from(x != 0 || y != 0),
                BinOp::And => u64::from(x != 0 && y != 0),
                BinOp::BitOr => x | y,
                BinOp::BitXor => x ^ y,
                BinOp::BitAnd => x & y,
                BinOp::Eq => u64::from(x == y),
                BinOp::Ne => u64::from(x != y),
                BinOp::Lt => u64::from(x < y),
                BinOp::Le => u64::from(x <= y),
                BinOp::Gt => u64::from(x > y),
                BinOp::Ge => u64::from(x >= y),
                BinOp::Shl => {
                    if y >= 64 {
                        0
                    } else {
                        x << y
                    }
                }
                BinOp::Shr => {
                    if y >= 64 {
                        0
                    } else {
                        x >> y
                    }
                }
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => x.checked_div(y)?,
                BinOp::Mod => x.checked_rem(y)?,
            }
        }
    })
}

fn collect_symbols<'a>(node: &'a Node, out: &mut Vec<&'a str>) {
    match node {
        Node::Sym(s) => out.push(s),
        Node::Unary(_, inner) => collect_symbols(inner, out),
        Node::Binary(_, a, b) => {
            collect_symbols(a, out);
            collect_symbols(b, out);
        }
        Node::Num(_) => {}
    }
}

/// Rewrites the symbols in an assertion's text with an instance prefix
/// (used during macro expansion).
pub(crate) fn prefix_symbols(text: &str, prefix: &str) -> String {
    if prefix.is_empty() {
        return text.to_string();
    }
    match tokenize(text) {
        Ok(toks) => {
            let mut out = String::new();
            for tok in toks {
                if !out.is_empty() {
                    out.push(' ');
                }
                match tok {
                    Tok::Num(v) => out.push_str(&v.to_string()),
                    Tok::Sym(s) => {
                        out.push_str(prefix);
                        out.push('.');
                        out.push_str(&s);
                    }
                    Tok::Op(op) => out.push_str(op),
                    Tok::LParen => out.push('('),
                    Tok::RParen => out.push(')'),
                }
            }
            out
        }
        Err(_) => text.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env(pairs: &[(&str, u64)]) -> HashMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn eval(text: &str, pairs: &[(&str, u64)]) -> Option<u64> {
        let e = env(pairs);
        AssertExpr::parse(text)
            .unwrap()
            .eval(&|name| e.get(name).copied())
    }

    #[test]
    fn gate_assertions() {
        assert_eq!(eval("Y == A & B", &[("Y", 1), ("A", 1), ("B", 1)]), Some(1));
        assert_eq!(eval("Y == A & B", &[("Y", 1), ("A", 0), ("B", 1)]), Some(0));
        assert_eq!(eval("Y = A|B", &[("Y", 1), ("A", 0), ("B", 1)]), Some(1));
        assert_eq!(eval("Y == A ^ B", &[("Y", 0), ("A", 1), ("B", 1)]), Some(1));
    }

    #[test]
    fn precedence() {
        assert_eq!(eval("1 + 2 * 3", &[]), Some(7));
        assert_eq!(eval("(1 + 2) * 3", &[]), Some(9));
        assert_eq!(eval("1 | 2 == 2", &[]), Some(1 | 1));
        assert_eq!(eval("2 < 3 && 3 < 2", &[]), Some(0));
    }

    #[test]
    fn unary_operators() {
        assert_eq!(eval("!0", &[]), Some(1));
        assert_eq!(eval("!5", &[]), Some(0));
        assert_eq!(eval("~0 == 18446744073709551615", &[]), Some(1));
    }

    #[test]
    fn unknown_symbol_is_none() {
        assert_eq!(eval("ghost == 1", &[]), None);
    }

    #[test]
    fn indexed_symbols() {
        assert_eq!(eval("C[3] == 1", &[("C[3]", 1)]), Some(1));
    }

    #[test]
    fn symbols_collected() {
        let e = AssertExpr::parse("Y == A & $x").unwrap();
        assert_eq!(e.symbols(), vec!["Y", "A", "$x"]);
    }

    #[test]
    fn prefixing() {
        assert_eq!(prefix_symbols("Y == A & B", "g1"), "g1.Y == g1.A & g1.B");
        assert_eq!(prefix_symbols("Y == A", ""), "Y == A");
    }

    #[test]
    fn malformed_rejected() {
        assert!(AssertExpr::parse("1 +").is_err());
        assert!(AssertExpr::parse("(1").is_err());
        assert!(AssertExpr::parse("@").is_err());
        assert!(AssertExpr::parse("1 2").is_err());
    }

    #[test]
    fn division_by_zero_is_none() {
        assert_eq!(eval("1 / 0", &[]), None);
    }
}
