//! Pin-specification parsing — the `--pin "C[7:0] := 10001111"` syntax
//! the paper uses to pass arguments to compiled programs (§4.3.6, §5.3).

use crate::QmasmError;

/// Parses one pin specification into single-bit `(symbol, value)` pairs.
///
/// Accepted forms:
/// * `name := true|false|0|1` — a single-bit pin on `name`;
/// * `name[i] := 0|1|true|false` — a single-bit pin on `name[i]`;
/// * `name[msb:lsb] := 1011…` — a bit-string applied MSB-first across the
///   range (the paper's `--pin="C[7:0] := 10001111"`);
/// * `name[msb:lsb] := 143` — a decimal value, converted to binary.
///
/// # Errors
/// [`QmasmError::BadPin`] describing the malformed specification.
///
/// ```
/// use qac_qmasm::pin::parse_pin;
/// let bits = parse_pin("C[7:0] := 10001111").unwrap();
/// assert_eq!(bits.len(), 8);
/// assert_eq!(bits[0], ("C[7]".to_string(), true));
/// assert_eq!(bits[7], ("C[0]".to_string(), true));
/// ```
pub fn parse_pin(spec: &str) -> Result<Vec<(String, bool)>, QmasmError> {
    let bad = || QmasmError::BadPin(spec.to_string());
    let (lhs, rhs) = spec.split_once(":=").ok_or_else(bad)?;
    let lhs = lhs.trim();
    let rhs = rhs.trim();
    if lhs.is_empty() || rhs.is_empty() {
        return Err(bad());
    }

    // Range form?
    if let Some(open) = lhs.find('[') {
        let close = lhs.rfind(']').ok_or_else(bad)?;
        let base = &lhs[..open];
        let inside = &lhs[open + 1..close];
        if let Some((msb_s, lsb_s)) = inside.split_once(':') {
            let msb: i64 = msb_s.trim().parse().map_err(|_| bad())?;
            let lsb: i64 = lsb_s.trim().parse().map_err(|_| bad())?;
            let width = (msb - lsb).unsigned_abs() as usize + 1;
            if width > 64 {
                return Err(bad());
            }
            let bits = parse_value(rhs, width).ok_or_else(bad)?;
            // Bits are MSB-first across the written range.
            let indices: Vec<i64> = if msb >= lsb {
                (lsb..=msb).rev().collect()
            } else {
                (msb..=lsb).collect()
            };
            return Ok(indices
                .into_iter()
                .zip(bits)
                .map(|(i, b)| (format!("{base}[{i}]"), b))
                .collect());
        }
        // Single indexed bit.
        let value = parse_bool(rhs).ok_or_else(bad)?;
        let idx: i64 = inside.trim().parse().map_err(|_| bad())?;
        return Ok(vec![(format!("{base}[{idx}]"), value)]);
    }

    let value = parse_bool(rhs).ok_or_else(bad)?;
    Ok(vec![(lhs.to_string(), value)])
}

/// Parses several pin specifications (the CLI may pass `--pin` repeatedly).
///
/// # Errors
/// [`QmasmError::BadPin`] on the first malformed specification.
pub fn parse_pins<'a>(
    specs: impl IntoIterator<Item = &'a str>,
) -> Result<Vec<(String, bool)>, QmasmError> {
    let mut out = Vec::new();
    for spec in specs {
        out.extend(parse_pin(spec)?);
    }
    Ok(out)
}

fn parse_bool(s: &str) -> Option<bool> {
    match s.to_ascii_lowercase().as_str() {
        "true" | "1" | "+1" => Some(true),
        "false" | "0" | "-1" => Some(false),
        _ => None,
    }
}

/// Parses a value string into `width` bits, MSB first.
fn parse_value(s: &str, width: usize) -> Option<Vec<bool>> {
    // A bit-string of exactly the right width wins (e.g. "10001111").
    if s.len() == width && s.chars().all(|c| c == '0' || c == '1') {
        return Some(s.chars().map(|c| c == '1').collect());
    }
    // Otherwise interpret as a number (decimal, or 0x/0b prefixed).
    let value = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = s.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()?
    } else {
        s.parse::<u64>().ok()?
    };
    if width < 64 && value >> width != 0 {
        return None;
    }
    Some((0..width).rev().map(|i| (value >> i) & 1 == 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bit_forms() {
        assert_eq!(
            parse_pin("valid := true").unwrap(),
            vec![("valid".into(), true)]
        );
        assert_eq!(parse_pin("x := 0").unwrap(), vec![("x".into(), false)]);
        assert_eq!(parse_pin("q[2] := 1").unwrap(), vec![("q[2]".into(), true)]);
    }

    #[test]
    fn paper_factoring_pin() {
        // --pin="C[7:0] := 10001111"  (143 decimal)
        let bits = parse_pin("C[7:0] := 10001111").unwrap();
        let value = bits
            .iter()
            .fold(0u64, |acc, (_, b)| (acc << 1) | u64::from(*b));
        assert_eq!(value, 143);
        assert_eq!(bits[0].0, "C[7]");
        assert_eq!(bits[7].0, "C[0]");
    }

    #[test]
    fn decimal_value() {
        let bits = parse_pin("C[7:0] := 143").unwrap();
        let value = bits
            .iter()
            .fold(0u64, |acc, (_, b)| (acc << 1) | u64::from(*b));
        assert_eq!(value, 143);
    }

    #[test]
    fn hex_value() {
        let bits = parse_pin("A[3:0] := 0xD").unwrap();
        let value = bits
            .iter()
            .fold(0u64, |acc, (_, b)| (acc << 1) | u64::from(*b));
        assert_eq!(value, 13);
    }

    #[test]
    fn ascending_range() {
        let bits = parse_pin("x[0:3] := 1000").unwrap();
        assert_eq!(bits[0], ("x[0]".into(), true));
        assert_eq!(bits[3], ("x[3]".into(), false));
    }

    #[test]
    fn value_too_wide_rejected() {
        assert!(parse_pin("C[3:0] := 255").is_err());
    }

    #[test]
    fn malformed_rejected() {
        assert!(parse_pin("novalue :=").is_err());
        assert!(parse_pin(":= 1").is_err());
        assert!(parse_pin("x = 1").is_err());
        assert!(parse_pin("x[1:0] := maybe").is_err());
    }

    #[test]
    fn multiple_specs() {
        let bits = parse_pins(["A[1:0] := 10", "valid := true"]).unwrap();
        assert_eq!(bits.len(), 3);
    }
}
