//! Line-oriented parser for QMASM source, with `!include` resolution and
//! macro collection.

use std::collections::HashMap;

use crate::QmasmError;

/// Resolves `!include` names to source text.
///
/// QMASM's `!include` normally reads files; the compiler pipeline instead
/// supplies library text (e.g. the generated `stdcell.qmasm`) through this
/// trait, keeping the crate free of filesystem access.
pub trait IncludeResolver {
    /// The source text for `name`, or `None` if unknown.
    fn resolve(&self, name: &str) -> Option<String>;
}

/// A resolver with no includes at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoIncludes;

impl IncludeResolver for NoIncludes {
    fn resolve(&self, _name: &str) -> Option<String> {
        None
    }
}

/// A resolver backed by a name → text map.
#[derive(Debug, Clone, Default)]
pub struct MapIncludes {
    entries: HashMap<String, String>,
}

impl MapIncludes {
    /// Creates an empty map resolver.
    pub fn new() -> MapIncludes {
        MapIncludes::default()
    }

    /// Registers `text` under `name`.
    pub fn insert(&mut self, name: impl Into<String>, text: impl Into<String>) {
        self.entries.insert(name.into(), text.into());
    }
}

impl IncludeResolver for MapIncludes {
    fn resolve(&self, name: &str) -> Option<String> {
        self.entries.get(name).cloned()
    }
}

/// One QMASM statement (after include expansion, before macro expansion).
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `<sym> <weight>` — a linear coefficient hᵢ.
    Weight {
        /// Symbol name.
        symbol: String,
        /// The weight.
        value: f64,
    },
    /// `<sym1> <sym2> <strength>` — a coupling Jᵢⱼ.
    Coupling {
        /// First symbol.
        a: String,
        /// Second symbol.
        b: String,
        /// The strength.
        value: f64,
    },
    /// `<sym1> = <sym2>` — bias the symbols to be equal (chain).
    Equal(String, String),
    /// `<sym1> != <sym2>` — bias the symbols to be opposite (anti-chain).
    NotEqual(String, String),
    /// `<sym> := <true|false|0|1>` or multi-bit `C[7:0] := 10001111`.
    Pin {
        /// Expanded single-bit pins.
        bits: Vec<(String, bool)>,
    },
    /// `!use_macro MACRO inst1 [inst2 …]`.
    UseMacro {
        /// Macro name.
        name: String,
        /// Instance prefixes.
        instances: Vec<String>,
    },
    /// `!assert <expr>` — checked against solutions after a run.
    Assert(String),
}

/// A parsed program: top-level statements plus macro definitions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Statements outside any macro.
    pub statements: Vec<Statement>,
    /// Macro name → body statements.
    pub macros: HashMap<String, Vec<Statement>>,
}

/// Parses QMASM source text, resolving `!include` directives through
/// `includes`.
///
/// # Errors
/// [`QmasmError::Parse`] for malformed lines,
/// [`QmasmError::UnknownInclude`] / [`QmasmError::MacroNesting`] for
/// structural problems.
pub fn parse(source: &str, includes: &dyn IncludeResolver) -> Result<Program, QmasmError> {
    let mut program = Program::default();
    let mut in_macro: Option<(String, Vec<Statement>)> = None;
    parse_into(source, includes, &mut program, &mut in_macro, 0)?;
    if let Some((name, _)) = in_macro {
        return Err(QmasmError::MacroNesting {
            line: 0,
            message: format!("macro `{name}` is never closed"),
        });
    }
    Ok(program)
}

fn parse_into(
    source: &str,
    includes: &dyn IncludeResolver,
    program: &mut Program,
    in_macro: &mut Option<(String, Vec<Statement>)>,
    depth: usize,
) -> Result<(), QmasmError> {
    if depth > 16 {
        return Err(QmasmError::UnknownInclude(
            "include nesting too deep".into(),
        ));
    }
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments.
        let text = match raw.find('#') {
            Some(idx) => &raw[..idx],
            None => raw,
        };
        let tokens: Vec<&str> = text.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        // Directives.
        match tokens[0] {
            "!include" => {
                let name = tokens
                    .get(1)
                    .ok_or_else(|| QmasmError::Parse {
                        line,
                        message: "!include needs a file name".into(),
                    })?
                    .trim_matches(|c| c == '"' || c == '<' || c == '>');
                let text = includes
                    .resolve(name)
                    .ok_or_else(|| QmasmError::UnknownInclude(name.to_string()))?;
                parse_into(&text, includes, program, in_macro, depth + 1)?;
                continue;
            }
            "!begin_macro" => {
                if in_macro.is_some() {
                    return Err(QmasmError::MacroNesting {
                        line,
                        message: "macros cannot nest".into(),
                    });
                }
                let name = tokens.get(1).ok_or_else(|| QmasmError::Parse {
                    line,
                    message: "!begin_macro needs a name".into(),
                })?;
                *in_macro = Some((name.to_string(), Vec::new()));
                continue;
            }
            "!end_macro" => {
                let Some((name, body)) = in_macro.take() else {
                    return Err(QmasmError::MacroNesting {
                        line,
                        message: "!end_macro without !begin_macro".into(),
                    });
                };
                if let Some(given) = tokens.get(1) {
                    if *given != name {
                        return Err(QmasmError::MacroNesting {
                            line,
                            message: format!("!end_macro {given} closes macro `{name}`"),
                        });
                    }
                }
                program.macros.insert(name, body);
                continue;
            }
            "!use_macro" => {
                if tokens.len() < 3 {
                    return Err(QmasmError::Parse {
                        line,
                        message: "!use_macro needs a macro name and instance name(s)".into(),
                    });
                }
                let stmt = Statement::UseMacro {
                    name: tokens[1].to_string(),
                    instances: tokens[2..].iter().map(|s| s.to_string()).collect(),
                };
                push(program, in_macro, stmt);
                continue;
            }
            "!assert" => {
                let expr = text.trim_start().trim_start_matches("!assert").trim();
                if expr.is_empty() {
                    return Err(QmasmError::Parse {
                        line,
                        message: "!assert needs an expression".into(),
                    });
                }
                push(program, in_macro, Statement::Assert(expr.to_string()));
                continue;
            }
            t if t.starts_with('!') => {
                return Err(QmasmError::Parse {
                    line,
                    message: format!("unknown directive `{t}`"),
                });
            }
            _ => {}
        }
        // Pin: `<spec> := <value>` (tokens may be `A`, `:=`, `true`).
        if let Some(pos) = tokens.iter().position(|&t| t == ":=") {
            let spec = tokens[..pos].concat();
            let value = tokens[pos + 1..].concat();
            let bits = crate::pin::parse_pin(&format!("{spec} := {value}"))?;
            push(program, in_macro, Statement::Pin { bits });
            continue;
        }
        // Chains.
        if tokens.len() == 3 && tokens[1] == "=" {
            push(
                program,
                in_macro,
                Statement::Equal(tokens[0].into(), tokens[2].into()),
            );
            continue;
        }
        if tokens.len() == 3 && tokens[1] == "!=" {
            push(
                program,
                in_macro,
                Statement::NotEqual(tokens[0].into(), tokens[2].into()),
            );
            continue;
        }
        // Weight / coupling.
        match tokens.len() {
            2 => {
                let value: f64 = tokens[1].parse().map_err(|_| QmasmError::Parse {
                    line,
                    message: format!("bad weight `{}`", tokens[1]),
                })?;
                push(
                    program,
                    in_macro,
                    Statement::Weight {
                        symbol: tokens[0].to_string(),
                        value,
                    },
                );
            }
            3 => {
                let value: f64 = tokens[2].parse().map_err(|_| QmasmError::Parse {
                    line,
                    message: format!("bad strength `{}`", tokens[2]),
                })?;
                push(
                    program,
                    in_macro,
                    Statement::Coupling {
                        a: tokens[0].to_string(),
                        b: tokens[1].to_string(),
                        value,
                    },
                );
            }
            _ => {
                return Err(QmasmError::Parse {
                    line,
                    message: format!("cannot parse statement `{}`", text.trim()),
                });
            }
        }
    }
    Ok(())
}

fn push(program: &mut Program, in_macro: &mut Option<(String, Vec<Statement>)>, stmt: Statement) {
    match in_macro {
        Some((_, body)) => body.push(stmt),
        None => program.statements.push(stmt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_weights_and_couplings() {
        // Paper Listing 1.
        let src = "A   -1\nB    2\nA B -5\nB C -5\nC D -5\nD A -5\nA C 10\nB D 10\n";
        let p = parse(src, &NoIncludes).unwrap();
        assert_eq!(p.statements.len(), 8);
        assert!(matches!(
            p.statements[0],
            Statement::Weight { ref symbol, value } if symbol == "A" && value == -1.0
        ));
        assert!(matches!(
            p.statements[2],
            Statement::Coupling { ref a, ref b, value } if a == "A" && b == "B" && value == -5.0
        ));
    }

    #[test]
    fn listing4_macro_with_chains() {
        let src = r#"
!begin_macro AND3
!use_macro AND and1
!use_macro AND and2
and1.Y = and2.$x
and2.A = $x
!end_macro AND3
"#;
        let p = parse(src, &NoIncludes).unwrap();
        let body = &p.macros["AND3"];
        assert_eq!(body.len(), 4);
        assert!(matches!(body[0], Statement::UseMacro { .. }));
        assert!(matches!(body[2], Statement::Equal(..)));
    }

    #[test]
    fn comments_and_blanks() {
        let src = "# full comment\n\nA 1 # trailing\n";
        let p = parse(src, &NoIncludes).unwrap();
        assert_eq!(p.statements.len(), 1);
    }

    #[test]
    fn includes_resolved() {
        let mut inc = MapIncludes::new();
        inc.insert("lib.qmasm", "!begin_macro M\nA 1\n!end_macro M\n");
        let p = parse("!include \"lib.qmasm\"\n!use_macro M m1\n", &inc).unwrap();
        assert!(p.macros.contains_key("M"));
        assert_eq!(p.statements.len(), 1);
    }

    #[test]
    fn unknown_include_rejected() {
        assert!(matches!(
            parse("!include \"nope\"", &NoIncludes),
            Err(QmasmError::UnknownInclude(_))
        ));
    }

    #[test]
    fn pins_single_and_multi_bit() {
        let p = parse("valid := true\nC[3:0] := 1010\n", &NoIncludes).unwrap();
        let Statement::Pin { bits } = &p.statements[0] else {
            panic!()
        };
        assert_eq!(bits, &vec![("valid".to_string(), true)]);
        let Statement::Pin { bits } = &p.statements[1] else {
            panic!()
        };
        assert_eq!(
            bits,
            &vec![
                ("C[3]".to_string(), true),
                ("C[2]".to_string(), false),
                ("C[1]".to_string(), true),
                ("C[0]".to_string(), false),
            ]
        );
    }

    #[test]
    fn nested_macro_rejected() {
        let src = "!begin_macro A\n!begin_macro B\n!end_macro B\n!end_macro A\n";
        assert!(matches!(
            parse(src, &NoIncludes),
            Err(QmasmError::MacroNesting { .. })
        ));
    }

    #[test]
    fn unclosed_macro_rejected() {
        assert!(parse("!begin_macro A\nX 1\n", &NoIncludes).is_err());
    }

    #[test]
    fn asserts_preserved_verbatim() {
        let p = parse("!assert Y == A & B\n", &NoIncludes).unwrap();
        assert_eq!(p.statements[0], Statement::Assert("Y == A & B".into()));
    }

    #[test]
    fn bad_lines_error_with_lineno() {
        let err = parse("A 1\nB notanumber\n", &NoIncludes).unwrap_err();
        assert!(matches!(err, QmasmError::Parse { line: 2, .. }));
    }
}
