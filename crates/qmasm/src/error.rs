use std::fmt;

/// Errors from parsing or assembling QMASM programs.
#[derive(Debug, Clone, PartialEq)]
pub enum QmasmError {
    /// A malformed source line.
    Parse {
        /// 1-based line number (within the including file).
        line: usize,
        /// Description.
        message: String,
    },
    /// An `!include` could not be resolved.
    UnknownInclude(String),
    /// A `!use_macro` names an undefined macro.
    UnknownMacro(String),
    /// Nested or unterminated macro definitions.
    MacroNesting {
        /// Line where the problem was noticed.
        line: usize,
        /// Description.
        message: String,
    },
    /// A pin references an unknown symbol.
    UnknownSymbol(String),
    /// A malformed pin specification (`--pin` syntax).
    BadPin(String),
    /// Contradictory chains (e.g. `A = B` and `A != B`).
    ChainContradiction(String, String),
    /// A malformed assertion expression.
    BadAssert(String),
}

impl fmt::Display for QmasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QmasmError::Parse { line, message } => write!(f, "line {line}: {message}"),
            QmasmError::UnknownInclude(name) => write!(f, "cannot resolve !include \"{name}\""),
            QmasmError::UnknownMacro(name) => write!(f, "no such macro `{name}`"),
            QmasmError::MacroNesting { line, message } => write!(f, "line {line}: {message}"),
            QmasmError::UnknownSymbol(name) => write!(f, "unknown symbol `{name}`"),
            QmasmError::BadPin(spec) => write!(f, "malformed pin `{spec}`"),
            QmasmError::ChainContradiction(a, b) => {
                write!(f, "contradictory chains between `{a}` and `{b}`")
            }
            QmasmError::BadAssert(msg) => write!(f, "malformed assertion: {msg}"),
        }
    }
}

impl std::error::Error for QmasmError {}
