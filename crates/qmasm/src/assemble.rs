//! Assembling a parsed program into a logical Ising model.
//!
//! The assembler expands macros, resolves symbols, merges `=`/`!=` chains
//! into single variables (the paper's §4.4 optimization — optionally
//! disabled to emit explicit chain couplings instead), accumulates weights
//! and strengths, and records pins and assertions.

use std::collections::HashMap;

use qac_pbf::{Ising, Spin};

use crate::assert::AssertExpr;
use crate::parse::{Program, Statement};
use crate::QmasmError;

/// Options controlling assembly.
#[derive(Debug, Clone)]
pub struct AssembleOptions {
    /// Merge `A = B` chains into one variable (§4.4). When false, chains
    /// become explicit ferromagnetic couplings of `chain_strength`.
    pub merge_chains: bool,
    /// Strength used for unmerged chains and `!=` anti-chains. `None`
    /// mirrors the `qmasm` default: twice the largest-magnitude J that
    /// appears literally in the code (at least 1).
    pub chain_strength: Option<f64>,
    /// Bias magnitude used when pins are applied as fields. `None` mirrors
    /// the chain-strength default.
    pub pin_weight: Option<f64>,
}

impl Default for AssembleOptions {
    fn default() -> AssembleOptions {
        AssembleOptions {
            merge_chains: true,
            chain_strength: None,
            pin_weight: None,
        }
    }
}

/// How pins should be realized when building a runnable model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PinStyle {
    /// Add a strong field hᵢ toward the pinned value (hardware style —
    /// what `qmasm` does via `H_VCC`/`H_GND`, §4.3.4).
    Bias(f64),
    /// Substitute the variable out of the model entirely.
    Fix,
}

/// Union-find symbol table with parity tracking.
///
/// Each symbol resolves to a logical variable index plus a [`Spin`]
/// parity: `Spin::Up` means the symbol equals the variable, `Spin::Down`
/// means it is its negation (introduced by `!=` chains).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, usize>,
    parent: Vec<usize>,
    /// Parity of this entry relative to its parent.
    parity: Vec<i8>,
    /// Root entry → compacted variable index (filled by `compact`).
    var_of_root: HashMap<usize, usize>,
    num_vars: usize,
}

impl SymbolTable {
    fn intern(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        self.parent.push(i);
        self.parity.push(1);
        i
    }

    /// Finds the root of entry `i`; returns `(root, parity)` where parity
    /// is +1/−1 relative to the root. Performs path compression.
    fn find(&mut self, i: usize) -> (usize, i8) {
        if self.parent[i] == i {
            return (i, 1);
        }
        let (root, p) = self.find(self.parent[i]);
        let total = self.parity[i] * p;
        self.parent[i] = root;
        self.parity[i] = total;
        (root, total)
    }

    /// Unions entries `a` and `b` with the relation σ_a = rel · σ_b.
    /// Returns `Err(())` on contradiction.
    fn union(&mut self, a: usize, b: usize, rel: i8) -> Result<(), ()> {
        let (ra, pa) = self.find(a);
        let (rb, pb) = self.find(b);
        if ra == rb {
            // Existing relation: σ_a = (pa·pb)σ_b must equal rel.
            if pa * pb != rel {
                return Err(());
            }
            return Ok(());
        }
        // Attach rb under ra: σ_rb = parity · σ_ra.
        // σ_a = pa σ_ra; σ_b = pb σ_rb ⇒ σ_rb = (rel·pa·pb) σ_ra... derive:
        // want σ_a = rel σ_b ⇒ pa σ_ra = rel pb σ_rb ⇒ σ_rb = (pa·rel·pb) σ_ra.
        self.parent[rb] = ra;
        self.parity[rb] = pa * rel * pb;
        Ok(())
    }

    /// Assigns compacted variable indices to every root.
    fn compact(&mut self) {
        let n = self.names.len();
        for i in 0..n {
            let (root, _) = self.find(i);
            let next = self.var_of_root.len();
            self.var_of_root.entry(root).or_insert(next);
        }
        self.num_vars = self.var_of_root.len();
    }

    /// Number of logical variables after chain merging.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of distinct symbols.
    pub fn num_symbols(&self) -> usize {
        self.names.len()
    }

    /// All symbol names, in first-appearance order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|s| s.as_str())
    }

    /// Resolves a symbol to `(variable, parity)`.
    pub fn resolve(&self, name: &str) -> Option<(usize, Spin)> {
        let &i = self.index.get(name)?;
        // Non-mutating find.
        let mut cur = i;
        let mut parity = 1i8;
        while self.parent[cur] != cur {
            parity *= self.parity[cur];
            cur = self.parent[cur];
        }
        let var = *self.var_of_root.get(&cur)?;
        Some((var, if parity > 0 { Spin::Up } else { Spin::Down }))
    }

    /// The Boolean value a symbol takes under a spin assignment.
    pub fn value_of(&self, name: &str, spins: &[Spin]) -> Option<bool> {
        let (var, parity) = self.resolve(name)?;
        let spin = spins.get(var)?;
        Some(match parity {
            Spin::Up => spin.to_bool(),
            Spin::Down => !spin.to_bool(),
        })
    }
}

/// The result of assembly: the logical model plus everything needed to
/// run it and interpret results.
#[derive(Debug, Clone, PartialEq)]
pub struct Assembled {
    /// The logical Hamiltonian (no pins applied).
    pub ising: Ising,
    /// Symbol resolution.
    pub symbols: SymbolTable,
    /// Pins gathered from `:=` statements (single-bit, post-expansion).
    pub pins: Vec<(String, bool)>,
    /// Assertions, parsed and ready to evaluate.
    pub asserts: Vec<AssertExpr>,
    /// The chain/pin strength that was used or derived.
    pub chain_strength: f64,
    /// Chain couplings emitted because merging was disabled (0 when
    /// `merge_chains` is on). Each contributes −`chain_strength` to the
    /// energy of every chain-satisfying assignment.
    pub num_chain_couplings: usize,
    /// The macro-expanded statement list the model was accumulated
    /// from, kept for incremental re-assembly (DESIGN.md §14).
    pub flat: Vec<Statement>,
    /// Half-open `flat` ranges, one per top-level program statement —
    /// the unit of reuse for [`assemble_incremental`].
    pub segments: Vec<(u32, u32)>,
}

impl Assembled {
    /// Resolves the program's pins plus `extra_pins` to concrete
    /// variables, in program order: `(variable, required spin, symbol
    /// name, pinned value)`. The required spin already folds in the
    /// symbol's chain parity, so two entries on the same variable with
    /// different spins are a genuine contradiction regardless of how
    /// many `=`/`!=` hops separate the pinned nets.
    ///
    /// This is the single pin-resolution path shared by
    /// [`Assembled::pinned_model`] and the static analyzer.
    ///
    /// # Errors
    /// [`QmasmError::UnknownSymbol`] if a pin names an unknown symbol.
    pub fn resolved_pins(
        &self,
        extra_pins: &[(String, bool)],
    ) -> Result<Vec<(usize, Spin, String, bool)>, QmasmError> {
        self.pins
            .iter()
            .chain(extra_pins.iter())
            .map(|(name, value)| {
                let (var, parity) = self
                    .symbols
                    .resolve(name)
                    .ok_or_else(|| QmasmError::UnknownSymbol(name.clone()))?;
                // Spin the variable must take for the symbol to equal `value`.
                let target = match parity {
                    Spin::Up => Spin::from(*value),
                    Spin::Down => Spin::from(!*value),
                };
                Ok((var, target, name.clone(), *value))
            })
            .collect()
    }

    /// Builds the runnable model with `extra_pins` merged onto the
    /// program's own pins, realized per `style`.
    ///
    /// # Errors
    /// [`QmasmError::UnknownSymbol`] if a pin names an unknown symbol.
    pub fn pinned_model(
        &self,
        extra_pins: &[(String, bool)],
        style: PinStyle,
    ) -> Result<Ising, QmasmError> {
        let mut model = self.ising.clone();
        for (var, target, _, _) in self.resolved_pins(extra_pins)? {
            match style {
                PinStyle::Bias(weight) => {
                    // H_VCC(σ) = −σ pins true; H_GND(σ) = σ pins false (§4.3.4).
                    model.add_h(var, -weight * target.value());
                }
                PinStyle::Fix => model.fix_variable(var, target),
            }
        }
        Ok(model)
    }

    /// Evaluates every assertion under a spin assignment. Returns
    /// `(expression text, holds?)` pairs.
    pub fn check_asserts(&self, spins: &[Spin]) -> Vec<(String, bool)> {
        self.asserts
            .iter()
            .map(|a| {
                let holds = a
                    .eval(&|name| self.symbols.value_of(name, spins).map(u64::from))
                    .map(|v| v != 0)
                    .unwrap_or(false);
                (a.text().to_string(), holds)
            })
            .collect()
    }
}

/// Maximum macro expansion depth.
const MAX_MACRO_DEPTH: usize = 64;

/// Assembles a parsed program into an [`Assembled`] model.
///
/// # Errors
/// [`QmasmError::UnknownMacro`] for undefined `!use_macro` targets,
/// [`QmasmError::ChainContradiction`] when `=`/`!=` chains conflict, and
/// [`QmasmError::BadAssert`] for unparsable assertions.
pub fn assemble(program: &Program, options: &AssembleOptions) -> Result<Assembled, QmasmError> {
    // --- Macro expansion to a flat statement list. ---
    // Expanded one top-level statement at a time so the segment table
    // records which flat range each statement produced; expansion is
    // context-free per statement, so the concatenation is identical to
    // expanding the whole list at once.
    let mut flat: Vec<Statement> = Vec::new();
    let mut segments: Vec<(u32, u32)> = Vec::with_capacity(program.statements.len());
    for stmt in &program.statements {
        let start = flat.len() as u32;
        expand_into(program, std::slice::from_ref(stmt), "", &mut flat, 0)?;
        segments.push((start, flat.len() as u32));
    }

    // --- Symbol interning. ---
    let mut symbols = SymbolTable::default();
    for stmt in &flat {
        match stmt {
            Statement::Weight { symbol, .. } => {
                symbols.intern(symbol);
            }
            Statement::Coupling { a, b, .. } => {
                symbols.intern(a);
                symbols.intern(b);
            }
            Statement::Equal(a, b) | Statement::NotEqual(a, b) => {
                symbols.intern(a);
                symbols.intern(b);
            }
            Statement::Pin { bits } => {
                for (name, _) in bits {
                    symbols.intern(name);
                }
            }
            Statement::UseMacro { .. } | Statement::Assert(_) => {}
        }
    }

    // --- Chain strength (qmasm default: 2 × max |J| in the code). ---
    let max_j = flat
        .iter()
        .filter_map(|s| match s {
            Statement::Coupling { value, .. } => Some(value.abs()),
            _ => None,
        })
        .fold(0.0f64, f64::max);
    let chain_strength = options.chain_strength.unwrap_or((2.0 * max_j).max(1.0));

    // --- Chain handling. ---
    let mut deferred_chains: Vec<(usize, usize, i8)> = Vec::new();
    for stmt in &flat {
        let (a, b, rel) = match stmt {
            Statement::Equal(a, b) => (a, b, 1i8),
            Statement::NotEqual(a, b) => (a, b, -1i8),
            _ => continue,
        };
        let ia = symbols.intern(a);
        let ib = symbols.intern(b);
        if options.merge_chains {
            symbols
                .union(ia, ib, rel)
                .map_err(|_| QmasmError::ChainContradiction(a.clone(), b.clone()))?;
        } else {
            deferred_chains.push((ia, ib, rel));
        }
    }
    symbols.compact();

    // --- Build the Ising model. ---
    let mut ising = Ising::new(symbols.num_vars());
    for stmt in &flat {
        match stmt {
            Statement::Weight { symbol, value } => {
                let (var, parity) = symbols.resolve(symbol).expect("interned");
                ising.add_h(var, value * f64::from(parity.sign()));
            }
            Statement::Coupling { a, b, value } => {
                let (va, pa) = symbols.resolve(a).expect("interned");
                let (vb, pb) = symbols.resolve(b).expect("interned");
                let signed = value * f64::from(pa.sign()) * f64::from(pb.sign());
                if va == vb {
                    // σσ = +1 (or −1 for opposite parity already folded in).
                    ising.add_offset(signed);
                } else {
                    ising.add_j(va, vb, signed);
                }
            }
            _ => {}
        }
    }
    // Unmerged chains become explicit couplings.
    let mut num_chain_couplings = 0usize;
    for (ia, ib, rel) in deferred_chains {
        let (va, pa) = {
            let name = symbols.names[ia].clone();
            symbols.resolve(&name).expect("interned")
        };
        let (vb, pb) = {
            let name = symbols.names[ib].clone();
            symbols.resolve(&name).expect("interned")
        };
        if va == vb {
            continue;
        }
        let sign = f64::from(rel) * f64::from(pa.sign()) * f64::from(pb.sign());
        ising.add_j(va, vb, -chain_strength * sign);
        num_chain_couplings += 1;
    }

    // --- Pins and asserts. ---
    let mut pins = Vec::new();
    let mut asserts = Vec::new();
    for stmt in &flat {
        match stmt {
            Statement::Pin { bits } => pins.extend(bits.iter().cloned()),
            Statement::Assert(text) => asserts.push(AssertExpr::parse(text)?),
            _ => {}
        }
    }

    Ok(Assembled {
        ising,
        symbols,
        pins,
        asserts,
        chain_strength,
        num_chain_couplings,
        flat,
        segments,
    })
}

/// A successful incremental re-assembly: the new model plus how much
/// of the previous expansion was reused.
#[derive(Debug, Clone)]
pub struct SplicedAssembly {
    /// The re-assembled model — field-for-field identical to what
    /// [`assemble`] would produce from scratch.
    pub assembled: Assembled,
    /// Top-level statements whose expansion was copied from `prev`.
    pub reused_statements: usize,
    /// Top-level statements that were re-expanded and re-accumulated.
    pub redone_statements: usize,
}

/// Re-assembles `program` by splicing into `prev` (the assembly of
/// `prev_program` under the same `options`), re-accumulating only the
/// Ising terms touched by changed top-level statements.
///
/// Returns `Ok(None)` when splicing cannot be proven sound — chain
/// merging off, macro bodies changed, statement count changed, a
/// changed statement participates in `=`/`!=` chain structure, or the
/// symbol interning sequence shifted — in which case the caller falls
/// back to a full [`assemble`]. On `Ok(Some(...))` the result is
/// bitwise identical to a cold assembly: affected coefficients are
/// re-accumulated from `+0.0` in flat-statement order (the same order
/// the cold path uses), and cleared couplings remove their map entry
/// outright rather than leaving a `0.0` behind.
///
/// # Errors
/// The same expansion/parse errors [`assemble`] raises for the new
/// statements.
pub fn assemble_incremental(
    prev: &Assembled,
    prev_program: &Program,
    program: &Program,
    options: &AssembleOptions,
) -> Result<Option<SplicedAssembly>, QmasmError> {
    // Deferred-chain bookkeeping (unmerged mode) depends on global
    // ordering; keep the fast path to the common merged configuration.
    if !options.merge_chains
        || prev.num_chain_couplings != 0
        || prev_program.macros != program.macros
        || prev_program.statements.len() != program.statements.len()
        || prev.segments.len() != prev_program.statements.len()
    {
        return Ok(None);
    }
    let changed: Vec<usize> = (0..program.statements.len())
        .filter(|&i| prev_program.statements[i] != program.statements[i])
        .collect();

    // --- Splice the flat expansion: copy clean segments, re-expand
    // changed ones. ---
    let mut flat: Vec<Statement> = Vec::with_capacity(prev.flat.len());
    let mut segments: Vec<(u32, u32)> = Vec::with_capacity(program.statements.len());
    let mut is_changed = vec![false; program.statements.len()];
    for &i in &changed {
        is_changed[i] = true;
    }
    for (i, stmt) in program.statements.iter().enumerate() {
        let start = flat.len() as u32;
        if is_changed[i] {
            expand_into(program, std::slice::from_ref(stmt), "", &mut flat, 0)?;
        } else {
            let (s, e) = prev.segments[i];
            flat.extend_from_slice(&prev.flat[s as usize..e as usize]);
        }
        segments.push((start, flat.len() as u32));
    }

    // A changed statement that adds or removes chain structure changes
    // the union-find topology; bail to the full path.
    fn dirty_statements<'a>(
        seg: &[(u32, u32)],
        pool: &'a [Statement],
        i: usize,
    ) -> &'a [Statement] {
        let (s, e) = seg[i];
        &pool[s as usize..e as usize]
    }
    for &i in &changed {
        let old_dirty = dirty_statements(&prev.segments, &prev.flat, i);
        let new_dirty = dirty_statements(&segments, &flat, i);
        if old_dirty
            .iter()
            .chain(new_dirty.iter())
            .any(|s| matches!(s, Statement::Equal(..) | Statement::NotEqual(..)))
        {
            return Ok(None);
        }
    }

    // The previous symbol table is reusable only if a cold assembly of
    // the new flat list would intern the exact same name sequence (and
    // the chain statements, all clean, then union identically).
    {
        let mut seen: std::collections::HashSet<&str> =
            std::collections::HashSet::with_capacity(prev.symbols.names.len());
        let mut order: Vec<&str> = Vec::with_capacity(prev.symbols.names.len());
        for stmt in &flat {
            let names: Vec<&str> = match stmt {
                Statement::Weight { symbol, .. } => vec![symbol],
                Statement::Coupling { a, b, .. } => vec![a, b],
                Statement::Equal(a, b) | Statement::NotEqual(a, b) => vec![a, b],
                Statement::Pin { bits } => bits.iter().map(|(name, _)| name.as_str()).collect(),
                Statement::UseMacro { .. } | Statement::Assert(_) => Vec::new(),
            };
            for name in names {
                if seen.insert(name) {
                    order.push(name);
                }
            }
        }
        if order.len() != prev.symbols.names.len()
            || order.iter().zip(prev.symbols.names()).any(|(a, b)| *a != b)
        {
            return Ok(None);
        }
    }
    let symbols = prev.symbols.clone();

    // --- Affected Ising coefficients: every h/J/offset term any dirty
    // statement (old or new) contributes to. ---
    #[derive(Hash, PartialEq, Eq)]
    enum Key {
        H(usize),
        J(usize, usize),
        Offset,
    }
    let mut keys: std::collections::HashSet<Key> = std::collections::HashSet::new();
    {
        let mut collect = |stmt: &Statement| match stmt {
            Statement::Weight { symbol, .. } => {
                let (var, _) = symbols.resolve(symbol).expect("interning checked");
                keys.insert(Key::H(var));
            }
            Statement::Coupling { a, b, .. } => {
                let (va, _) = symbols.resolve(a).expect("interning checked");
                let (vb, _) = symbols.resolve(b).expect("interning checked");
                if va == vb {
                    keys.insert(Key::Offset);
                } else {
                    keys.insert(Key::J(va.min(vb), va.max(vb)));
                }
            }
            _ => {}
        };
        for &i in &changed {
            for stmt in dirty_statements(&prev.segments, &prev.flat, i) {
                collect(stmt);
            }
            for stmt in dirty_statements(&segments, &flat, i) {
                collect(stmt);
            }
        }
    }

    // --- Re-accumulate the affected coefficients from scratch, in
    // whole-flat order (the cold path's accumulation order). ---
    let mut ising = prev.ising.clone();
    for key in &keys {
        match *key {
            Key::H(var) => ising.set_h(var, 0.0),
            Key::J(a, b) => ising.clear_j(a, b),
            Key::Offset => ising.set_offset(0.0),
        }
    }
    for stmt in &flat {
        match stmt {
            Statement::Weight { symbol, value } => {
                let (var, parity) = symbols.resolve(symbol).expect("interned");
                if keys.contains(&Key::H(var)) {
                    ising.add_h(var, value * f64::from(parity.sign()));
                }
            }
            Statement::Coupling { a, b, value } => {
                let (va, pa) = symbols.resolve(a).expect("interned");
                let (vb, pb) = symbols.resolve(b).expect("interned");
                let signed = value * f64::from(pa.sign()) * f64::from(pb.sign());
                if va == vb {
                    if keys.contains(&Key::Offset) {
                        ising.add_offset(signed);
                    }
                } else if keys.contains(&Key::J(va.min(vb), va.max(vb))) {
                    ising.add_j(va, vb, signed);
                }
            }
            _ => {}
        }
    }

    // --- Derived scalars and statement-ordered lists, rebuilt cheaply
    // from the spliced flat list exactly as the cold path would. ---
    let max_j = flat
        .iter()
        .filter_map(|s| match s {
            Statement::Coupling { value, .. } => Some(value.abs()),
            _ => None,
        })
        .fold(0.0f64, f64::max);
    let chain_strength = options.chain_strength.unwrap_or((2.0 * max_j).max(1.0));
    let mut pins = Vec::new();
    let mut asserts = Vec::new();
    for stmt in &flat {
        match stmt {
            Statement::Pin { bits } => pins.extend(bits.iter().cloned()),
            Statement::Assert(text) => asserts.push(AssertExpr::parse(text)?),
            _ => {}
        }
    }

    let redone_statements = changed.len();
    let reused_statements = program.statements.len() - redone_statements;
    Ok(Some(SplicedAssembly {
        assembled: Assembled {
            ising,
            symbols,
            pins,
            asserts,
            chain_strength,
            num_chain_couplings: 0,
            flat,
            segments,
        },
        reused_statements,
        redone_statements,
    }))
}

/// Expands `statements` (possibly a macro body) with `prefix` applied to
/// every symbol, recursing into `!use_macro`.
fn expand_into(
    program: &Program,
    statements: &[Statement],
    prefix: &str,
    out: &mut Vec<Statement>,
    depth: usize,
) -> Result<(), QmasmError> {
    if depth > MAX_MACRO_DEPTH {
        return Err(QmasmError::UnknownMacro("macro expansion too deep".into()));
    }
    let apply = |name: &str| -> String {
        if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}.{name}")
        }
    };
    for stmt in statements {
        match stmt {
            Statement::Weight { symbol, value } => {
                out.push(Statement::Weight {
                    symbol: apply(symbol),
                    value: *value,
                });
            }
            Statement::Coupling { a, b, value } => {
                out.push(Statement::Coupling {
                    a: apply(a),
                    b: apply(b),
                    value: *value,
                });
            }
            Statement::Equal(a, b) => out.push(Statement::Equal(apply(a), apply(b))),
            Statement::NotEqual(a, b) => out.push(Statement::NotEqual(apply(a), apply(b))),
            Statement::Pin { bits } => out.push(Statement::Pin {
                bits: bits.iter().map(|(n, v)| (apply(n), *v)).collect(),
            }),
            Statement::Assert(text) => out.push(Statement::Assert(crate::assert::prefix_symbols(
                text, prefix,
            ))),
            Statement::UseMacro { name, instances } => {
                let body = program
                    .macros
                    .get(name)
                    .ok_or_else(|| QmasmError::UnknownMacro(name.clone()))?;
                for inst in instances {
                    let new_prefix = apply(inst);
                    expand_into(program, body, &new_prefix, out, depth + 1)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse, NoIncludes};
    use qac_pbf::bits_to_spins;

    fn assemble_src(src: &str) -> Assembled {
        let program = parse(src, &NoIncludes).unwrap();
        assemble(&program, &AssembleOptions::default()).unwrap()
    }

    #[test]
    fn weights_and_couplings_accumulate() {
        let a = assemble_src("A 1\nA 0.5\nA B -2\nB A -1\n");
        assert_eq!(a.ising.num_vars(), 2);
        let (va, _) = a.symbols.resolve("A").unwrap();
        let (vb, _) = a.symbols.resolve("B").unwrap();
        assert_eq!(a.ising.h(va), 1.5);
        assert_eq!(a.ising.j(va, vb), -3.0);
    }

    #[test]
    fn equal_chain_merges_variables() {
        let a = assemble_src("A 1\nB 2\nA = B\n");
        assert_eq!(a.ising.num_vars(), 1);
        let (va, pa) = a.symbols.resolve("A").unwrap();
        let (vb, pb) = a.symbols.resolve("B").unwrap();
        assert_eq!(va, vb);
        assert_eq!(pa, pb);
        assert_eq!(a.ising.h(va), 3.0);
    }

    #[test]
    fn not_equal_chain_flips_parity() {
        let a = assemble_src("A 1\nB 2\nA != B\n");
        assert_eq!(a.ising.num_vars(), 1);
        let (va, pa) = a.symbols.resolve("A").unwrap();
        let (_, pb) = a.symbols.resolve("B").unwrap();
        assert_ne!(pa, pb);
        // h = 1·σA + 2·σB = 1·σ − 2·σ = −σ  (for A-parity σ)
        let expected = if pa == Spin::Up { -1.0 } else { 1.0 };
        assert_eq!(a.ising.h(va), expected);
    }

    #[test]
    fn contradiction_detected() {
        let program = parse("A = B\nA != B\n", &NoIncludes).unwrap();
        assert!(matches!(
            assemble(&program, &AssembleOptions::default()),
            Err(QmasmError::ChainContradiction(..))
        ));
    }

    #[test]
    fn chain_through_intermediate() {
        let a = assemble_src("A = B\nB != C\nC 1\nA 1\n");
        assert_eq!(a.ising.num_vars(), 1);
        let (_, pa) = a.symbols.resolve("A").unwrap();
        let (_, pc) = a.symbols.resolve("C").unwrap();
        assert_ne!(pa, pc);
    }

    #[test]
    fn coupling_within_merged_chain_becomes_offset() {
        // A = B plus J_AB: σAσB = 1 always, so J becomes constant energy.
        let a = assemble_src("A = B\nA B -5\n");
        assert_eq!(a.ising.offset(), -5.0);
        assert_eq!(a.ising.num_couplings(), 0);
    }

    #[test]
    fn unmerged_chains_emit_couplings() {
        let program = parse("A 1\nB 1\nA = B\nA B -0.5\n", &NoIncludes).unwrap();
        let opts = AssembleOptions {
            merge_chains: false,
            ..Default::default()
        };
        let a = assemble(&program, &opts).unwrap();
        assert_eq!(a.ising.num_vars(), 2);
        let (va, _) = a.symbols.resolve("A").unwrap();
        let (vb, _) = a.symbols.resolve("B").unwrap();
        // Chain strength default = 2 × max|J| = 1.0 ⇒ J_chain = −1, plus
        // the explicit −0.5.
        assert_eq!(a.ising.j(va, vb), -1.5);
        assert_eq!(a.chain_strength, 1.0);
        assert_eq!(a.num_chain_couplings, 1);
    }

    #[test]
    fn chain_coupling_count_zero_when_merged() {
        let a = assemble_src("A 1\nB 1\nA = B\n");
        assert_eq!(a.num_chain_couplings, 0);
        // Self-chains never emit a coupling even unmerged.
        let program = parse("A 1\nA = A\n", &NoIncludes).unwrap();
        let opts = AssembleOptions {
            merge_chains: false,
            ..Default::default()
        };
        let a = assemble(&program, &opts).unwrap();
        assert_eq!(a.num_chain_couplings, 0);
    }

    #[test]
    fn macro_expansion_with_instances() {
        let src = r#"
!begin_macro NOT
A Y 1
!end_macro NOT
!use_macro NOT n1 n2
n1.Y = n2.A
"#;
        let a = assemble_src(src);
        // Symbols: n1.A, n1.Y, n2.A, n2.Y; chain merges n1.Y/n2.A.
        assert_eq!(a.symbols.num_symbols(), 4);
        assert_eq!(a.ising.num_vars(), 3);
    }

    #[test]
    fn and_macro_ground_states() {
        // The stdcell AND macro encodes Y = A ∧ B at minimum energy.
        let src = r#"
!begin_macro AND
A  -0.5
B  -0.5
Y   1
A B 0.5
A Y -1
B Y -1
!end_macro AND
!use_macro AND g
"#;
        let a = assemble_src(src);
        assert_eq!(a.ising.num_vars(), 3);
        let n = a.ising.num_vars();
        let mut best = f64::INFINITY;
        let mut ground = Vec::new();
        for idx in 0..(1u64 << n) {
            let spins = bits_to_spins(idx, n);
            let e = a.ising.energy(&spins);
            if e < best - 1e-9 {
                best = e;
                ground = vec![spins];
            } else if (e - best).abs() < 1e-9 {
                ground.push(spins);
            }
        }
        assert_eq!(ground.len(), 4);
        for g in ground {
            let y = a.symbols.value_of("g.Y", &g).unwrap();
            let av = a.symbols.value_of("g.A", &g).unwrap();
            let bv = a.symbols.value_of("g.B", &g).unwrap();
            assert_eq!(y, av && bv);
        }
    }

    #[test]
    fn pinned_model_bias_and_fix() {
        let a = assemble_src("A B -1\nA := true\n");
        let (va, _) = a.symbols.resolve("A").unwrap();
        let biased = a.pinned_model(&[], PinStyle::Bias(4.0)).unwrap();
        assert_eq!(biased.h(va), -4.0);
        let fixed = a.pinned_model(&[], PinStyle::Fix).unwrap();
        // After fixing A=+1, B gets field −1 (from J), A inert.
        let (vb, _) = a.symbols.resolve("B").unwrap();
        assert_eq!(fixed.h(vb), -1.0);
        assert_eq!(fixed.h(va), 0.0);
    }

    #[test]
    fn extra_pins_resolve() {
        let a = assemble_src("A B -1\n");
        let model = a
            .pinned_model(&[("B".to_string(), false)], PinStyle::Bias(2.0))
            .unwrap();
        let (vb, _) = a.symbols.resolve("B").unwrap();
        assert_eq!(model.h(vb), 2.0);
        assert!(matches!(
            a.pinned_model(&[("ghost".to_string(), true)], PinStyle::Fix),
            Err(QmasmError::UnknownSymbol(_))
        ));
    }

    #[test]
    fn resolved_pins_fold_chain_parity() {
        // B != A: pinning A true and B false demand the SAME spin of the
        // merged variable, so resolution must agree; pinning both true
        // must disagree.
        let a = assemble_src("A != B\nA C -1\nA := true\n");
        let consistent = a.resolved_pins(&[("B".to_string(), false)]).unwrap();
        assert_eq!(consistent.len(), 2);
        assert_eq!(consistent[0].0, consistent[1].0, "same merged variable");
        assert_eq!(consistent[0].1, consistent[1].1, "parity folded in");
        assert_eq!(consistent[0].2, "A");
        assert!(consistent[0].3);
        assert_eq!(consistent[1].2, "B");
        assert!(!consistent[1].3);

        let conflicting = a.resolved_pins(&[("B".to_string(), true)]).unwrap();
        assert_ne!(conflicting[0].1, conflicting[1].1);

        assert!(matches!(
            a.resolved_pins(&[("ghost".to_string(), true)]),
            Err(QmasmError::UnknownSymbol(_))
        ));
    }

    /// Splice after one statement edit must be bitwise identical to a
    /// cold assembly of the edited program.
    fn splice_equals_cold(old_src: &str, new_src: &str) {
        let opts = AssembleOptions::default();
        let old_prog = parse(old_src, &NoIncludes).unwrap();
        let new_prog = parse(new_src, &NoIncludes).unwrap();
        let prev = assemble(&old_prog, &opts).unwrap();
        let cold = assemble(&new_prog, &opts).unwrap();
        let spliced = assemble_incremental(&prev, &old_prog, &new_prog, &opts)
            .unwrap()
            .expect("edit should be spliceable");
        assert_eq!(spliced.assembled, cold);
        assert!(spliced.redone_statements >= 1);
    }

    #[test]
    fn incremental_weight_edit_is_bitwise_identical() {
        splice_equals_cold(
            "A 1\nA 0.5\nA B -2\nB A -1\n",
            "A 1\nA 0.25\nA B -2\nB A -1\n",
        );
    }

    #[test]
    fn incremental_coupling_edit_rebuilds_shared_terms() {
        // Both statements feed the same J entry; editing one must
        // re-accumulate the pair in flat order.
        splice_equals_cold("A 1\nA B -2\nB A -1\n", "A 1\nA B -2\nB A -3\n");
    }

    #[test]
    fn incremental_macro_instance_edit() {
        let old_src = "!begin_macro NOT\nA Y 1\n!end_macro NOT\n!use_macro NOT n1 n2\nn1.Y = n2.A\nn1.A 0.5\n";
        let new_src = "!begin_macro NOT\nA Y 1\n!end_macro NOT\n!use_macro NOT n1 n2\nn1.Y = n2.A\nn1.A 0.75\n";
        splice_equals_cold(old_src, new_src);
    }

    #[test]
    fn incremental_coupling_removal_clears_the_entry() {
        // The edited statement was the ONLY contributor to J(A,B); the
        // spliced map must drop the key entirely (a 0.0-valued leftover
        // would break PartialEq against the cold model).
        splice_equals_cold("A 1\nB 1\nA B -2\n", "A 1\nB 1\nA A -2\n");
    }

    #[test]
    fn incremental_falls_back_when_chains_change() {
        let opts = AssembleOptions::default();
        let old_prog = parse("A 1\nB 1\nA = B\n", &NoIncludes).unwrap();
        let new_prog = parse("A 1\nB 1\nA != B\n", &NoIncludes).unwrap();
        let prev = assemble(&old_prog, &opts).unwrap();
        assert!(assemble_incremental(&prev, &old_prog, &new_prog, &opts)
            .unwrap()
            .is_none());
    }

    #[test]
    fn incremental_falls_back_on_new_symbols() {
        let opts = AssembleOptions::default();
        let old_prog = parse("A 1\nA B -2\n", &NoIncludes).unwrap();
        let new_prog = parse("A 1\nA C -2\n", &NoIncludes).unwrap();
        let prev = assemble(&old_prog, &opts).unwrap();
        assert!(
            assemble_incremental(&prev, &old_prog, &new_prog, &opts)
                .unwrap()
                .is_none(),
            "symbol C is not in the previous table; interning shifted"
        );
    }

    #[test]
    fn incremental_identity_reuses_everything() {
        let opts = AssembleOptions::default();
        let prog = parse("A 1\nA B -2\n", &NoIncludes).unwrap();
        let prev = assemble(&prog, &opts).unwrap();
        let spliced = assemble_incremental(&prev, &prog, &prog, &opts)
            .unwrap()
            .unwrap();
        assert_eq!(spliced.redone_statements, 0);
        assert_eq!(spliced.reused_statements, 2);
        assert_eq!(spliced.assembled, prev);
    }

    #[test]
    fn asserts_checked() {
        let src = "!begin_macro AND\nA -0.5\nB -0.5\nY 1\nA B 0.5\nA Y -1\nB Y -1\n!assert Y == A & B\n!end_macro AND\n!use_macro AND g\n";
        let a = assemble_src(src);
        assert_eq!(a.asserts.len(), 1);
        // A valid row satisfies the assert; an invalid one does not.
        let spins_for = |av: bool, bv: bool, yv: bool| {
            let n = a.ising.num_vars();
            let mut spins = vec![Spin::Down; n];
            let (va, pa) = a.symbols.resolve("g.A").unwrap();
            let (vb, pb) = a.symbols.resolve("g.B").unwrap();
            let (vy, py) = a.symbols.resolve("g.Y").unwrap();
            let set = |spins: &mut Vec<Spin>, var: usize, parity: Spin, val: bool| {
                spins[var] = if parity == Spin::Up {
                    Spin::from(val)
                } else {
                    Spin::from(!val)
                };
            };
            set(&mut spins, va, pa, av);
            set(&mut spins, vb, pb, bv);
            set(&mut spins, vy, py, yv);
            spins
        };
        let good = a.check_asserts(&spins_for(true, true, true));
        assert!(good[0].1);
        let bad = a.check_asserts(&spins_for(true, false, true));
        assert!(!bad[0].1);
    }
}
