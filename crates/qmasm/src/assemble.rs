//! Assembling a parsed program into a logical Ising model.
//!
//! The assembler expands macros, resolves symbols, merges `=`/`!=` chains
//! into single variables (the paper's §4.4 optimization — optionally
//! disabled to emit explicit chain couplings instead), accumulates weights
//! and strengths, and records pins and assertions.

use std::collections::HashMap;

use qac_pbf::{Ising, Spin};

use crate::assert::AssertExpr;
use crate::parse::{Program, Statement};
use crate::QmasmError;

/// Options controlling assembly.
#[derive(Debug, Clone)]
pub struct AssembleOptions {
    /// Merge `A = B` chains into one variable (§4.4). When false, chains
    /// become explicit ferromagnetic couplings of `chain_strength`.
    pub merge_chains: bool,
    /// Strength used for unmerged chains and `!=` anti-chains. `None`
    /// mirrors the `qmasm` default: twice the largest-magnitude J that
    /// appears literally in the code (at least 1).
    pub chain_strength: Option<f64>,
    /// Bias magnitude used when pins are applied as fields. `None` mirrors
    /// the chain-strength default.
    pub pin_weight: Option<f64>,
}

impl Default for AssembleOptions {
    fn default() -> AssembleOptions {
        AssembleOptions {
            merge_chains: true,
            chain_strength: None,
            pin_weight: None,
        }
    }
}

/// How pins should be realized when building a runnable model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PinStyle {
    /// Add a strong field hᵢ toward the pinned value (hardware style —
    /// what `qmasm` does via `H_VCC`/`H_GND`, §4.3.4).
    Bias(f64),
    /// Substitute the variable out of the model entirely.
    Fix,
}

/// Union-find symbol table with parity tracking.
///
/// Each symbol resolves to a logical variable index plus a [`Spin`]
/// parity: `Spin::Up` means the symbol equals the variable, `Spin::Down`
/// means it is its negation (introduced by `!=` chains).
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, usize>,
    parent: Vec<usize>,
    /// Parity of this entry relative to its parent.
    parity: Vec<i8>,
    /// Root entry → compacted variable index (filled by `compact`).
    var_of_root: HashMap<usize, usize>,
    num_vars: usize,
}

impl SymbolTable {
    fn intern(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        self.parent.push(i);
        self.parity.push(1);
        i
    }

    /// Finds the root of entry `i`; returns `(root, parity)` where parity
    /// is +1/−1 relative to the root. Performs path compression.
    fn find(&mut self, i: usize) -> (usize, i8) {
        if self.parent[i] == i {
            return (i, 1);
        }
        let (root, p) = self.find(self.parent[i]);
        let total = self.parity[i] * p;
        self.parent[i] = root;
        self.parity[i] = total;
        (root, total)
    }

    /// Unions entries `a` and `b` with the relation σ_a = rel · σ_b.
    /// Returns `Err(())` on contradiction.
    fn union(&mut self, a: usize, b: usize, rel: i8) -> Result<(), ()> {
        let (ra, pa) = self.find(a);
        let (rb, pb) = self.find(b);
        if ra == rb {
            // Existing relation: σ_a = (pa·pb)σ_b must equal rel.
            if pa * pb != rel {
                return Err(());
            }
            return Ok(());
        }
        // Attach rb under ra: σ_rb = parity · σ_ra.
        // σ_a = pa σ_ra; σ_b = pb σ_rb ⇒ σ_rb = (rel·pa·pb) σ_ra... derive:
        // want σ_a = rel σ_b ⇒ pa σ_ra = rel pb σ_rb ⇒ σ_rb = (pa·rel·pb) σ_ra.
        self.parent[rb] = ra;
        self.parity[rb] = pa * rel * pb;
        Ok(())
    }

    /// Assigns compacted variable indices to every root.
    fn compact(&mut self) {
        let n = self.names.len();
        for i in 0..n {
            let (root, _) = self.find(i);
            let next = self.var_of_root.len();
            self.var_of_root.entry(root).or_insert(next);
        }
        self.num_vars = self.var_of_root.len();
    }

    /// Number of logical variables after chain merging.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of distinct symbols.
    pub fn num_symbols(&self) -> usize {
        self.names.len()
    }

    /// All symbol names, in first-appearance order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|s| s.as_str())
    }

    /// Resolves a symbol to `(variable, parity)`.
    pub fn resolve(&self, name: &str) -> Option<(usize, Spin)> {
        let &i = self.index.get(name)?;
        // Non-mutating find.
        let mut cur = i;
        let mut parity = 1i8;
        while self.parent[cur] != cur {
            parity *= self.parity[cur];
            cur = self.parent[cur];
        }
        let var = *self.var_of_root.get(&cur)?;
        Some((var, if parity > 0 { Spin::Up } else { Spin::Down }))
    }

    /// The Boolean value a symbol takes under a spin assignment.
    pub fn value_of(&self, name: &str, spins: &[Spin]) -> Option<bool> {
        let (var, parity) = self.resolve(name)?;
        let spin = spins.get(var)?;
        Some(match parity {
            Spin::Up => spin.to_bool(),
            Spin::Down => !spin.to_bool(),
        })
    }
}

/// The result of assembly: the logical model plus everything needed to
/// run it and interpret results.
#[derive(Debug, Clone)]
pub struct Assembled {
    /// The logical Hamiltonian (no pins applied).
    pub ising: Ising,
    /// Symbol resolution.
    pub symbols: SymbolTable,
    /// Pins gathered from `:=` statements (single-bit, post-expansion).
    pub pins: Vec<(String, bool)>,
    /// Assertions, parsed and ready to evaluate.
    pub asserts: Vec<AssertExpr>,
    /// The chain/pin strength that was used or derived.
    pub chain_strength: f64,
    /// Chain couplings emitted because merging was disabled (0 when
    /// `merge_chains` is on). Each contributes −`chain_strength` to the
    /// energy of every chain-satisfying assignment.
    pub num_chain_couplings: usize,
}

impl Assembled {
    /// Resolves the program's pins plus `extra_pins` to concrete
    /// variables, in program order: `(variable, required spin, symbol
    /// name, pinned value)`. The required spin already folds in the
    /// symbol's chain parity, so two entries on the same variable with
    /// different spins are a genuine contradiction regardless of how
    /// many `=`/`!=` hops separate the pinned nets.
    ///
    /// This is the single pin-resolution path shared by
    /// [`Assembled::pinned_model`] and the static analyzer.
    ///
    /// # Errors
    /// [`QmasmError::UnknownSymbol`] if a pin names an unknown symbol.
    pub fn resolved_pins(
        &self,
        extra_pins: &[(String, bool)],
    ) -> Result<Vec<(usize, Spin, String, bool)>, QmasmError> {
        self.pins
            .iter()
            .chain(extra_pins.iter())
            .map(|(name, value)| {
                let (var, parity) = self
                    .symbols
                    .resolve(name)
                    .ok_or_else(|| QmasmError::UnknownSymbol(name.clone()))?;
                // Spin the variable must take for the symbol to equal `value`.
                let target = match parity {
                    Spin::Up => Spin::from(*value),
                    Spin::Down => Spin::from(!*value),
                };
                Ok((var, target, name.clone(), *value))
            })
            .collect()
    }

    /// Builds the runnable model with `extra_pins` merged onto the
    /// program's own pins, realized per `style`.
    ///
    /// # Errors
    /// [`QmasmError::UnknownSymbol`] if a pin names an unknown symbol.
    pub fn pinned_model(
        &self,
        extra_pins: &[(String, bool)],
        style: PinStyle,
    ) -> Result<Ising, QmasmError> {
        let mut model = self.ising.clone();
        for (var, target, _, _) in self.resolved_pins(extra_pins)? {
            match style {
                PinStyle::Bias(weight) => {
                    // H_VCC(σ) = −σ pins true; H_GND(σ) = σ pins false (§4.3.4).
                    model.add_h(var, -weight * target.value());
                }
                PinStyle::Fix => model.fix_variable(var, target),
            }
        }
        Ok(model)
    }

    /// Evaluates every assertion under a spin assignment. Returns
    /// `(expression text, holds?)` pairs.
    pub fn check_asserts(&self, spins: &[Spin]) -> Vec<(String, bool)> {
        self.asserts
            .iter()
            .map(|a| {
                let holds = a
                    .eval(&|name| self.symbols.value_of(name, spins).map(u64::from))
                    .map(|v| v != 0)
                    .unwrap_or(false);
                (a.text().to_string(), holds)
            })
            .collect()
    }
}

/// Maximum macro expansion depth.
const MAX_MACRO_DEPTH: usize = 64;

/// Assembles a parsed program into an [`Assembled`] model.
///
/// # Errors
/// [`QmasmError::UnknownMacro`] for undefined `!use_macro` targets,
/// [`QmasmError::ChainContradiction`] when `=`/`!=` chains conflict, and
/// [`QmasmError::BadAssert`] for unparsable assertions.
pub fn assemble(program: &Program, options: &AssembleOptions) -> Result<Assembled, QmasmError> {
    // --- Macro expansion to a flat statement list. ---
    let mut flat: Vec<Statement> = Vec::new();
    expand_into(program, &program.statements, "", &mut flat, 0)?;

    // --- Symbol interning. ---
    let mut symbols = SymbolTable::default();
    for stmt in &flat {
        match stmt {
            Statement::Weight { symbol, .. } => {
                symbols.intern(symbol);
            }
            Statement::Coupling { a, b, .. } => {
                symbols.intern(a);
                symbols.intern(b);
            }
            Statement::Equal(a, b) | Statement::NotEqual(a, b) => {
                symbols.intern(a);
                symbols.intern(b);
            }
            Statement::Pin { bits } => {
                for (name, _) in bits {
                    symbols.intern(name);
                }
            }
            Statement::UseMacro { .. } | Statement::Assert(_) => {}
        }
    }

    // --- Chain strength (qmasm default: 2 × max |J| in the code). ---
    let max_j = flat
        .iter()
        .filter_map(|s| match s {
            Statement::Coupling { value, .. } => Some(value.abs()),
            _ => None,
        })
        .fold(0.0f64, f64::max);
    let chain_strength = options.chain_strength.unwrap_or((2.0 * max_j).max(1.0));

    // --- Chain handling. ---
    let mut deferred_chains: Vec<(usize, usize, i8)> = Vec::new();
    for stmt in &flat {
        let (a, b, rel) = match stmt {
            Statement::Equal(a, b) => (a, b, 1i8),
            Statement::NotEqual(a, b) => (a, b, -1i8),
            _ => continue,
        };
        let ia = symbols.intern(a);
        let ib = symbols.intern(b);
        if options.merge_chains {
            symbols
                .union(ia, ib, rel)
                .map_err(|_| QmasmError::ChainContradiction(a.clone(), b.clone()))?;
        } else {
            deferred_chains.push((ia, ib, rel));
        }
    }
    symbols.compact();

    // --- Build the Ising model. ---
    let mut ising = Ising::new(symbols.num_vars());
    for stmt in &flat {
        match stmt {
            Statement::Weight { symbol, value } => {
                let (var, parity) = symbols.resolve(symbol).expect("interned");
                ising.add_h(var, value * f64::from(parity.sign()));
            }
            Statement::Coupling { a, b, value } => {
                let (va, pa) = symbols.resolve(a).expect("interned");
                let (vb, pb) = symbols.resolve(b).expect("interned");
                let signed = value * f64::from(pa.sign()) * f64::from(pb.sign());
                if va == vb {
                    // σσ = +1 (or −1 for opposite parity already folded in).
                    ising.add_offset(signed);
                } else {
                    ising.add_j(va, vb, signed);
                }
            }
            _ => {}
        }
    }
    // Unmerged chains become explicit couplings.
    let mut num_chain_couplings = 0usize;
    for (ia, ib, rel) in deferred_chains {
        let (va, pa) = {
            let name = symbols.names[ia].clone();
            symbols.resolve(&name).expect("interned")
        };
        let (vb, pb) = {
            let name = symbols.names[ib].clone();
            symbols.resolve(&name).expect("interned")
        };
        if va == vb {
            continue;
        }
        let sign = f64::from(rel) * f64::from(pa.sign()) * f64::from(pb.sign());
        ising.add_j(va, vb, -chain_strength * sign);
        num_chain_couplings += 1;
    }

    // --- Pins and asserts. ---
    let mut pins = Vec::new();
    let mut asserts = Vec::new();
    for stmt in &flat {
        match stmt {
            Statement::Pin { bits } => pins.extend(bits.iter().cloned()),
            Statement::Assert(text) => asserts.push(AssertExpr::parse(text)?),
            _ => {}
        }
    }

    Ok(Assembled {
        ising,
        symbols,
        pins,
        asserts,
        chain_strength,
        num_chain_couplings,
    })
}

/// Expands `statements` (possibly a macro body) with `prefix` applied to
/// every symbol, recursing into `!use_macro`.
fn expand_into(
    program: &Program,
    statements: &[Statement],
    prefix: &str,
    out: &mut Vec<Statement>,
    depth: usize,
) -> Result<(), QmasmError> {
    if depth > MAX_MACRO_DEPTH {
        return Err(QmasmError::UnknownMacro("macro expansion too deep".into()));
    }
    let apply = |name: &str| -> String {
        if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}.{name}")
        }
    };
    for stmt in statements {
        match stmt {
            Statement::Weight { symbol, value } => {
                out.push(Statement::Weight {
                    symbol: apply(symbol),
                    value: *value,
                });
            }
            Statement::Coupling { a, b, value } => {
                out.push(Statement::Coupling {
                    a: apply(a),
                    b: apply(b),
                    value: *value,
                });
            }
            Statement::Equal(a, b) => out.push(Statement::Equal(apply(a), apply(b))),
            Statement::NotEqual(a, b) => out.push(Statement::NotEqual(apply(a), apply(b))),
            Statement::Pin { bits } => out.push(Statement::Pin {
                bits: bits.iter().map(|(n, v)| (apply(n), *v)).collect(),
            }),
            Statement::Assert(text) => out.push(Statement::Assert(crate::assert::prefix_symbols(
                text, prefix,
            ))),
            Statement::UseMacro { name, instances } => {
                let body = program
                    .macros
                    .get(name)
                    .ok_or_else(|| QmasmError::UnknownMacro(name.clone()))?;
                for inst in instances {
                    let new_prefix = apply(inst);
                    expand_into(program, body, &new_prefix, out, depth + 1)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse, NoIncludes};
    use qac_pbf::bits_to_spins;

    fn assemble_src(src: &str) -> Assembled {
        let program = parse(src, &NoIncludes).unwrap();
        assemble(&program, &AssembleOptions::default()).unwrap()
    }

    #[test]
    fn weights_and_couplings_accumulate() {
        let a = assemble_src("A 1\nA 0.5\nA B -2\nB A -1\n");
        assert_eq!(a.ising.num_vars(), 2);
        let (va, _) = a.symbols.resolve("A").unwrap();
        let (vb, _) = a.symbols.resolve("B").unwrap();
        assert_eq!(a.ising.h(va), 1.5);
        assert_eq!(a.ising.j(va, vb), -3.0);
    }

    #[test]
    fn equal_chain_merges_variables() {
        let a = assemble_src("A 1\nB 2\nA = B\n");
        assert_eq!(a.ising.num_vars(), 1);
        let (va, pa) = a.symbols.resolve("A").unwrap();
        let (vb, pb) = a.symbols.resolve("B").unwrap();
        assert_eq!(va, vb);
        assert_eq!(pa, pb);
        assert_eq!(a.ising.h(va), 3.0);
    }

    #[test]
    fn not_equal_chain_flips_parity() {
        let a = assemble_src("A 1\nB 2\nA != B\n");
        assert_eq!(a.ising.num_vars(), 1);
        let (va, pa) = a.symbols.resolve("A").unwrap();
        let (_, pb) = a.symbols.resolve("B").unwrap();
        assert_ne!(pa, pb);
        // h = 1·σA + 2·σB = 1·σ − 2·σ = −σ  (for A-parity σ)
        let expected = if pa == Spin::Up { -1.0 } else { 1.0 };
        assert_eq!(a.ising.h(va), expected);
    }

    #[test]
    fn contradiction_detected() {
        let program = parse("A = B\nA != B\n", &NoIncludes).unwrap();
        assert!(matches!(
            assemble(&program, &AssembleOptions::default()),
            Err(QmasmError::ChainContradiction(..))
        ));
    }

    #[test]
    fn chain_through_intermediate() {
        let a = assemble_src("A = B\nB != C\nC 1\nA 1\n");
        assert_eq!(a.ising.num_vars(), 1);
        let (_, pa) = a.symbols.resolve("A").unwrap();
        let (_, pc) = a.symbols.resolve("C").unwrap();
        assert_ne!(pa, pc);
    }

    #[test]
    fn coupling_within_merged_chain_becomes_offset() {
        // A = B plus J_AB: σAσB = 1 always, so J becomes constant energy.
        let a = assemble_src("A = B\nA B -5\n");
        assert_eq!(a.ising.offset(), -5.0);
        assert_eq!(a.ising.num_couplings(), 0);
    }

    #[test]
    fn unmerged_chains_emit_couplings() {
        let program = parse("A 1\nB 1\nA = B\nA B -0.5\n", &NoIncludes).unwrap();
        let opts = AssembleOptions {
            merge_chains: false,
            ..Default::default()
        };
        let a = assemble(&program, &opts).unwrap();
        assert_eq!(a.ising.num_vars(), 2);
        let (va, _) = a.symbols.resolve("A").unwrap();
        let (vb, _) = a.symbols.resolve("B").unwrap();
        // Chain strength default = 2 × max|J| = 1.0 ⇒ J_chain = −1, plus
        // the explicit −0.5.
        assert_eq!(a.ising.j(va, vb), -1.5);
        assert_eq!(a.chain_strength, 1.0);
        assert_eq!(a.num_chain_couplings, 1);
    }

    #[test]
    fn chain_coupling_count_zero_when_merged() {
        let a = assemble_src("A 1\nB 1\nA = B\n");
        assert_eq!(a.num_chain_couplings, 0);
        // Self-chains never emit a coupling even unmerged.
        let program = parse("A 1\nA = A\n", &NoIncludes).unwrap();
        let opts = AssembleOptions {
            merge_chains: false,
            ..Default::default()
        };
        let a = assemble(&program, &opts).unwrap();
        assert_eq!(a.num_chain_couplings, 0);
    }

    #[test]
    fn macro_expansion_with_instances() {
        let src = r#"
!begin_macro NOT
A Y 1
!end_macro NOT
!use_macro NOT n1 n2
n1.Y = n2.A
"#;
        let a = assemble_src(src);
        // Symbols: n1.A, n1.Y, n2.A, n2.Y; chain merges n1.Y/n2.A.
        assert_eq!(a.symbols.num_symbols(), 4);
        assert_eq!(a.ising.num_vars(), 3);
    }

    #[test]
    fn and_macro_ground_states() {
        // The stdcell AND macro encodes Y = A ∧ B at minimum energy.
        let src = r#"
!begin_macro AND
A  -0.5
B  -0.5
Y   1
A B 0.5
A Y -1
B Y -1
!end_macro AND
!use_macro AND g
"#;
        let a = assemble_src(src);
        assert_eq!(a.ising.num_vars(), 3);
        let n = a.ising.num_vars();
        let mut best = f64::INFINITY;
        let mut ground = Vec::new();
        for idx in 0..(1u64 << n) {
            let spins = bits_to_spins(idx, n);
            let e = a.ising.energy(&spins);
            if e < best - 1e-9 {
                best = e;
                ground = vec![spins];
            } else if (e - best).abs() < 1e-9 {
                ground.push(spins);
            }
        }
        assert_eq!(ground.len(), 4);
        for g in ground {
            let y = a.symbols.value_of("g.Y", &g).unwrap();
            let av = a.symbols.value_of("g.A", &g).unwrap();
            let bv = a.symbols.value_of("g.B", &g).unwrap();
            assert_eq!(y, av && bv);
        }
    }

    #[test]
    fn pinned_model_bias_and_fix() {
        let a = assemble_src("A B -1\nA := true\n");
        let (va, _) = a.symbols.resolve("A").unwrap();
        let biased = a.pinned_model(&[], PinStyle::Bias(4.0)).unwrap();
        assert_eq!(biased.h(va), -4.0);
        let fixed = a.pinned_model(&[], PinStyle::Fix).unwrap();
        // After fixing A=+1, B gets field −1 (from J), A inert.
        let (vb, _) = a.symbols.resolve("B").unwrap();
        assert_eq!(fixed.h(vb), -1.0);
        assert_eq!(fixed.h(va), 0.0);
    }

    #[test]
    fn extra_pins_resolve() {
        let a = assemble_src("A B -1\n");
        let model = a
            .pinned_model(&[("B".to_string(), false)], PinStyle::Bias(2.0))
            .unwrap();
        let (vb, _) = a.symbols.resolve("B").unwrap();
        assert_eq!(model.h(vb), 2.0);
        assert!(matches!(
            a.pinned_model(&[("ghost".to_string(), true)], PinStyle::Fix),
            Err(QmasmError::UnknownSymbol(_))
        ));
    }

    #[test]
    fn resolved_pins_fold_chain_parity() {
        // B != A: pinning A true and B false demand the SAME spin of the
        // merged variable, so resolution must agree; pinning both true
        // must disagree.
        let a = assemble_src("A != B\nA C -1\nA := true\n");
        let consistent = a.resolved_pins(&[("B".to_string(), false)]).unwrap();
        assert_eq!(consistent.len(), 2);
        assert_eq!(consistent[0].0, consistent[1].0, "same merged variable");
        assert_eq!(consistent[0].1, consistent[1].1, "parity folded in");
        assert_eq!(consistent[0].2, "A");
        assert!(consistent[0].3);
        assert_eq!(consistent[1].2, "B");
        assert!(!consistent[1].3);

        let conflicting = a.resolved_pins(&[("B".to_string(), true)]).unwrap();
        assert_ne!(conflicting[0].1, conflicting[1].1);

        assert!(matches!(
            a.resolved_pins(&[("ghost".to_string(), true)]),
            Err(QmasmError::UnknownSymbol(_))
        ));
    }

    #[test]
    fn asserts_checked() {
        let src = "!begin_macro AND\nA -0.5\nB -0.5\nY 1\nA B 0.5\nA Y -1\nB Y -1\n!assert Y == A & B\n!end_macro AND\n!use_macro AND g\n";
        let a = assemble_src(src);
        assert_eq!(a.asserts.len(), 1);
        // A valid row satisfies the assert; an invalid one does not.
        let spins_for = |av: bool, bv: bool, yv: bool| {
            let n = a.ising.num_vars();
            let mut spins = vec![Spin::Down; n];
            let (va, pa) = a.symbols.resolve("g.A").unwrap();
            let (vb, pb) = a.symbols.resolve("g.B").unwrap();
            let (vy, py) = a.symbols.resolve("g.Y").unwrap();
            let set = |spins: &mut Vec<Spin>, var: usize, parity: Spin, val: bool| {
                spins[var] = if parity == Spin::Up {
                    Spin::from(val)
                } else {
                    Spin::from(!val)
                };
            };
            set(&mut spins, va, pa, av);
            set(&mut spins, vb, pb, bv);
            set(&mut spins, vy, py, yv);
            spins
        };
        let good = a.check_asserts(&spins_for(true, true, true));
        assert!(good[0].1);
        let bad = a.check_asserts(&spins_for(true, false, true));
        assert!(!bad[0].1);
    }
}
