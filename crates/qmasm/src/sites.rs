//! Per-macro-instance obligation sites for translation validation
//! (DESIGN.md §15).
//!
//! The certifying compiler proves each macro *kind* once (the unit model
//! is shared by every instance) but records every instantiation site in
//! the certificate, so a reader can audit that the proof covers the
//! whole program.

use crate::parse::{Program, Statement};

/// One macro kind's obligation site list: the macro name, its body
/// statements, and every instance prefix that uses it, sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroSites {
    /// Macro name, e.g. `AND`.
    pub name: String,
    /// The macro's body statements as parsed (weights, couplings, and
    /// any `!assert` niceties).
    pub body: Vec<Statement>,
    /// Instance prefixes from every `!use_macro`, sorted and deduplicated.
    pub instances: Vec<String>,
}

/// Extracts the obligation sites of every macro the program actually
/// instantiates, sorted by macro name.
///
/// # Errors
/// The name of the first `!use_macro` that references an undefined macro.
pub fn macro_sites(program: &Program) -> Result<Vec<MacroSites>, String> {
    let mut sites: Vec<MacroSites> = Vec::new();
    for statement in &program.statements {
        let Statement::UseMacro { name, instances } = statement else {
            continue;
        };
        let entry = match sites.iter_mut().find(|s| &s.name == name) {
            Some(entry) => entry,
            None => {
                let body = program
                    .macros
                    .get(name)
                    .ok_or_else(|| format!("use of undefined macro `{name}`"))?;
                sites.push(MacroSites {
                    name: name.clone(),
                    body: body.clone(),
                    instances: Vec::new(),
                });
                sites.last_mut().expect("just pushed")
            }
        };
        entry.instances.extend(instances.iter().cloned());
    }
    for entry in &mut sites {
        entry.instances.sort();
        entry.instances.dedup();
    }
    sites.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, NoIncludes};

    #[test]
    fn sites_are_sorted_and_deduplicated() {
        let src = "!begin_macro M\n  A 1\n!end_macro M\n\
                   !use_macro M $b\n!use_macro M $a $b\n";
        let program = parse(src, &NoIncludes).unwrap();
        let sites = macro_sites(&program).unwrap();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].name, "M");
        assert_eq!(sites[0].instances, ["$a", "$b"]);
        assert_eq!(sites[0].body.len(), 1);
    }

    #[test]
    fn unused_macros_are_not_reported() {
        let src = "!begin_macro M\n  A 1\n!end_macro M\n\
                   !begin_macro N\n  B 1\n!end_macro N\n\
                   !use_macro N $x\n";
        let program = parse(src, &NoIncludes).unwrap();
        let sites = macro_sites(&program).unwrap();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].name, "N");
    }
}
