//! Interpreting spin assignments as named values — what the `qmasm` tool
//! prints after a run ("reports the solution … in terms of the
//! program-specified symbolic names rather than as physical qubit
//! numbers").

use std::collections::BTreeMap;

use qac_pbf::Spin;

use crate::assemble::Assembled;

/// The value of one visible symbol or symbol group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolValue {
    /// A single-bit symbol.
    Bit(bool),
    /// A multi-bit group `name[i]`, assembled into an integer.
    Word {
        /// The integer value (bit `i` of the word from `name[i]`).
        value: u64,
        /// Number of bits present.
        width: usize,
    },
}

/// A decoded solution: visible symbol (groups) and their values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Solution {
    /// Name → value, sorted by name. Internal symbols (containing `$`)
    /// are omitted, as the `qmasm` tool does.
    pub values: BTreeMap<String, SymbolValue>,
}

impl Solution {
    /// The integer value of a symbol or group, if present (bits read as
    /// 0/1).
    pub fn get(&self, name: &str) -> Option<u64> {
        match self.values.get(name)? {
            SymbolValue::Bit(b) => Some(u64::from(*b)),
            SymbolValue::Word { value, .. } => Some(*value),
        }
    }
}

impl Assembled {
    /// Decodes a spin assignment over the logical variables into named
    /// values, grouping `name[i]` symbols into words and hiding `$`
    /// internals.
    pub fn interpret(&self, spins: &[Spin]) -> Solution {
        let mut solution = Solution::default();
        for name in self.symbols.names() {
            if name.contains('$') {
                continue;
            }
            let Some(value) = self.symbols.value_of(name, spins) else {
                continue;
            };
            // Grouped bit?
            if let Some((base, index)) = split_indexed(name) {
                let entry = solution
                    .values
                    .entry(base.to_string())
                    .or_insert(SymbolValue::Word { value: 0, width: 0 });
                if let SymbolValue::Word { value: w, width } = entry {
                    if value {
                        *w |= 1 << index;
                    }
                    *width = (*width).max(index + 1);
                }
            } else {
                solution
                    .values
                    .insert(name.to_string(), SymbolValue::Bit(value));
            }
        }
        solution
    }
}

/// Splits `name[3]` into `("name", 3)`.
fn split_indexed(name: &str) -> Option<(&str, usize)> {
    let open = name.rfind('[')?;
    let close = name.rfind(']')?;
    if close != name.len() - 1 || open + 1 >= close {
        return None;
    }
    let index: usize = name[open + 1..close].parse().ok()?;
    Some((&name[..open], index))
}

/// Formats a solution in the two-column style of the `qmasm` tool.
pub fn format_solution(solution: &Solution) -> String {
    let mut out = String::from("Name       Value\n---------  -----\n");
    for (name, value) in &solution.values {
        match value {
            SymbolValue::Bit(b) => {
                out.push_str(&format!(
                    "{name:<10} {}\n",
                    if *b { "True" } else { "False" }
                ));
            }
            SymbolValue::Word { value, width } => {
                out.push_str(&format!("{name:<10} {value} ({width} bits)\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse, NoIncludes};
    use crate::{assemble, AssembleOptions};

    #[test]
    fn grouping_and_hiding() {
        let src = "C[0] 1\nC[1] 1\nC[2] 1\nvalid 1\n$internal 1\ng.$x 1\n";
        let program = parse(src, &NoIncludes).unwrap();
        let a = assemble(&program, &AssembleOptions::default()).unwrap();
        let n = a.ising.num_vars();
        // All +1 spins: every symbol true.
        let spins = vec![Spin::Up; n];
        let sol = a.interpret(&spins);
        assert_eq!(sol.get("C"), Some(0b111));
        assert_eq!(sol.get("valid"), Some(1));
        assert!(sol.get("$internal").is_none());
        assert!(sol.get("g.$x").is_none());
        let text = format_solution(&sol);
        assert!(text.contains("valid"));
        assert!(text.contains("True"));
    }

    #[test]
    fn word_value_respects_bit_positions() {
        let src = "X[0] 1\nX[3] 1\n";
        let program = parse(src, &NoIncludes).unwrap();
        let a = assemble(&program, &AssembleOptions::default()).unwrap();
        let (v0, _) = a.symbols.resolve("X[0]").unwrap();
        let (v3, _) = a.symbols.resolve("X[3]").unwrap();
        let mut spins = vec![Spin::Down; a.ising.num_vars()];
        spins[v0] = Spin::Up;
        spins[v3] = Spin::Up;
        let sol = a.interpret(&spins);
        assert_eq!(sol.get("X"), Some(0b1001));
        assert_eq!(
            sol.values["X"],
            SymbolValue::Word {
                value: 0b1001,
                width: 4
            }
        );
    }

    #[test]
    fn split_indexed_parses() {
        assert_eq!(split_indexed("C[7]"), Some(("C", 7)));
        assert_eq!(split_indexed("a.b[10]"), Some(("a.b", 10)));
        assert_eq!(split_indexed("plain"), None);
        assert_eq!(split_indexed("odd[“]"), None);
    }
}
