//! QMASM — the "quantum macro assembler" (paper §4.3).
//!
//! QMASM is the symbolic layer between netlists and raw Hamiltonian
//! coefficients: programs name variables, state weights (`hᵢ`) and
//! couplings (`Jᵢⱼ`), chain variables together (`=` / `!=`), pin variables
//! to constants (`:=`), define and instantiate macros, include libraries,
//! and carry assertions for post-run checking.
//!
//! This crate implements the language and the assembler:
//!
//! * [`parse`] — text → [`Program`] (with `!include` resolution);
//! * [`assemble`] — [`Program`] → logical [`Ising`] model plus a
//!   [`SymbolTable`], with `=`-chain merging (the §4.4 optimization),
//!   pins, and assertions;
//! * [`Assembled::interpret`] — map a spin assignment back to named,
//!   multi-bit values, the way the `qmasm` tool reports results;
//! * [`stdcell_qmasm`] — generate the `stdcell.qmasm` standard-cell
//!   library text (paper Listing 2) from the verified Table 5 cells.
//!
//! # Example: the paper's Listing 4 (3-input AND from two 2-input ANDs)
//!
//! ```
//! use qac_qmasm::{assemble, parse, AssembleOptions, NoIncludes};
//!
//! let src = r#"
//! !begin_macro AND
//! A  -0.5
//! B  -0.5
//! Y   1
//! A B 0.5
//! A Y -1
//! B Y -1
//! !end_macro AND
//!
//! !begin_macro AND3
//! !use_macro AND and1
//! !use_macro AND and2
//! and1.Y = and2.$x
//! and2.A = $x
//! !end_macro AND3
//! "#;
//! // (Definitions only — no instantiations, so the model is empty.)
//! let program = parse(src, &NoIncludes).unwrap();
//! let assembled = assemble(&program, &AssembleOptions::default()).unwrap();
//! assert_eq!(assembled.ising.num_vars(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assemble;
mod assert;
mod error;
mod parse;
pub mod pin;
mod report;
mod sites;
mod stdgen;

pub use assemble::{
    assemble, assemble_incremental, AssembleOptions, Assembled, PinStyle, SplicedAssembly,
    SymbolTable,
};
pub use assert::{AssertExpr, AssertOutcome};
pub use error::QmasmError;
pub use parse::{parse, IncludeResolver, MapIncludes, NoIncludes, Program, Statement};
pub use report::{format_solution, Solution, SymbolValue};
pub use sites::{macro_sites, MacroSites};
pub use stdgen::stdcell_qmasm;

pub use qac_pbf::Ising;
