//! Property tests for the QMASM assembler: chain merging must preserve
//! the restricted energy landscape, and pin handling must agree between
//! bias and fix styles.

use proptest::prelude::*;
use qac_pbf::{bits_to_spins, Spin};
use qac_qmasm::{assemble, parse, AssembleOptions, NoIncludes, PinStyle};

/// A random QMASM program over symbols s0..s{n-1} with weights, couplings,
/// and chains.
#[derive(Debug, Clone)]
struct RandomProgram {
    n: usize,
    weights: Vec<(usize, f64)>,
    couplings: Vec<(usize, usize, f64)>,
    chains: Vec<(usize, usize, bool)>, // (a, b, equal?)
}

impl RandomProgram {
    fn to_source(&self) -> String {
        let mut out = String::new();
        for &(s, w) in &self.weights {
            out.push_str(&format!("s{s} {w}\n"));
        }
        for &(a, b, j) in &self.couplings {
            out.push_str(&format!("s{a} s{b} {j}\n"));
        }
        for &(a, b, eq) in &self.chains {
            out.push_str(&format!("s{a} {} s{b}\n", if eq { "=" } else { "!=" }));
        }
        out
    }
}

fn arb_program() -> impl Strategy<Value = RandomProgram> {
    (2usize..=6).prop_flat_map(|n| {
        let weights = proptest::collection::vec((0..n, -2.0f64..2.0), 0..4);
        let couplings = proptest::collection::vec((0..n, 0..n, -2.0f64..2.0), 0..6);
        let chains = proptest::collection::vec((0..n, 0..n, any::<bool>()), 0..3);
        (Just(n), weights, couplings, chains).prop_map(|(n, weights, couplings, chains)| {
            RandomProgram {
                n,
                weights,
                couplings: couplings.into_iter().filter(|&(a, b, _)| a != b).collect(),
                chains: chains.into_iter().filter(|&(a, b, _)| a != b).collect(),
            }
        })
    })
}

proptest! {
    #[test]
    fn merged_and_unmerged_chains_agree_on_chain_respecting_states(p in arb_program()) {
        // Make sure every symbol exists in both variants.
        let mut source = p.to_source();
        for s in 0..p.n {
            source.push_str(&format!("s{s} 0\n"));
        }
        let program = parse(&source, &NoIncludes).unwrap();
        let merged = match assemble(&program, &AssembleOptions::default()) {
            Ok(a) => a,
            Err(_) => return Ok(()), // contradictory chains: nothing to compare
        };
        let unmerged = assemble(
            &program,
            &AssembleOptions { merge_chains: false, ..Default::default() },
        )
        .unwrap();
        prop_assert!(merged.ising.num_vars() <= unmerged.ising.num_vars());

        // For every assignment of the merged model, build the expanded
        // assignment and compare energies up to the chain bonus:
        // each satisfied chain in the unmerged model contributes
        // −chain_strength (couplings are −K per chain statement).
        let nm = merged.ising.num_vars();
        prop_assume!(nm <= 12);
        let chain_bonus: f64 = p.chains.iter()
            .filter(|&&(a, b, _)| {
                // Chains that merged two distinct variables carry a −K
                // coupling in the unmerged model; self-chains (after
                // transitive merging) become constants there too, so
                // count every chain whose endpoints differ as symbols.
                let _ = (a, b);
                true
            })
            .count() as f64 * unmerged.chain_strength;
        for idx in 0..(1u64 << nm) {
            let spins = bits_to_spins(idx, nm);
            // Expand to the unmerged model through symbol values.
            let mut expanded = vec![Spin::Down; unmerged.ising.num_vars()];
            for s in 0..p.n {
                let name = format!("s{s}");
                let value = merged.symbols.value_of(&name, &spins).unwrap();
                let (var, parity) = unmerged.symbols.resolve(&name).unwrap();
                expanded[var] = match parity {
                    Spin::Up => Spin::from(value),
                    Spin::Down => Spin::from(!value),
                };
            }
            let e_merged = merged.ising.energy(&spins);
            let e_unmerged = unmerged.ising.energy(&expanded);
            prop_assert!(
                (e_merged - (e_unmerged + chain_bonus)).abs() < 1e-6,
                "merged {} vs unmerged {} (+bonus {})",
                e_merged, e_unmerged, chain_bonus
            );
        }
    }

    #[test]
    fn bias_and_fix_pins_share_ground_states(p in arb_program(), pin_sym in 0usize..6, pin_val in any::<bool>()) {
        let mut source = p.to_source();
        for s in 0..p.n {
            source.push_str(&format!("s{s} 0\n"));
        }
        let program = parse(&source, &NoIncludes).unwrap();
        let Ok(assembled) = assemble(&program, &AssembleOptions::default()) else {
            return Ok(());
        };
        let sym = format!("s{}", pin_sym % p.n);
        let pins = vec![(sym.clone(), pin_val)];
        let biased = assembled.pinned_model(&pins, PinStyle::Bias(64.0)).unwrap();
        let fixed = assembled.pinned_model(&pins, PinStyle::Fix).unwrap();
        let n = assembled.ising.num_vars();
        prop_assume!(n <= 10);
        let (pin_var, parity) = assembled.symbols.resolve(&sym).unwrap();
        let target = if parity == Spin::Up { Spin::from(pin_val) } else { Spin::from(!pin_val) };
        // Minimize both; the biased model's minima must have the pin
        // satisfied and coincide with the fixed model's minima on the
        // remaining variables.
        let mut best_bias = f64::INFINITY;
        let mut bias_minima = Vec::new();
        let mut best_fix = f64::INFINITY;
        let mut fix_minima = Vec::new();
        for idx in 0..(1u64 << n) {
            let spins = bits_to_spins(idx, n);
            let eb = biased.energy(&spins);
            if eb < best_bias - 1e-9 {
                best_bias = eb;
                bias_minima = vec![spins.clone()];
            } else if (eb - best_bias).abs() <= 1e-9 {
                bias_minima.push(spins.clone());
            }
            if spins[pin_var] == target {
                let ef = fixed.energy(&spins);
                if ef < best_fix - 1e-9 {
                    best_fix = ef;
                    fix_minima = vec![spins];
                } else if (ef - best_fix).abs() <= 1e-9 {
                    fix_minima.push(spins);
                }
            }
        }
        for m in &bias_minima {
            prop_assert_eq!(m[pin_var], target, "bias weight strong enough to enforce the pin");
        }
        // The two styles agree on the restriction.
        for m in &bias_minima {
            prop_assert!(fix_minima.contains(m));
        }
    }
}
