//! Reverse execution end to end, with the netlist simulator as oracle.
//!
//! The paper's headline trick is running a circuit *backward*: pin the
//! outputs, anneal, and read the inputs off the ground state (§5:
//! factoring with a multiplier, CLRS circuit satisfiability). These
//! tests drive that path through the batch engine and then hold every
//! returned input assignment up against `CombSim` — an independent
//! evaluation of the same netlist — so a decode bug cannot mark wrong
//! factors "valid" unchallenged.

use std::sync::Arc;

use qac::core::{compile, CompileOptions, Compiled, RunOptions, SolverChoice};
use qac::engine::{BatchEngine, EngineOptions, JobSpec};
use qac::netlist::CombSim;

const MULT: &str = r#"
    module mult (A, B, C);
      input [3:0] A;
      input [3:0] B;
      output [7:0] C;
      assign C = A * B;
    endmodule
"#;

const CIRCSAT: &str = r#"
    module circsat (a, b, c, y);
      input a, b, c;
      output y;
      wire [1:10] x;
      assign x[1] = a;
      assign x[2] = b;
      assign x[3] = c;
      assign x[4] = ~x[3];
      assign x[5] = x[1] | x[2];
      assign x[6] = ~x[4];
      assign x[7] = x[1] & x[2] & x[4];
      assign x[8] = x[5] | x[6];
      assign x[9] = x[6] | x[7];
      assign x[10] = x[8] & x[9] & x[7];
      assign y = x[10];
    endmodule
"#;

fn compile_top(source: &str, top: &str) -> Arc<Compiled> {
    Arc::new(compile(source, top, &CompileOptions::default()).unwrap())
}

/// An engine tuned for flaky stochastic jobs: reseed and retry until a
/// valid execution decodes (each retry is deterministic in the attempt
/// index, so the whole test is reproducible).
fn retrying_engine() -> BatchEngine {
    BatchEngine::new(EngineOptions {
        workers: 2,
        max_attempts: 5,
        retry_until_valid: true,
        ..Default::default()
    })
}

#[test]
fn multiplier_backward_recovers_factors_validated_by_simulation() {
    let program = compile_top(MULT, "mult");
    let sim = CombSim::new(&program.netlist).unwrap();
    let results = retrying_engine().run_batch(vec![JobSpec::new(
        Arc::clone(&program),
        RunOptions::new()
            .pin("C[7:0] := 143")
            .solver(SolverChoice::Tabu)
            .num_reads(30),
        "factor:143",
    )]);
    let outcome = results[0]
        .outcome()
        .unwrap_or_else(|| panic!("{:?}", results[0].status));
    let factorizations: Vec<(u64, u64)> = outcome
        .valid_solutions()
        .map(|s| (s.get("A").unwrap(), s.get("B").unwrap()))
        .collect();
    assert!(!factorizations.is_empty(), "143 = 11 × 13 should factor");
    for &(a, b) in &factorizations {
        // Arithmetic check *and* the independent netlist oracle: the
        // recovered inputs must drive the forward circuit to the pinned
        // product.
        assert_eq!(a * b, 143, "bogus factorization {a} × {b}");
        let simulated = sim.eval_words(&[("A", a), ("B", b)]).unwrap();
        assert_eq!(simulated["C"], 143, "netlist disagrees at A={a} B={b}");
    }
}

#[test]
fn multiplier_backward_on_a_prime_square_pins_both_factors() {
    // 49's only 4-bit factorization is 7 × 7, so a valid read determines
    // both inputs completely.
    let program = compile_top(MULT, "mult");
    let sim = CombSim::new(&program.netlist).unwrap();
    let results = retrying_engine().run_batch(vec![JobSpec::new(
        Arc::clone(&program),
        RunOptions::new()
            .pin("C[7:0] := 49")
            .solver(SolverChoice::Tabu)
            .num_reads(30),
        "factor:49",
    )]);
    let outcome = results[0]
        .outcome()
        .unwrap_or_else(|| panic!("{:?}", results[0].status));
    let mut saw_valid = false;
    for s in outcome.valid_solutions() {
        saw_valid = true;
        let (a, b) = (s.get("A").unwrap(), s.get("B").unwrap());
        assert_eq!((a, b), (7, 7));
        assert_eq!(sim.eval_words(&[("A", a), ("B", b)]).unwrap()["C"], 49);
    }
    assert!(saw_valid, "49 = 7 × 7 should factor");
}

#[test]
fn circsat_backward_assignments_satisfy_the_netlist() {
    let program = compile_top(CIRCSAT, "circsat");
    let sim = CombSim::new(&program.netlist).unwrap();
    let results = retrying_engine().run_batch(vec![JobSpec::new(
        Arc::clone(&program),
        RunOptions::new()
            .pin("y := true")
            .solver(SolverChoice::Exact),
        "circsat:y=1",
    )]);
    let outcome = results[0]
        .outcome()
        .unwrap_or_else(|| panic!("{:?}", results[0].status));
    let assignments: std::collections::BTreeSet<(u64, u64, u64)> = outcome
        .valid_solutions()
        .map(|s| {
            (
                s.get("a").unwrap(),
                s.get("b").unwrap(),
                s.get("c").unwrap(),
            )
        })
        .collect();
    // Every returned assignment must actually satisfy the circuit.
    for &(a, b, c) in &assignments {
        let simulated = sim.eval_words(&[("a", a), ("b", b), ("c", c)]).unwrap();
        assert_eq!(simulated["y"], 1, "a={a} b={b} c={c} does not satisfy");
    }
    // And CLRS's circuit has exactly one satisfying assignment: (1, 1, 0).
    assert_eq!(assignments.into_iter().collect::<Vec<_>>(), [(1, 1, 0)]);
}

#[test]
fn mixed_reverse_batch_runs_concurrently_and_every_job_validates() {
    // Both reverse problems as one concurrent batch: the engine's
    // intended shape. Each job's solutions are validated against its own
    // program's netlist.
    let mult = compile_top(MULT, "mult");
    let circsat = compile_top(CIRCSAT, "circsat");
    let jobs = vec![
        JobSpec::new(
            Arc::clone(&mult),
            RunOptions::new()
                .pin("C[7:0] := 15")
                .solver(SolverChoice::Tabu)
                .num_reads(30),
            "factor:15",
        ),
        JobSpec::new(
            Arc::clone(&circsat),
            RunOptions::new()
                .pin("y := true")
                .solver(SolverChoice::Exact),
            "circsat:y=1",
        ),
        JobSpec::new(
            Arc::clone(&mult),
            RunOptions::new()
                .pin("C[7:0] := 21")
                .solver(SolverChoice::Tabu)
                .num_reads(30),
            "factor:21",
        ),
    ];
    let results = retrying_engine().run_batch(jobs);
    assert_eq!(results.len(), 3);
    for (result, (program, product)) in
        results
            .iter()
            .zip([(&mult, 15), (&circsat, 0), (&mult, 21)])
    {
        let outcome = result
            .outcome()
            .unwrap_or_else(|| panic!("{}: {:?}", result.label, result.status));
        let sim = CombSim::new(&program.netlist).unwrap();
        let mut valid = 0usize;
        for s in outcome.valid_solutions() {
            valid += 1;
            if product > 0 {
                let (a, b) = (s.get("A").unwrap(), s.get("B").unwrap());
                assert_eq!(a * b, product, "{}", result.label);
                assert_eq!(sim.eval_words(&[("A", a), ("B", b)]).unwrap()["C"], product);
            } else {
                let inputs: Vec<(&str, u64)> = [("a", "a"), ("b", "b"), ("c", "c")]
                    .iter()
                    .map(|&(port, _)| (port, s.get(port).unwrap()))
                    .collect();
                assert_eq!(sim.eval_words(&inputs).unwrap()["y"], 1, "{}", result.label);
            }
        }
        assert!(valid > 0, "{}: no valid execution decoded", result.label);
    }
}
