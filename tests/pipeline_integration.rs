//! Cross-crate integration tests: the full pipeline against the logic
//! simulator, EDIF/QMASM round trips, and the paper's three showcase
//! problems end to end.

use qac::core::{compile, CompileOptions, RunOptions, SolverChoice};
use qac::csp::mapcolor;
use qac::netlist::CombSim;
use qac::solvers::ExactSolver;

/// For a compiled combinational program, every logical-model ground state
/// must agree with netlist simulation: the paper's central claim that
/// "H(σ̄) is minimized exactly when [the ports] correspond to a valid
/// relation of inputs and outputs".
fn assert_ground_states_match_simulation(source: &str, top: &str) {
    let compiled = compile(source, top, &CompileOptions::default()).unwrap();
    let model = &compiled.assembled.ising;
    assert!(
        model.num_vars() <= 26,
        "{top}: model too large for exhaustive check ({} vars)",
        model.num_vars()
    );
    let (energy, minima) = ExactSolver::new().ground_states(model, 1e-6);
    assert!(
        (energy - compiled.expected_ground_energy).abs() < 1e-6,
        "{top}: ground energy {energy} differs from expected {}",
        compiled.expected_ground_energy
    );
    let sim = CombSim::new(&compiled.netlist).unwrap();
    let input_ports: Vec<_> = compiled.netlist.input_ports().to_vec();
    let total_input_bits: usize = input_ports.iter().map(|p| p.width()).sum();
    assert_eq!(
        minima.len(),
        1 << total_input_bits,
        "{top}: expected one ground state per input combination"
    );
    for spins in &minima {
        let solution = compiled.assembled.interpret(spins);
        // Feed the ground state's inputs to the simulator and compare
        // every output port.
        let inputs: Vec<(&str, u64)> = input_ports
            .iter()
            .map(|p| (p.name.as_str(), solution.get(&p.name).unwrap()))
            .collect();
        let simulated = sim.eval_words(&inputs).unwrap();
        for port in compiled.netlist.output_ports() {
            assert_eq!(
                solution.get(&port.name).unwrap(),
                simulated[&port.name],
                "{top}: output {} mismatch at inputs {inputs:?}",
                port.name
            );
        }
    }
}

#[test]
fn ground_states_equal_simulation_figure2() {
    assert_ground_states_match_simulation(
        r#"
        module circuit (s, a, b, c);
          input s, a, b;
          output [1:0] c;
          assign c = s ? a+b : a-b;
        endmodule
        "#,
        "circuit",
    );
}

#[test]
fn ground_states_equal_simulation_comparator() {
    assert_ground_states_match_simulation(
        r#"
        module cmp (a, b, lt, eq);
          input [1:0] a, b;
          output lt, eq;
          assign lt = a < b;
          assign eq = a == b;
        endmodule
        "#,
        "cmp",
    );
}

#[test]
fn ground_states_equal_simulation_parity() {
    assert_ground_states_match_simulation(
        r#"
        module parity (x, p);
          input [4:0] x;
          output p;
          assign p = ^x;
        endmodule
        "#,
        "parity",
    );
}

#[test]
fn ground_states_equal_simulation_mux_tree() {
    assert_ground_states_match_simulation(
        r#"
        module pick (s, d, y);
          input [1:0] s;
          input [3:0] d;
          output y;
          assign y = d[s];
        endmodule
        "#,
        "pick",
    );
}

#[test]
fn circsat_backward_and_forward() {
    let source = r#"
        module circsat (a, b, c, y);
          input a, b, c;
          output y;
          wire [1:10] x;
          assign x[1] = a;
          assign x[2] = b;
          assign x[3] = c;
          assign x[4] = ~x[3];
          assign x[5] = x[1] | x[2];
          assign x[6] = ~x[4];
          assign x[7] = x[1] & x[2] & x[4];
          assign x[8] = x[5] | x[6];
          assign x[9] = x[6] | x[7];
          assign x[10] = x[8] & x[9] & x[7];
          assign y = x[10];
        endmodule
    "#;
    let compiled = compile(source, "circsat", &CompileOptions::default()).unwrap();
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("y := true")
                .solver(SolverChoice::Exact),
        )
        .unwrap();
    let solutions: Vec<(u64, u64, u64)> = outcome
        .valid_solutions()
        .map(|s| {
            (
                s.get("a").unwrap(),
                s.get("b").unwrap(),
                s.get("c").unwrap(),
            )
        })
        .collect();
    // The paper: the hardware returns a and b True, c False.
    assert!(solutions.contains(&(1, 1, 0)));
    // And that assignment is the only one.
    let distinct: std::collections::BTreeSet<_> = solutions.into_iter().collect();
    assert_eq!(distinct.len(), 1);
}

#[test]
fn factoring_15_exactly() {
    // A 15 = 3 × 5 factoring instance small enough for the exact solver
    // via a 2×... use the 4×4 multiplier and tabu (exact would enumerate
    // 2^92 — use the sampler).
    let source = r#"
        module mult (A, B, C);
          input [3:0] A;
          input [3:0] B;
          output [7:0] C;
          assign C = A * B;
        endmodule
    "#;
    let compiled = compile(source, "mult", &CompileOptions::default()).unwrap();
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("C[7:0] := 15")
                .solver(SolverChoice::Tabu)
                .num_reads(60),
        )
        .unwrap();
    let factorizations: std::collections::BTreeSet<(u64, u64)> = outcome
        .valid_solutions()
        .map(|s| (s.get("A").unwrap(), s.get("B").unwrap()))
        .collect();
    assert!(!factorizations.is_empty(), "15 should factor");
    for &(a, b) in &factorizations {
        assert_eq!(a * b, 15);
    }
}

#[test]
fn map_coloring_backward_with_verification() {
    let source = r#"
        module australia (NSW, QLD, SA, VIC, WA, NT, ACT, valid);
          input [1:0] NSW, QLD, SA, VIC, WA, NT, ACT;
          output valid;
          assign valid = WA != NT && WA != SA && NT != SA && NT != QLD
                      && SA != QLD && SA != NSW && SA != VIC && QLD != NSW
                      && NSW != VIC && NSW != ACT;
        endmodule
    "#;
    let compiled = compile(source, "australia", &CompileOptions::default()).unwrap();
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("valid := true")
                .solver(SolverChoice::Sa { sweeps: 384 })
                .num_reads(300)
                .seed(11),
        )
        .unwrap();
    assert!(outcome.valid_fraction() > 0.0, "no valid coloring sampled");
    for solution in outcome.valid_solutions() {
        for (a, b) in mapcolor::AUSTRALIA_ADJACENCY {
            assert_ne!(
                solution.get(a).unwrap(),
                solution.get(b).unwrap(),
                "{a}/{b} conflict"
            );
        }
    }
}

#[test]
fn csp_and_annealer_agree_on_satisfiability() {
    // Ring of 5 with 2 colors is UNSAT for both solvers; with 3 it is SAT.
    for (colors, satisfiable) in [(2usize, false), (3usize, true)] {
        // CSP side.
        let model = mapcolor::ring(5, colors);
        assert_eq!(model.solve().is_some(), satisfiable, "CSP, {colors} colors");
        // Annealer side: build the ring verifier in Verilog.
        let width = if colors <= 2 { 1 } else { 2 };
        let decls: Vec<String> = (0..5)
            .map(|i| format!("input [{}:0] R{i};", width - 1))
            .collect();
        let mut constraints: Vec<String> = (0..5)
            .map(|i| format!("R{i} != R{}", (i + 1) % 5))
            .collect();
        // Domain restriction for 3 colors on 2 bits: R < 3.
        if colors == 3 {
            for i in 0..5 {
                constraints.push(format!("R{i} < 3"));
            }
        }
        let source = format!(
            "module ring (R0, R1, R2, R3, R4, valid);\n{}\noutput valid;\nassign valid = {};\nendmodule",
            decls.join("\n"),
            constraints.join(" && ")
        );
        let compiled = compile(&source, "ring", &CompileOptions::default()).unwrap();
        let outcome = compiled
            .run(
                &RunOptions::new()
                    .pin("valid := true")
                    .solver(SolverChoice::Tabu)
                    .num_reads(40),
            )
            .unwrap();
        assert_eq!(
            outcome.valid_solutions().count() > 0,
            satisfiable,
            "annealer, {colors} colors"
        );
    }
}

#[test]
fn edif_round_trip_preserves_compiled_behaviour() {
    use qac::edif::{from_edif, to_edif};
    let compiled = compile(
        r#"
        module m (x, y, z);
          input [2:0] x, y;
          output [2:0] z;
          assign z = (x & y) ^ (x | y);
        endmodule
        "#,
        "m",
        &CompileOptions::default(),
    )
    .unwrap();
    let text = to_edif(&compiled.netlist);
    let back = from_edif(&text).unwrap();
    let sim_a = CombSim::new(&compiled.netlist).unwrap();
    let sim_b = CombSim::new(&back).unwrap();
    for x in 0..8u64 {
        for y in 0..8u64 {
            let a = sim_a.eval_words(&[("x", x), ("y", y)]).unwrap();
            let b = sim_b.eval_words(&[("x", x), ("y", y)]).unwrap();
            assert_eq!(a, b, "x={x} y={y}");
        }
    }
}

#[test]
fn qmasm_text_reparses_and_reassembles_identically() {
    use qac::qmasm::{assemble, parse, AssembleOptions, MapIncludes};
    let compiled = compile(
        r#"
        module add (a, b, s);
          input [2:0] a, b;
          output [2:0] s;
          assign s = a + b;
        endmodule
        "#,
        "add",
        &CompileOptions::default(),
    )
    .unwrap();
    let mut includes = MapIncludes::new();
    includes.insert("stdcell.qmasm", compiled.stdcell.clone());
    let program = parse(&compiled.qmasm, &includes).unwrap();
    let reassembled = assemble(&program, &AssembleOptions::default()).unwrap();
    assert_eq!(
        reassembled.ising.num_vars(),
        compiled.assembled.ising.num_vars()
    );
    // Identical Hamiltonian coefficients.
    assert_eq!(reassembled.ising, compiled.assembled.ising);
}

#[test]
fn dwave_hardware_model_runs_figure2() {
    use qac::solvers::DWaveSimOptions;
    let compiled = compile(
        r#"
        module circuit (s, a, b, c);
          input s, a, b;
          output [1:0] c;
          assign c = s ? a+b : a-b;
        endmodule
        "#,
        "circuit",
        &CompileOptions::default(),
    )
    .unwrap();
    let sim_options = DWaveSimOptions {
        topology: qac::solvers::TopologySpec::Chimera { m: 8 },
        anneal_sweeps: 256,
        noise_sigma: 0.002,
        ..Default::default()
    };
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("s := 1")
                .pin("a := 1")
                .pin("b := 0")
                .solver(SolverChoice::DWave(Box::new(sim_options)))
                .num_reads(400),
        )
        .unwrap();
    let hw = outcome.hardware.expect("hardware stats present");
    assert!(hw.physical_qubits >= compiled.stats.logical_variables);
    assert!(hw.time_us > 0.0);
    let best = outcome
        .valid_solutions()
        .next()
        .expect("hardware model solves 1+0");
    assert_eq!(best.get("c"), Some(1));
}

#[test]
fn sequential_unrolled_counter_runs_backward() {
    let source = r#"
        module count (clk, inc, reset, out);
          input clk, inc, reset;
          output [5:0] out;
          reg [5:0] var;
          always @(posedge clk)
            if (reset) var <= 0;
            else if (inc) var <= var + 1;
          assign out = var;
        endmodule
    "#;
    let options = CompileOptions {
        unroll_steps: Some(2),
        ..Default::default()
    };
    let compiled = compile(source, "count", &options).unwrap();
    // Pin the final state to 2: both steps must increment.
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("ff_final[5:0] := 2")
                .pin("clk@0 := 0")
                .pin("clk@1 := 0")
                .solver(SolverChoice::Tabu)
                .num_reads(40),
        )
        .unwrap();
    let best = outcome
        .valid_solutions()
        .next()
        .expect("count of 2 reachable");
    assert_eq!(best.get("inc@0"), Some(1));
    assert_eq!(best.get("inc@1"), Some(1));
    assert_eq!(best.get("reset@0"), Some(0));
    assert_eq!(best.get("reset@1"), Some(0));
}
