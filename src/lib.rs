//! QAC — a compiler from classical (Verilog) code to quantum annealers.
//!
//! This is the umbrella crate of the workspace: it re-exports every
//! subsystem so examples, integration tests, and downstream users can
//! depend on a single crate. See the README for the architecture map and
//! DESIGN.md for the paper-reproduction inventory.
//!
//! The subsystems, bottom-up:
//!
//! * [`pbf`] — Ising/QUBO models, scaling, roof duality;
//! * [`simplex`] — the LP solver behind gate synthesis;
//! * [`gatesynth`] — truth table → Hamiltonian synthesis, Table 5 cells;
//! * [`netlist`] — gate-level IR, simulation, optimization, unrolling;
//! * [`verilog`] — the Verilog frontend;
//! * [`edif`] — EDIF interchange;
//! * [`qmasm`] — the QMASM macro assembler;
//! * [`chimera`] — hardware topology and minor embedding;
//! * [`solvers`] — annealers and classical samplers;
//! * [`csp`] — the classical constraint-solver baseline;
//! * [`analysis`] — the multi-pass static analyzer and lint framework;
//! * [`core`] — the end-to-end pipeline ([`core::compile`] / run);
//! * [`engine`] — the deterministic concurrent batch-run engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qac_analysis as analysis;
pub use qac_chimera as chimera;
pub use qac_core as core;
pub use qac_csp as csp;
pub use qac_edif as edif;
pub use qac_engine as engine;
pub use qac_gatesynth as gatesynth;
pub use qac_netlist as netlist;
pub use qac_pbf as pbf;
pub use qac_qmasm as qmasm;
pub use qac_simplex as simplex;
pub use qac_solvers as solvers;
pub use qac_verilog as verilog;
