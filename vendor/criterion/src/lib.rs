//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `Criterion`/`Bencher`/`criterion_group!`/`criterion_main!`
//! surface the workspace's benches use, backed by a plain wall-clock
//! timer: each `bench_function` runs a short warm-up, then `sample_size`
//! timed samples, and prints min/median/mean per iteration. No statistics
//! beyond that, no HTML reports, no command-line filtering.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark harness configuration and driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: one untimed run (also sizes the per-sample iteration
        // count so fast benchmarks aren't dominated by timer overhead).
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed;
        let iters_per_sample = if per_iter < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000)
                as u64
        } else {
            1
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed / iters_per_sample as u32);
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{id:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples x {iters_per_sample} iters)",
            min, median, mean, samples.len()
        );
        self
    }

    /// Runs registered group functions (called from `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// Per-sample timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its output alive so it isn't optimized out.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevents the optimizer from deleting a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a named group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_trivial
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn sample_size_floor() {
        let c = Criterion::default().sample_size(0);
        assert_eq!(c.sample_size, 2);
    }
}
