//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API over `std::sync`. Poison is translated to a panic, which matches
//! parking_lot's behavior of not having poisoning at all for the
//! panic-free code paths this workspace runs.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5usize);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }
}
