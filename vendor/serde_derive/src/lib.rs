//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on model types but
//! never calls a serializer (there is no serde_json in the dependency
//! set), so the derives can expand to nothing: the attribute positions
//! stay valid and the code compiles unchanged.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
