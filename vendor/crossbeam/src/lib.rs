//! Offline stand-in for the `crossbeam` crate: the scoped-thread API the
//! workspace uses, implemented on `std::thread::scope` (stabilized long
//! after crossbeam popularized the pattern).
//!
//! Semantics difference kept deliberately small: real `crossbeam::scope`
//! returns `Err` when a child panics; `std::thread::scope` resumes the
//! panic on the parent. Every call site in this workspace immediately
//! `.expect(..)`s the result, so the observable behavior (abort the test /
//! propagate the panic) is identical.

#![forbid(unsafe_code)]

use std::thread;

/// A scope handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (crossbeam
    /// convention) so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which spawned threads are joined before returning.
///
/// # Errors
/// Never returns `Err`; child panics propagate to the caller (see the
/// crate docs for why this matches every call site's expectations).
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias, for `crossbeam::thread::scope` paths.
pub mod thread_mod {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_share_stack_data() {
        let counter = AtomicUsize::new(0);
        let data: Vec<usize> = (0..100).collect();
        super::scope(|scope| {
            for chunk in data.chunks(25) {
                let counter = &counter;
                scope.spawn(move |_| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::SeqCst);
                });
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), (0..100).sum::<usize>());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            let counter = &counter;
            scope.spawn(move |inner| {
                inner.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
