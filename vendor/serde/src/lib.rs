//! Offline stand-in for `serde`: marker traits plus the no-op derive
//! macros (feature `derive`). The workspace annotates model types for
//! future serialization but contains no serializer, so empty traits keep
//! every `use serde::{Serialize, Deserialize}` and `#[derive(..)]` site
//! compiling without behavioral change.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
