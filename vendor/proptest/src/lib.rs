//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use —
//! [`Strategy`] with `prop_map`/`prop_flat_map`/`prop_recursive`,
//! range/tuple/`Just`/collection strategies, `any::<T>()`, the
//! [`proptest!`] macro family, and `prop_assert*`/`prop_assume!` — as a
//! plain randomized test runner. Differences from the real crate:
//!
//! * **no shrinking** — a failing case reports its inputs (every
//!   generated binding is `Debug`-printed) but is not minimized;
//! * **deterministic seeding** — the RNG is seeded from the test name, so
//!   failures reproduce exactly across runs;
//! * regression files (`proptest-regressions/`) are ignored.

#![forbid(unsafe_code)]

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG derived from the test name.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// How a single test case ended abnormally.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case's preconditions were not met (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (filtered case) with the given reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real crate defaults to 256; 64 keeps the heavier
        // exhaustive-enumeration properties in this workspace fast while
        // still exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property test: generate-and-check until `config.cases`
/// accepted cases pass. Called by the [`proptest!`] expansion.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                let limit = config.cases.saturating_mul(16).saturating_add(256);
                assert!(
                    rejected < limit,
                    "property `{name}`: too many rejected cases ({rejected}); \
                     weaken the prop_assume! or strengthen the strategy"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {accepted}: {msg}")
            }
        }
    }
}

/// A generator of random values (the real crate's `Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy: `f` builds a second strategy from each
    /// generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values passing `f` (regenerates on failure; gives up and
    /// panics after many consecutive rejections).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Recursive strategies: `recurse` receives a strategy for the
    /// "smaller" case and returns the composite. `depth` bounds recursion;
    /// the remaining size parameters are accepted for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        // Level 0 is the leaf; level k draws sub-terms from a uniformly
        // random shallower level, so generated structures mix depths.
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let choices = levels.clone();
            let inner = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                let i = rng.rng().gen_range(0..choices.len());
                choices[i].generate(rng)
            }));
            levels.push(recurse(inner).boxed());
        }
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let i = rng.rng().gen_range(0..levels.len());
            levels[i].generate(rng)
        }))
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let this = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| this.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1024 consecutive values",
            self.whence
        )
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The standard strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for ArbitraryStrategy<T> {
    fn clone(&self) -> ArbitraryStrategy<T> {
        ArbitraryStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a default full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_rand {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_via_rand!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Anything usable as a collection size: an exact `usize` or a range.
    pub trait IntoSize {
        /// Draws a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    impl IntoSize for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    /// A `Vec` of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform_fns {
        ($($fname:ident => $n:literal),*) => {$(
            /// An array of values from `element`.
            pub fn $fname<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*};
    }
    uniform_fns!(uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform8 => 8);

    /// Strategy returned by the `uniformN` functions.
    #[derive(Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

/// The usual glob import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    /// `prop::` paths (e.g. `prop::collection::vec`).
    pub mod prop {
        pub use crate::{array, collection};
    }
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let choices = vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::OneOf(choices)
    }};
}

/// Strategy built by [`prop_oneof!`].
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> OneOf<T> {
        OneOf(self.0.clone())
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.0.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        let i = rng.rng().gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                l, r, stringify!($left), stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Rejects (skips) the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` that runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(&($cfg), stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                (move || -> $crate::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u8..=6), c in -1.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!((-1.0..1.0).contains(&c), "c out of range: {c}");
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<bool>(), 3..6), w in crate::collection::vec(0u8..4, 2usize)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 2);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1usize), Just(2usize), (5usize..7).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || x == 2 || x == 50 || x == 60, "x = {x}");
        }

        #[test]
        fn flat_map_dependent((n, v) in (1usize..5).prop_flat_map(|n| (Just(n), crate::collection::vec(any::<u8>(), n)))) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn recursive_bounded(t in Just(Tree::Leaf(0)).prop_map(|t| t).boxed().prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })) {
            prop_assert!(depth(&t) <= 3, "depth {}", depth(&t));
        }

        #[test]
        fn assume_rejects(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn arrays(a in crate::array::uniform4(0u8..3)) {
            prop_assert!(a.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::TestRng::from_name("x");
        let mut r2 = crate::TestRng::from_name("x");
        let s = (0usize..1000, crate::collection::vec(any::<u64>(), 0..5));
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
