//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this crate reimplements the small API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality and fully
//! deterministic under a fixed seed, which is all the samplers and the
//! embedder require (they never depend on the exact stream of the real
//! `rand` crate, only on seed-reproducibility).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free (bias negligible at 64 bits) bounded integer draw.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire's multiply-shift reduction.
    let x = rng.next_u64();
    ((x as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(0usize..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is a fixed point with negligible probability"
        );
    }

    #[test]
    fn roughly_uniform_bool() {
        let mut rng = StdRng::seed_from_u64(13);
        let ones = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&ones), "ones = {ones}");
    }
}
