//! Four-coloring the map of Australia (paper §5.4, Figure 5, Listing 7).
//!
//! ```text
//! cargo run --release --example map_color
//! ```
//!
//! The Verilog module is a coloring *verifier*; running it backward with
//! `valid := true` samples proper four-colorings. The same model is also
//! solved with the classical CSP baseline (the paper's Listing 8 /
//! Chuffed comparison) and each annealer sample is checked against the
//! adjacency constraints.

use std::collections::BTreeSet;

use qac_core::{compile, CompileOptions, RunOptions, SolverChoice};
use qac_csp::mapcolor;

/// Paper Listing 7 verbatim.
const AUSTRALIA: &str = r#"
    module australia (NSW, QLD, SA, VIC, WA, NT, ACT, valid);
      input [1:0] NSW, QLD, SA, VIC, WA, NT, ACT;
      output valid;
      assign valid = WA != NT && WA != SA && NT != SA && NT != QLD
                  && SA != QLD && SA != NSW && SA != VIC && QLD != NSW
                  && NSW != VIC && NSW != ACT;
    endmodule
"#;

fn main() {
    let compiled =
        compile(AUSTRALIA, "australia", &CompileOptions::default()).expect("Listing 7 compiles");
    println!(
        "compiled: {} lines of Verilog → {} lines of EDIF → {} lines of QMASM",
        compiled.stats.verilog_lines, compiled.stats.edif_lines, compiled.stats.qmasm_lines
    );
    println!("logical variables: {}", compiled.stats.logical_variables);

    // Backward: pin valid := true, sample colorings.
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("valid := true")
                .solver(SolverChoice::Sa { sweeps: 384 })
                .num_reads(500),
        )
        .expect("run succeeds");
    println!(
        "valid fraction over 500 anneals: {:.2}",
        outcome.valid_fraction()
    );
    println!("{}", outcome.quality());

    // Verify every valid sample against the adjacency list and count
    // distinct colorings — "the D-Wave version samples from the space of
    // solutions" (§6.2).
    let mut distinct: BTreeSet<Vec<u64>> = BTreeSet::new();
    for solution in outcome.valid_solutions() {
        let color = |r: &str| {
            solution
                .get(r)
                .unwrap_or_else(|| panic!("missing region {r}"))
        };
        for (a, b) in mapcolor::AUSTRALIA_ADJACENCY {
            assert_ne!(color(a), color(b), "{a} and {b} share color");
        }
        distinct.insert(
            mapcolor::AUSTRALIA_REGIONS
                .iter()
                .map(|r| color(r))
                .collect(),
        );
    }
    println!("distinct valid colorings sampled: {}", distinct.len());
    assert!(!distinct.is_empty(), "no valid coloring found");

    // Show one coloring the way the paper does.
    let sample = outcome.valid_solutions().next().unwrap();
    let rendered: Vec<String> = mapcolor::AUSTRALIA_REGIONS
        .iter()
        .map(|r| format!("{r} = {}", sample.get(r).unwrap()))
        .collect();
    println!("example coloring: {{{}}}", rendered.join(", "));

    // The classical baseline (Listing 8): same constraints, CP solver.
    println!("\n== classical CSP baseline (Listing 8) ==");
    let model = mapcolor::australia(4);
    println!("{}", model.to_minizinc());
    let (solution, stats) = model.solve_with_stats();
    let solution = solution.expect("Australia is four-colorable");
    println!(
        "CSP solution after {} assignments / {} backtracks:",
        stats.assignments, stats.backtracks
    );
    let rendered: Vec<String> = (0..model.num_vars())
        .map(|v| format!("{} = {}", model.name(v), solution[v]))
        .collect();
    println!("{{{}}}", rendered.join(", "));
    // Chuffed-like determinism: the CSP solver returns the same coloring
    // every time, while the annealer samples many.
    let again = model.solve().unwrap();
    assert_eq!(solution, again);

    println!("\nmap_color: OK");
}
