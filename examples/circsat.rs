//! Circuit satisfiability (paper §5.2, Figure 4, Listing 5).
//!
//! ```text
//! cargo run --release --example circsat
//! ```
//!
//! The Verilog module is a *verifier*: given inputs a, b, c it outputs
//! whether the CLRS circuit is satisfied. We run it backward — pin
//! `y := 1` and let the annealer discover the satisfying assignment —
//! then check the answer by running the program forward, "as the
//! definition of NP allows" (§5.2).

use qac_core::{compile, CompileOptions, RunOptions, SolverChoice};
use qac_netlist::CombSim;

/// Paper Listing 5 verbatim.
const CIRCSAT: &str = r#"
    module circsat (a, b, c, y);
      input a, b, c;
      output y;
      wire [1:10] x;
      assign x[1] = a;
      assign x[2] = b;
      assign x[3] = c;
      assign x[4] = ~x[3];
      assign x[5] = x[1] | x[2];
      assign x[6] = ~x[4];
      assign x[7] = x[1] & x[2] & x[4];
      assign x[8] = x[5] | x[6];
      assign x[9] = x[6] | x[7];
      assign x[10] = x[8] & x[9] & x[7];
      assign y = x[10];
    endmodule
"#;

fn main() {
    let compiled =
        compile(CIRCSAT, "circsat", &CompileOptions::default()).expect("Listing 5 compiles");
    println!(
        "compiled: {} gates, {} logical variables",
        compiled.stats.netlist.cells, compiled.stats.logical_variables
    );

    // Backward: pin the output True, solve for the inputs.
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("y := true")
                .solver(SolverChoice::Sa { sweeps: 256 })
                .num_reads(200),
        )
        .expect("run succeeds");

    println!(
        "valid fraction over 200 anneals: {:.2}",
        outcome.valid_fraction()
    );
    let solution = outcome
        .valid_solutions()
        .next()
        .expect("the circuit is satisfiable");
    let (a, b, c) = (
        solution.get("a").unwrap(),
        solution.get("b").unwrap(),
        solution.get("c").unwrap(),
    );
    println!("satisfying assignment: a={a} b={b} c={c}");

    // The paper reports a = b = 1, c = 0.
    assert_eq!(
        (a, b, c),
        (1, 1, 0),
        "CLRS's circuit has exactly this satisfying assignment"
    );

    // Forward verification on the gate-level netlist (polynomial time).
    let sim = CombSim::new(&compiled.netlist).expect("combinational");
    let out = sim
        .eval_words(&[("a", a), ("b", b), ("c", c)])
        .expect("simulation succeeds");
    assert_eq!(out["y"], 1, "forward run confirms satisfaction");
    println!("forward verification: y = {}", out["y"]);

    // Demonstrate the UNSAT behaviour the paper describes: constrain the
    // remaining inputs so no satisfying assignment exists; the annealer
    // "would return an invalid solution" — which forward checking rejects.
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("y := true")
                .pin("a := 0") // with a=0, x7=0 forces y=0: unsatisfiable
                .solver(SolverChoice::Exact),
        )
        .expect("run succeeds");
    assert_eq!(outcome.valid_solutions().count(), 0);
    println!("with a pinned to 0 the instance is UNSAT: 0 valid samples (as expected)");
    println!("\ncircsat: OK");
}
