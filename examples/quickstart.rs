//! Quickstart: compile the paper's Figure 2 circuit and run it both ways.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The circuit computes `c = s ? a+b : a−b` over 1-bit inputs. We compile
//! it through every pipeline stage (Verilog → netlist → EDIF → QMASM →
//! logical Ising model), then run it *forward* (pin the inputs, read `c`)
//! and *backward* (pin `c`, solve for inputs) — the capability the paper
//! calls "central to the importance of our work" (§4.3.6).

use qac_core::{compile, CompileOptions, RunOptions, SolverChoice};

const FIGURE2: &str = r#"
    module circuit (s, a, b, c);
      input s, a, b;
      output [1:0] c;
      assign c = s ? a+b : a-b;
    endmodule
"#;

fn main() {
    let compiled =
        compile(FIGURE2, "circuit", &CompileOptions::default()).expect("Figure 2 compiles");

    println!("== Pipeline artifacts (paper Figures 2–3) ==");
    println!("Verilog lines:      {}", compiled.stats.verilog_lines);
    println!("EDIF lines:         {}", compiled.stats.edif_lines);
    println!("QMASM lines:        {}", compiled.stats.qmasm_lines);
    println!("gate cells:         {}", compiled.stats.netlist.cells);
    println!("logical variables:  {}", compiled.stats.logical_variables);
    println!("logical terms:      {}", compiled.stats.logical_terms);
    println!();
    println!("EDIF excerpt:");
    for line in compiled.edif.lines().take(8) {
        println!("  {line}");
    }
    println!("  ...");
    println!();
    println!("QMASM excerpt:");
    for line in compiled.qmasm.lines().take(10) {
        println!("  {line}");
    }
    println!("  ...");

    // Forward: s=1 (add), a=1, b=1 → c should be 2.
    println!("\n== Forward: pin s=1, a=1, b=1 ==");
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("s := 1")
                .pin("a := 1")
                .pin("b := 1")
                .solver(SolverChoice::Exact),
        )
        .expect("run succeeds");
    let best = outcome.best().expect("samples exist");
    println!(
        "c = {} (valid execution: {})",
        best.values.get("c").unwrap(),
        best.valid
    );
    assert_eq!(best.values.get("c"), Some(2));

    // Backward: pin c=2, s=1; the annealer must discover a=1, b=1.
    println!("\n== Backward: pin c=2, s=1; solve for a, b ==");
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("c[1:0] := 10")
                .pin("s := 1")
                .solver(SolverChoice::Exact),
        )
        .expect("run succeeds");
    for solution in outcome.valid_solutions() {
        println!(
            "a = {}, b = {}",
            solution.get("a").unwrap(),
            solution.get("b").unwrap()
        );
    }
    let best = outcome
        .valid_solutions()
        .next()
        .expect("2 = 1 + 1 is reachable");
    assert_eq!(best.get("a").unwrap() + best.get("b").unwrap(), 2);

    // Stochastic run, as on real hardware: simulated annealing samples.
    println!("\n== Stochastic sampling (simulated annealing, 100 reads) ==");
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("s := 0")
                .pin("c[1:0] := 11") // c = 3 = a − b mod 4 ⇒ a=0, b=1
                .solver(SolverChoice::Sa { sweeps: 256 })
                .num_reads(100),
        )
        .expect("run succeeds");
    println!("valid fraction: {:.2}", outcome.valid_fraction());
    println!("{}", outcome.quality());
    let best = outcome.valid_solutions().next().expect("3 = 0 − 1 mod 4");
    println!(
        "a = {}, b = {}",
        best.get("a").unwrap(),
        best.get("b").unwrap()
    );
    assert_eq!(
        (best.get("a").unwrap() as i64 - best.get("b").unwrap() as i64).rem_euclid(4),
        3
    );
    println!("\nquickstart: OK");
}
