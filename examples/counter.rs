//! Sequential logic: the paper's 6-bit counter (§4.3.3, Listing 3),
//! time-unrolled into a pure function.
//!
//! ```text
//! cargo run --release --example counter [steps]
//! ```
//!
//! Stateful programs trade "the program's time dimension for a second
//! spatial dimension": the design is replicated once per time step, with
//! each flip-flop's D at step t feeding its Q at step t+1. We compile the
//! counter over several steps, run it forward, and then run *time itself
//! backward* — pinning the final count and solving for the per-step
//! control inputs that reach it.

use qac_core::{compile, CompileOptions, RunOptions, SolverChoice};

/// Paper Listing 3 verbatim.
const COUNTER: &str = r#"
    module count (clk, inc, reset, out);
      input clk;
      input inc;
      input reset;
      output [5:0] out;
      reg [5:0] var;
      always @(posedge clk)
        if (reset)
          var <= 0;
        else
          if (inc)
            var <= var + 1;
      assign out = var;
    endmodule
"#;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    // The paper notes the unrolling "exacts a heavy toll in qubit count":
    // show how the logical model grows with the number of steps.
    println!("== qubit toll of time-unrolling (§4.3.3) ==");
    println!("{:>6} {:>12} {:>12}", "steps", "gate cells", "logical vars");
    for t in 1..=steps.max(3) {
        let opts = CompileOptions {
            unroll_steps: Some(t),
            ..Default::default()
        };
        let c = compile(COUNTER, "count", &opts).expect("counter compiles");
        println!(
            "{t:>6} {:>12} {:>12}",
            c.stats.netlist.cells, c.stats.logical_variables
        );
    }

    let opts = CompileOptions {
        unroll_steps: Some(steps),
        ..Default::default()
    };
    let compiled = compile(COUNTER, "count", &opts).expect("counter compiles");

    // Forward: increment on every step; out@t counts 0, 1, 2, …
    println!("\n== forward: inc=1 on every step ==");
    let mut run = RunOptions::new().solver(SolverChoice::Tabu).num_reads(30);
    for t in 0..steps {
        run = run
            .pin(&format!("inc@{t} := 1"))
            .pin(&format!("reset@{t} := 0"))
            .pin(&format!("clk@{t} := 0"));
    }
    let outcome = compiled.run(&run).expect("run succeeds");
    let best = outcome
        .valid_solutions()
        .next()
        .expect("forward run is deterministic");
    for t in 0..steps {
        let out = best.get(&format!("out@{t}")).unwrap();
        println!("out@{t} = {out}");
        assert_eq!(out, t as u64, "counter must hold {t} at step {t}");
    }
    let final_state = best.get("ff_final").unwrap();
    println!("final state = {final_state}");
    assert_eq!(final_state, steps as u64);

    // Backward in time: pin the FINAL state and solve for the control
    // inputs that reach it (inc must be 1 on every step, reset 0).
    println!("\n== backward: pin final count = {steps}, solve for inputs ==");
    let mut run = RunOptions::new().solver(SolverChoice::Tabu).num_reads(60);
    run = run.pin(&format!("ff_final[5:0] := {steps}"));
    for t in 0..steps {
        run = run.pin(&format!("clk@{t} := 0"));
    }
    let outcome = compiled.run(&run).expect("run succeeds");
    let best = outcome
        .valid_solutions()
        .next()
        .expect("reaching the count is possible");
    for t in 0..steps {
        let inc = best.get(&format!("inc@{t}")).unwrap();
        let reset = best.get(&format!("reset@{t}")).unwrap();
        println!("step {t}: inc={inc} reset={reset}");
    }
    // Only all-increments reaches `steps` from zero in `steps` ticks.
    for t in 0..steps {
        assert_eq!(best.get(&format!("inc@{t}")), Some(1));
        assert_eq!(best.get(&format!("reset@{t}")), Some(0));
    }

    println!("\ncounter: OK");
}
