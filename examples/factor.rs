//! Integer factoring by running a multiplier backward (paper §5.3,
//! Listing 6).
//!
//! ```text
//! cargo run --release --example factor [semiprime]
//! ```
//!
//! "The ability to run code backward makes factoring trivial to program":
//! express `C = A × B`, pin `C`, and read the factors. The same compiled
//! program also multiplies (pin `A` and `B`) and divides (pin `C` and
//! `A`) — exactly the three modes of §5.3.

use qac_core::{compile, CompileOptions, RunOptions, SolverChoice};

/// Paper Listing 6 verbatim.
const MULT: &str = r#"
    module mult (A, B, C);
      input [3:0] A;
      input [3:0] B;
      output[7:0] C;
      assign C = A * B;
    endmodule
"#;

fn main() {
    let target: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(143);
    assert!(target < 256, "the 4×4 multiplier produces 8-bit products");

    let compiled = compile(MULT, "mult", &CompileOptions::default()).expect("Listing 6 compiles");
    println!(
        "compiled: {} gates, {} logical variables",
        compiled.stats.netlist.cells, compiled.stats.logical_variables
    );

    // --- Factor: pin C, solve for A and B (the paper factors 143). ---
    println!("\n== factoring {target} ==");
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin(&format!("C[7:0] := {target}"))
                .solver(SolverChoice::Tabu)
                .num_reads(60),
        )
        .expect("run succeeds");
    println!("valid fraction: {:.2}", outcome.valid_fraction());
    let mut factorizations: Vec<(u64, u64)> = outcome
        .valid_solutions()
        .map(|s| (s.get("A").unwrap(), s.get("B").unwrap()))
        .collect();
    factorizations.sort_unstable();
    factorizations.dedup();
    println!("distinct factorizations found: {factorizations:?}");
    for &(a, b) in &factorizations {
        assert_eq!(a * b, target, "{a} × {b} != {target}");
    }
    if target == 143 {
        // The paper reports exactly {A=11,B=13} and {A=13,B=11}.
        assert!(factorizations.contains(&(11, 13)) || factorizations.contains(&(13, 11)));
    }
    assert!(
        !factorizations.is_empty(),
        "no factorization found — try more reads"
    );

    // --- Multiply: pin A and B (forward execution). ---
    println!("\n== multiplying 13 × 11 ==");
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("A[3:0] := 1101") // 13, as in the paper's example
                .pin("B[3:0] := 1011") // 11
                .solver(SolverChoice::Tabu)
                .num_reads(30),
        )
        .expect("run succeeds");
    let product = outcome
        .valid_solutions()
        .next()
        .expect("multiplication is deterministic")
        .get("C")
        .unwrap();
    println!("C = {product}");
    assert_eq!(product, 143);

    // --- Divide: pin C and A, solve for B (the paper's division mode). ---
    println!("\n== dividing 143 / 13 ==");
    let outcome = compiled
        .run(
            &RunOptions::new()
                .pin("C[7:0] := 10001111") // 143, the paper's bit string
                .pin("A[3:0] := 1101") // 13
                .solver(SolverChoice::Tabu)
                .num_reads(30),
        )
        .expect("run succeeds");
    let quotient = outcome
        .valid_solutions()
        .next()
        .expect("143 is divisible by 13")
        .get("B")
        .unwrap();
    println!("B = {quotient}");
    assert_eq!(quotient, 11);

    println!("\nfactor: OK");
}
