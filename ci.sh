#!/usr/bin/env bash
# Repository CI gate: build, tests, lints, formatting.
#
#   ./ci.sh          # run everything
#
# Workspace tests run in release because the embedding acceptance tests
# (crates/bench/tests/cache_portfolio.rs) route on a C16 Chimera graph
# and are painfully slow unoptimized.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1, root package)"
cargo test -q

echo "==> cargo test -q --workspace --release"
cargo test -q --workspace --release

echo "==> differential suite (samplers vs exact enumeration)"
cargo test --release -q -p qac-solvers --test differential

echo "==> batch engine suite (determinism at 1/2/8 workers)"
cargo test --release -q -p qac-engine

echo "==> telemetry export smoke (JSONL + Prometheus round-trip)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release -q -p qac-bench --bin experiments -- \
    figure2_3 --trace-json "$tmpdir/trace.jsonl" --metrics "$tmpdir/metrics.prom" \
    > /dev/null
cargo run --release -q -p qac-bench --bin telemetry_check -- \
    "$tmpdir/trace.jsonl" "$tmpdir/metrics.prom"

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all checks passed"
