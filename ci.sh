#!/usr/bin/env bash
# Repository CI gate: build, tests, lints, formatting.
#
#   ./ci.sh          # run everything
#   ./ci.sh analyze  # run only the static-analysis gate
#
# Workspace tests run in release because the embedding acceptance tests
# (crates/bench/tests/cache_portfolio.rs) route on a C16 Chimera graph
# and are painfully slow unoptimized.
set -euo pipefail
cd "$(dirname "$0")"

analyze_gate() {
    echo "==> analyze gate (static analyzer over the paper workloads)"
    # QAC_ANALYZE_STRICT=1 turns any Error-severity diagnostic into a
    # nonzero exit; the JSON export is then schema-checked.
    QAC_ANALYZE_STRICT=1 cargo run --release -q -p qac-bench --bin experiments -- \
        analyze --diagnostics-json "$tmpdir/diagnostics.json" > /dev/null
    cargo run --release -q -p qac-bench --bin telemetry_check -- \
        --diagnostics "$tmpdir/diagnostics.json"
}

if [ "${1:-}" = "analyze" ]; then
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' EXIT
    analyze_gate
    echo "==> ci.sh analyze: passed"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1, root package)"
cargo test -q

echo "==> cargo test -q --workspace --release"
cargo test -q --workspace --release

echo "==> differential suite (samplers vs exact enumeration)"
cargo test --release -q -p qac-solvers --test differential

echo "==> batch engine suite (determinism at 1/2/8 workers)"
cargo test --release -q -p qac-engine

echo "==> telemetry export smoke (JSONL + Prometheus round-trip)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release -q -p qac-bench --bin experiments -- \
    figure2_3 --trace-json "$tmpdir/trace.jsonl" --metrics "$tmpdir/metrics.prom" \
    > /dev/null
# The routing-work budgets are machine-independent: the counters are
# deterministic per seed (figure2_3 currently routes with ~616k heap
# pops / ~3.6M edge relaxations / 11 rip-up iterations), so they only
# trip when the router algorithmically regresses, never because the CI
# host is slow. Budgets carry ~30% headroom over today's values.
cargo run --release -q -p qac-bench --bin telemetry_check -- \
    "$tmpdir/trace.jsonl" "$tmpdir/metrics.prom" \
    --counter-max qac_embed_heap_pops_total=800000 \
    --counter-max qac_embed_edge_relaxations_total=4700000 \
    --counter-max qac_route_iterations_total=20

echo "==> topology gate (per-fabric routing-work budgets)"
cargo run --release -q -p qac-bench --bin experiments -- \
    topology --trace-json "$tmpdir/topology.jsonl" --metrics "$tmpdir/topology.prom" \
    > /dev/null
# Same machine-independence argument as above, but per hardware family:
# the topology experiment routes the §6 workloads on every supported
# fabric with a fixed seed, and each fabric gets its own labeled
# counter budget (~30% headroom over today's values), so a router
# regression is pinned to the topology that regressed.
cargo run --release -q -p qac-bench --bin telemetry_check -- \
    "$tmpdir/topology.jsonl" "$tmpdir/topology.prom" \
    --counter-max 'qac_embed_heap_pops_total{topology="chimera"}=9000000' \
    --counter-max 'qac_embed_edge_relaxations_total{topology="chimera"}=53000000' \
    --counter-max 'qac_route_iterations_total{topology="chimera"}=90' \
    --counter-max 'qac_embed_heap_pops_total{topology="pegasus"}=1500000' \
    --counter-max 'qac_embed_edge_relaxations_total{topology="pegasus"}=19000000' \
    --counter-max 'qac_route_iterations_total{topology="pegasus"}=45' \
    --counter-max 'qac_embed_heap_pops_total{topology="zephyr"}=1300000' \
    --counter-max 'qac_embed_edge_relaxations_total{topology="zephyr"}=22000000' \
    --counter-max 'qac_route_iterations_total{topology="zephyr"}=40' \
    --counter-max 'qac_embed_heap_pops_total{topology="king"}=98000000' \
    --counter-max 'qac_embed_edge_relaxations_total{topology="king"}=750000000' \
    --counter-max 'qac_route_iterations_total{topology="king"}=850'

analyze_gate

echo "==> perf-regression gate (BENCH_pr6.json -> BENCH_pr7.json)"
# Deterministic routing-work gauges (heap pops, edge relaxations, chain
# lengths, ...) are gated at a 1.30 NEW/OLD ratio; wall-clock gauges are
# report-only because the two baselines may come from different
# machines. The gate fails if any deterministic gauge regressed beyond
# budget or vanished from the new baseline.
cargo run --release -q -p qac-bench --bin telemetry_check -- \
    --baseline BENCH_pr6.json BENCH_pr7.json

echo "==> perf-regression gate self-test (a seeded regression must fail)"
# Prove the gate has teeth: an impossibly tight budget on a nonzero
# gauge must trip (exit 1). If this *passes*, the gate is broken.
if cargo run --release -q -p qac-bench --bin telemetry_check -- \
    --baseline BENCH_pr6.json BENCH_pr7.json \
    --budget 'qac_bench_embed_heap_pops=0.000001' > /dev/null 2>&1; then
    echo "ERROR: the regression gate passed under an impossible budget" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all checks passed"
