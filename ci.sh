#!/usr/bin/env bash
# Repository CI gate: build, tests, lints, formatting.
#
#   ./ci.sh          # run everything
#   ./ci.sh analyze  # run only the static-analysis gate
#
# Workspace tests run in release because the embedding acceptance tests
# (crates/bench/tests/cache_portfolio.rs) route on a C16 Chimera graph
# and are painfully slow unoptimized.
set -euo pipefail
cd "$(dirname "$0")"

analyze_gate() {
    echo "==> analyze gate (static analyzer over the paper workloads)"
    # QAC_ANALYZE_STRICT=1 turns any Error-severity diagnostic into a
    # nonzero exit; the JSON export is then schema-checked.
    QAC_ANALYZE_STRICT=1 cargo run --release -q -p qac-bench --bin experiments -- \
        analyze --diagnostics-json "$tmpdir/diagnostics.json" > /dev/null
    cargo run --release -q -p qac-bench --bin telemetry_check -- \
        --diagnostics "$tmpdir/diagnostics.json"
}

if [ "${1:-}" = "analyze" ]; then
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' EXIT
    analyze_gate
    echo "==> ci.sh analyze: passed"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1, root package)"
cargo test -q

echo "==> cargo test -q --workspace --release"
cargo test -q --workspace --release

echo "==> differential suite (samplers vs exact enumeration)"
cargo test --release -q -p qac-solvers --test differential

echo "==> packed-sampler suites (goldens + lane equivalence + PT sanity)"
cargo test --release -q -p qac-solvers --test golden_samples --test multispin_lanes

echo "==> batch engine suite (determinism at 1/2/8 workers)"
cargo test --release -q -p qac-engine

echo "==> telemetry export smoke (JSONL + Prometheus round-trip)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release -q -p qac-bench --bin experiments -- \
    figure2_3 --trace-json "$tmpdir/trace.jsonl" --metrics "$tmpdir/metrics.prom" \
    > /dev/null
# The routing-work budgets are machine-independent: the counters are
# deterministic per seed (figure2_3 currently routes with ~616k heap
# pops / ~3.6M edge relaxations / 11 rip-up iterations), so they only
# trip when the router algorithmically regresses, never because the CI
# host is slow. Budgets carry ~30% headroom over today's values.
cargo run --release -q -p qac-bench --bin telemetry_check -- \
    "$tmpdir/trace.jsonl" "$tmpdir/metrics.prom" \
    --counter-max qac_embed_heap_pops_total=800000 \
    --counter-max qac_embed_edge_relaxations_total=4700000 \
    --counter-max qac_route_iterations_total=20

echo "==> topology gate (per-fabric routing-work budgets)"
cargo run --release -q -p qac-bench --bin experiments -- \
    topology --trace-json "$tmpdir/topology.jsonl" --metrics "$tmpdir/topology.prom" \
    > /dev/null
# Same machine-independence argument as above, but per hardware family:
# the topology experiment routes the §6 workloads on every supported
# fabric with a fixed seed, and each fabric gets its own labeled
# counter budget (~30% headroom over today's values), so a router
# regression is pinned to the topology that regressed.
cargo run --release -q -p qac-bench --bin telemetry_check -- \
    "$tmpdir/topology.jsonl" "$tmpdir/topology.prom" \
    --counter-max 'qac_embed_heap_pops_total{topology="chimera"}=9000000' \
    --counter-max 'qac_embed_edge_relaxations_total{topology="chimera"}=53000000' \
    --counter-max 'qac_route_iterations_total{topology="chimera"}=90' \
    --counter-max 'qac_embed_heap_pops_total{topology="pegasus"}=1500000' \
    --counter-max 'qac_embed_edge_relaxations_total{topology="pegasus"}=19000000' \
    --counter-max 'qac_route_iterations_total{topology="pegasus"}=45' \
    --counter-max 'qac_embed_heap_pops_total{topology="zephyr"}=1300000' \
    --counter-max 'qac_embed_edge_relaxations_total{topology="zephyr"}=22000000' \
    --counter-max 'qac_route_iterations_total{topology="zephyr"}=40' \
    --counter-max 'qac_embed_heap_pops_total{topology="king"}=98000000' \
    --counter-max 'qac_embed_edge_relaxations_total{topology="king"}=750000000' \
    --counter-max 'qac_route_iterations_total{topology="king"}=850'

echo "==> samplers gate (deterministic sweep/flip work budgets)"
cargo run --release -q -p qac-bench --bin experiments -- \
    samplers --trace-json "$tmpdir/samplers.jsonl" --metrics "$tmpdir/samplers.prom" \
    > /dev/null
# The sweep and flip counters are deterministic per seed (the packed
# kernel's RNG streams are fixed by the seed families), so these are
# machine-independent budgets like the routing-work ones above: they
# trip only when a sampler algorithmically does more work — an extra
# descent pass, a widened ladder, a resampling loop that stops
# converging — never because the runner was slow. ~30% headroom over
# today's values (bp/pa/sa flips ~4.4M, pt ~34.5M; pt attempts 172k
# swaps; pa resamples 93 times).
cargo run --release -q -p qac-bench --bin telemetry_check -- \
    "$tmpdir/samplers.jsonl" "$tmpdir/samplers.prom" \
    --counter-max 'qac_sampler_sweeps_total{sampler="bp"}=4000' \
    --counter-max 'qac_sampler_sweeps_total{sampler="pa"}=4000' \
    --counter-max 'qac_sampler_sweeps_total{sampler="pt"}=32000' \
    --counter-max 'qac_sampler_sweeps_total{sampler="sa"}=256000' \
    --counter-max 'qac_sampler_flips_total{sampler="bp"}=5800000' \
    --counter-max 'qac_sampler_flips_total{sampler="pa"}=5800000' \
    --counter-max 'qac_sampler_flips_total{sampler="pt"}=45000000' \
    --counter-max 'qac_sampler_flips_total{sampler="sa"}=5800000' \
    --counter-max 'qac_sampler_pt_swaps_total=225000' \
    --counter-max 'qac_sampler_pa_resamples_total=130'

echo "==> incremental gate (edit turnaround: skip/splice budgets + speedup floor)"
cargo run --release -q -p qac-bench --bin experiments -- \
    edit --trace-json "$tmpdir/edit.jsonl" --metrics "$tmpdir/edit.prom" \
    > /dev/null
# The stage-miss and re-embed counters are deterministic: the canonical
# one-gate edit re-runs exactly 9 stages per workload (18 across the
# two, certify included) and repairs both embeddings without falling back to full
# routing, so the budgets are exact — one extra miss means a stage lost
# its incrementality, and `--gauge-min qac_incr_reembed_partial_total=2`
# (floors read any Prometheus sample) asserts neither re-embed took the
# full-routing fallback. The speedup floors are same-machine ratios:
# warm-vs-cold on the same host, so they hold on slow CI runners too
# (today: ~260x on australia, ~22x on figure2). The certify counters
# pin the warm re-proof work exactly: the dirty cones across the two
# edits re-prove 39 obligations while fingerprint reuse splices exactly
# 9 — a skipped count above 9 means certification is reusing proofs for
# cones the edit dirtied, and below 9 (the --gauge-min floor) means the
# splice path stopped reusing clean-cone proofs.
cargo run --release -q -p qac-bench --bin telemetry_check -- \
    "$tmpdir/edit.jsonl" "$tmpdir/edit.prom" \
    --counter-max qac_incr_stage_miss_total=18 \
    --counter-max qac_incr_reembed_partial_total=2 \
    --gauge-min qac_incr_reembed_partial_total=2 \
    --counter-max qac_cert_obligations_skipped_total=9 \
    --gauge-min qac_cert_obligations_skipped_total=9 \
    --gauge-min 'qac_bench_incremental_speedup{workload="australia"}=10' \
    --gauge-min 'qac_bench_incremental_speedup{workload="figure2"}=2'

echo "==> incremental gate self-test (an impossible floor must fail)"
if cargo run --release -q -p qac-bench --bin telemetry_check -- \
    "$tmpdir/edit.jsonl" "$tmpdir/edit.prom" \
    --gauge-min 'qac_bench_incremental_speedup{workload="australia"}=100000' \
    > /dev/null 2>&1; then
    echo "ERROR: the file-mode gauge floor passed at an impossible threshold" >&2
    exit 1
fi

analyze_gate

echo "==> certify gate (translation validation over the workload corpus)"
# Every workload certificate must verify, and the obligation counters
# are deterministic (the corpus and its cone widths are fixed): today
# the corpus proves 48 obligations and skips 0, so the budgets carry
# headroom for new obligations but trip if certification silently stops
# proving (proved collapses toward 0 is caught by --gauge-min on the
# Prometheus sample) or starts skipping wide/undriven cones.
cargo run --release -q -p qac-bench --bin experiments -- \
    certify --cert-dir "$tmpdir/certs" \
    --trace-json "$tmpdir/certify.jsonl" --metrics "$tmpdir/certify.prom" \
    > /dev/null
cargo run --release -q -p qac-bench --bin telemetry_check -- \
    "$tmpdir/certify.jsonl" "$tmpdir/certify.prom" \
    --counter-max qac_cert_obligations_proved_total=65 \
    --counter-max qac_cert_obligations_skipped_total=5 \
    --gauge-min qac_cert_obligations_proved_total=48
# The written certificates must re-verify offline through the
# independent checker (the `certify verify` CLI path users run).
cargo run --release -q -p qac-bench --bin experiments -- \
    certify verify "$tmpdir"/certs/*.cert.json

echo "==> unsafe-code gate (#![forbid(unsafe_code)] in every crate but qac-alloc)"
# qac-alloc is the one crate allowed unsafe (the arena's raw-pointer
# internals); everything else must forbid it at the crate root so a
# stray unsafe block is a compile error, not a review nit.
for lib in crates/*/src/lib.rs; do
    crate_dir="$(basename "$(dirname "$(dirname "$lib")")")"
    [ "$crate_dir" = "alloc" ] && continue
    if ! grep -q '#!\[forbid(unsafe_code)\]' "$lib"; then
        echo "ERROR: $lib is missing #![forbid(unsafe_code)]" >&2
        exit 1
    fi
done

echo "==> perf-regression gate (BENCH_pr8.json -> BENCH_pr9.json)"
# Deterministic work gauges (heap pops, edge relaxations, chain
# lengths, ...) are gated at a 1.30 NEW/OLD ratio; wall-clock gauges are
# report-only because the two baselines may come from different
# machines. The gate fails if any deterministic gauge regressed beyond
# budget or vanished from the new baseline. The --gauge-min floors pin
# the acceptance bars: the bit-parallel sampler must stay >= 10x scalar
# SA reads/sec on figure2 and australia (PR8), and the warm edit path
# must stay >= 10x faster than cold on australia (PR9). Both speedup
# gauges are same-machine ratios, so the floors are machine-independent
# even though the raw reads-per-second and wall-time gauges are not.
cargo run --release -q -p qac-bench --bin telemetry_check -- \
    --baseline BENCH_pr8.json BENCH_pr9.json \
    --gauge-min 'qac_bench_sampler_speedup_bp_vs_scalar{workload="figure2"}=10' \
    --gauge-min 'qac_bench_sampler_speedup_bp_vs_scalar{workload="australia"}=10' \
    --gauge-min 'qac_bench_incremental_speedup{workload="australia"}=10' \
    --gauge-min 'qac_bench_incremental_speedup{workload="figure2"}=2'

echo "==> perf-regression gate self-test (a seeded regression must fail)"
# Prove the gate has teeth: an impossibly tight budget on a nonzero
# gauge must trip (exit 1). If this *passes*, the gate is broken.
if cargo run --release -q -p qac-bench --bin telemetry_check -- \
    --baseline BENCH_pr8.json BENCH_pr9.json \
    --budget 'qac_bench_embed_heap_pops=0.000001' > /dev/null 2>&1; then
    echo "ERROR: the regression gate passed under an impossible budget" >&2
    exit 1
fi

echo "==> gauge-floor self-test (an impossible floor must fail)"
if cargo run --release -q -p qac-bench --bin telemetry_check -- \
    --baseline BENCH_pr8.json BENCH_pr9.json \
    --gauge-min 'qac_bench_incremental_speedup{workload="australia"}=100000' \
    > /dev/null 2>&1; then
    echo "ERROR: the gauge floor passed at an impossible threshold" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all checks passed"
